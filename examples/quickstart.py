#!/usr/bin/env python3
"""Quickstart: a healthy network, a partitioned network, and the inactivity leak.

This example exercises the two simulation engines of the library:

1. the slot-level protocol simulator (fork choice + FFG + incentives) on a
   healthy network and on a partitioned one,
2. the epoch-level aggregate leak simulator over the long horizons the
   paper's analysis uses,

and prints the headline quantities of the paper on the way: when the
inactivity leak starts, how the stake of inactive validators erodes, and
when a partitioned network finalizes two conflicting chains.

Run with:  python examples/quickstart.py
"""

from repro import (
    Behavior,
    LeakSimulation,
    GroupSpec,
    build_honest_simulation,
    build_partitioned_simulation,
    conflicting_finalization_time,
    sample_trajectory,
)
from repro.analysis.finalization_time import ByzantineStrategy
from repro.leak.groups import always_active, never_active
from repro.viz import ascii_plot, sparkline


def healthy_network_demo() -> None:
    print("=" * 72)
    print("1. Healthy network: the finalized chain grows every epoch")
    print("=" * 72)
    engine = build_honest_simulation(n_validators=16)
    result = engine.run(8)
    for snapshot in result.snapshots:
        finalized = max(snapshot.finalized_epoch_by_node.values())
        print(f"  epoch {snapshot.epoch}: highest finalized epoch = {finalized}, "
              f"in leak = {snapshot.any_in_leak}")
    print(f"  Liveness held: {result.liveness_held(min_progress=3)}; "
          f"Safety violated: {result.safety_violated()}")


def partitioned_network_demo() -> None:
    print()
    print("=" * 72)
    print("2. Partitioned network: finality stalls and the inactivity leak starts")
    print("=" * 72)
    engine = build_partitioned_simulation(n_validators=16, p0=0.5)
    result = engine.run(8)
    print(f"  finalized epoch after 8 epochs of partition: {result.max_finalized_epoch()}")
    print(f"  epochs spent in the inactivity leak: {result.leak_epochs()}")
    node = engine.nodes[engine.honest_indices()[0]]
    stakes = [round(v.stake, 3) for v in node.state.validators]
    print(f"  stakes as seen on branch-1 (its own side keeps 32, the other leaks): {stakes}")


def stake_trajectories_demo() -> None:
    print()
    print("=" * 72)
    print("3. Stake trajectories during a never-ending leak (Figure 2)")
    print("=" * 72)
    for behavior in (Behavior.ACTIVE, Behavior.SEMI_ACTIVE, Behavior.INACTIVE):
        trajectory = sample_trajectory(behavior, max_epoch=8000, step=100)
        line = sparkline(trajectory.stakes, width=60)
        ejection = (
            f"ejected at epoch ~{trajectory.ejection_epoch:.0f}"
            if trajectory.ejection_epoch is not None
            else "never ejected"
        )
        print(f"  {behavior.value:<12} {line}  ({ejection})")


def conflicting_finalization_demo() -> None:
    print()
    print("=" * 72)
    print("4. How long must a partition last to finalize two conflicting chains?")
    print("=" * 72)
    analytical = conflicting_finalization_time(ByzantineStrategy.NONE, p0=0.5)
    print(f"  analytical bound (Section 5.1): threshold at epoch "
          f"{analytical.threshold_epoch:.0f}, conflicting finalization at epoch "
          f"{analytical.finalization_epoch:.0f} (~3 weeks)")

    simulation = LeakSimulation(
        branch_specs={
            "branch-1": (
                GroupSpec(name="active", weight=0.5, pattern=always_active),
                GroupSpec(name="inactive", weight=0.5, pattern=never_active),
            ),
            "branch-2": (
                GroupSpec(name="active", weight=0.5, pattern=never_active),
                GroupSpec(name="inactive", weight=0.5, pattern=always_active),
            ),
        }
    )
    result = simulation.run(5200)
    print(f"  discrete simulation: conflicting finalization at epoch "
          f"{result.conflicting_finalization_epoch()}")
    branch = result.branch("branch-1")
    epochs = [record.epoch for record in branch.records][::50]
    ratios = branch.active_ratio_series()[::50]
    print()
    print(ascii_plot(
        {"active-stake ratio (branch 1)": (epochs, ratios)},
        width=64, height=12,
        x_label="epochs since leak start", y_label="ratio",
    ))


def main() -> None:
    healthy_network_demo()
    partitioned_network_demo()
    stake_trajectories_demo()
    conflicting_finalization_demo()


if __name__ == "__main__":
    main()
