#!/usr/bin/env python3
"""Designing inactivity-penalty mechanisms: the paper's analysis as a tool.

The paper frames its results as a first step towards analysing penalty
mechanisms in BFT protocols in general (Tezos and Polkadot have similar
devices).  This example uses the generalized mechanism module to explore
the design space: how the leak speed (penalty quotient), the score
dynamics, and the quorum size move the three quantities that matter —

* how long a partition must last before Safety can be lost,
* how long inactive validators survive before ejection,
* how much initial Byzantine stake suffices to exceed the quorum-breaking
  threshold by simply waiting.

It also shows the post-leak recovery tail and validates the closed forms
against the per-validator Monte-Carlo simulator.

Run with:  python examples/penalty_mechanism_design.py
"""

from repro.experiments import fig10_montecarlo, generalized_mechanism, recovery_tail
from repro.leak.generalized import PenaltyMechanism
from repro.viz import format_table


def design_space() -> None:
    print("=" * 72)
    print("Penalty-mechanism design space")
    print("=" * 72)
    result = generalized_mechanism.run()
    print(format_table(result.rows(), columns=[
        "mechanism", "safety_bound_epochs", "inactive_ejection_epoch", "critical_beta0",
    ]))
    print()
    print("  Faster leaks restore Liveness sooner but also lose Safety sooner under")
    print("  partition; the critical Byzantine proportion is invariant to the leak")
    print("  speed — it only depends on how semi-active and inactive validators are")
    print("  penalised relative to each other.")


def custom_mechanism() -> None:
    print()
    print("=" * 72)
    print("A custom mechanism: milder penalties for intermittent validators")
    print("=" * 72)
    custom = PenaltyMechanism(score_bias=4.0, score_recovery=3.0)
    ethereum = PenaltyMechanism.ethereum()
    rows = [
        {
            "mechanism": "ethereum (bias 4, recovery 1)",
            "semi-active ejection": ethereum.ejection_epoch_semi_active(),
            "critical beta0": ethereum.critical_beta0(0.5),
        },
        {
            "mechanism": "custom (bias 4, recovery 3)",
            "semi-active ejection": custom.ejection_epoch_semi_active(),
            "critical beta0": custom.critical_beta0(0.5),
        },
    ]
    print(format_table(rows))
    print()
    print("  Forgiving semi-activity (higher score recovery) keeps alternating")
    print("  validators alive much longer — which also makes the Section-5.2.3")
    print("  threshold attack cheaper.  Penalty design is a trade-off.")


def recovery() -> None:
    print()
    print("=" * 72)
    print("Post-leak recovery tail (why Figure 3 keeps rising after 2/3)")
    print("=" * 72)
    print(format_table(recovery_tail.run().rows()))


def monte_carlo_validation() -> None:
    print()
    print("=" * 72)
    print("Monte-Carlo validation of the bouncing-attack closed form (Eq. 24)")
    print("=" * 72)
    result = fig10_montecarlo.run(
        beta0_values=(1 / 3, 0.33), horizon=2500, n_trials=25, n_honest=120, seed=1
    )
    print(result.format_text())
    print()
    print("  The per-validator simulation keeps the score floor and the ejection rule")
    print("  that the Gaussian model drops; the empirical either-branch probability")
    print("  tracks the doubled closed form, as the paper argues.")


def main() -> None:
    design_space()
    custom_mechanism()
    recovery()
    monte_carlo_validation()


if __name__ == "__main__":
    main()
