#!/usr/bin/env python3
"""Scenario 5.1: losing Safety with only honest validators.

Reproduces the Section-5.1 analysis end to end: a network partition splits
the honest validators into two branches, each branch leaks the stake of the
validators it cannot hear, and once each branch regains a 2/3 supermajority
it finalizes — producing two conflicting finalized chains.

The script sweeps the honest split p0, compares the analytical crossing
time (Equation 6) with the discrete aggregate simulation, and renders the
Figure-3 curves as an ASCII chart.

Run with:  python examples/partition_safety_loss.py
"""

from repro.analysis.finalization_time import (
    ByzantineStrategy,
    conflicting_finalization_time,
    threshold_epoch_honest_only,
)
from repro.analysis.partition_scenarios import run_all_honest_scenario
from repro.experiments import fig3_active_ratio
from repro.viz import ascii_plot, format_table


def sweep_splits() -> None:
    print("=" * 72)
    print("Conflicting finalization time vs the honest split p0 (Section 5.1)")
    print("=" * 72)
    rows = []
    for p0 in (0.5, 0.45, 0.4, 0.35, 0.3):
        analytical = conflicting_finalization_time(ByzantineStrategy.NONE, p0=p0)
        outcome = run_all_honest_scenario(p0=p0, max_epochs=5200)
        rows.append(
            {
                "p0": p0,
                "slower branch crosses 2/3 (analytical)": analytical.threshold_epoch,
                "conflicting finalization (analytical)": analytical.finalization_epoch,
                "conflicting finalization (simulated)": outcome.conflicting_finalization_epoch,
            }
        )
    print(format_table(rows))
    print()
    print("The even split (p0 = 0.5) is the fastest configuration; no honest-only")
    print("partition can lose Safety before ~4686 epochs (about 3 weeks).")


def figure3_chart() -> None:
    print()
    print("=" * 72)
    print("Figure 3: ratio of active validators during the leak")
    print("=" * 72)
    result = fig3_active_ratio.run(
        p0_values=(0.6, 0.5, 0.4, 0.3, 0.2), max_epoch=8000, step=100, include_simulation=False
    )
    series = {
        f"p0={p0}": (list(result.epochs), result.analytical_series[p0])
        for p0 in result.p0_values
    }
    print(ascii_plot(series, width=68, height=16, x_label="epoch", y_label="active ratio"))
    print()
    rows = [
        {"p0": p0, "epoch regaining 2/3": result.threshold_epochs[p0]}
        for p0 in result.p0_values
    ]
    print(format_table(rows))


def explain_bound() -> None:
    print()
    print("=" * 72)
    print("Where the 4685-epoch bound comes from")
    print("=" * 72)
    print("With p0 < 2/3 on a branch, the branch only regains a supermajority once")
    print("the stake of the validators it deems inactive has leaked away, i.e. at")
    print("  t = sqrt(2^25 [ln(2(1-p0)) - ln(p0)])  (Equation 6), capped by the")
    print("ejection of inactive validators.  For the even split that cap binds:")
    for p0 in (0.6, 0.55, 0.5):
        print(f"  p0 = {p0:<5} -> t = {threshold_epoch_honest_only(p0):7.1f} epochs")


def main() -> None:
    sweep_splits()
    figure3_chart()
    explain_bound()


if __name__ == "__main__":
    main()
