#!/usr/bin/env python3
"""Scenario 5.2.3: exceeding the one-third Byzantine safety threshold.

Instead of finalizing as fast as possible, semi-active Byzantine validators
can wait: by keeping both branches unfinalized they let the inactivity leak
drain the honest validators deemed inactive on each branch until those are
ejected, at which point the Byzantine share of the remaining stake peaks
(Equation 13).  If their initial proportion is at least ~0.2421 (for an
even honest split), the peak exceeds 1/3 on both branches.

Run with:  python examples/threshold_attack.py
"""

from repro.analysis.threshold import analyse_pair, critical_beta0
from repro.analysis.partition_scenarios import run_threshold_exceeding_scenario
from repro.experiments import fig7_threshold_region
from repro.leak.ratios import byzantine_proportion, max_byzantine_proportion
from repro.viz import ascii_plot, format_table


def critical_proportion() -> None:
    print("=" * 72)
    print("The critical initial Byzantine proportion (Figure 7)")
    print("=" * 72)
    result = fig7_threshold_region.run()
    print(f"  smallest beta0 that can exceed 1/3 on both branches at p0=0.5: "
          f"{result.critical_beta0_at_half:.4f}  (paper: 0.2421)")
    rows = [
        {"p0": p0, "min beta0 to exceed 1/3": beta0}
        for p0, beta0 in list(zip(result.boundary_p0, result.boundary_beta0))[::10]
    ]
    print(format_table(rows))


def beta_over_time() -> None:
    print()
    print("=" * 72)
    print("Evolution of the Byzantine proportion beta(t) during the leak (Eq. 11)")
    print("=" * 72)
    epochs = list(range(0, 4700, 50))
    series = {}
    for beta0 in (0.2, 0.2421, 0.28, 0.33):
        series[f"beta0={beta0}"] = (epochs, [byzantine_proportion(t, 0.5, beta0) for t in epochs])
    series["1/3 threshold"] = (epochs, [1 / 3 for _ in epochs])
    print(ascii_plot(series, width=68, height=14, x_label="epoch", y_label="beta(t)"))
    print()
    print("  The continuous proportion stays below 1/3 until the ejection of the")
    print("  honest inactive validators (epoch ~4685) removes their residual stake")
    print("  from the denominator; the peak reached at that point is Equation 13:")
    rows = []
    for beta0 in (0.2, 0.2421, 0.28, 0.33):
        crossing = analyse_pair(0.5, beta0)
        rows.append(
            {
                "beta0": beta0,
                "beta_max (Eq. 13)": max_byzantine_proportion(0.5, beta0),
                "exceeds 1/3": crossing.exceeds_threshold,
                "crossing epoch": crossing.crossing_epoch,
            }
        )
    print(format_table(rows))


def discrete_simulation() -> None:
    print()
    print("=" * 72)
    print("Discrete aggregate simulation of the attack (8000 epochs)")
    print("=" * 72)
    for beta0 in (0.2, 0.25, 0.3):
        outcome = run_threshold_exceeding_scenario(beta0=beta0, p0=0.5, max_epochs=8000)
        print(f"  beta0 = {beta0:<5} -> max Byzantine proportion observed: "
              f"{outcome.max_byzantine_proportion:.4f}  "
              f"({'exceeds' if outcome.threshold_exceeded else 'stays below'} 1/3)")
    print()
    print(f"  critical beta0 (analytical): {critical_beta0(0.5):.4f}")


def main() -> None:
    critical_proportion()
    beta_over_time()
    discrete_simulation()


if __name__ == "__main__":
    main()
