#!/usr/bin/env python3
"""Scenario 5.3: the probabilistic bouncing attack under the inactivity leak.

The bouncing attack delays finality by making honest validators alternate
between two branches; once it lasts more than four epochs the inactivity
leak starts and the honest validators — randomly inactive on whichever
branch they are not on — leak stake according to a random-walk model, while
the Byzantine validators follow the deterministic semi-active trajectory.
If the Byzantine proportion starts close enough to 1/3, it probabilistically
exceeds the threshold (Figure 10), even though the attack itself is unlikely
to last long (the (1-(1-beta0)^j)^k estimate).

Run with:  python examples/bouncing_attack.py
"""

from repro import BouncingAttackModel
from repro.analysis.bouncing import attack_duration_probability, expected_attack_duration
from repro.experiments import fig9_stake_distribution, fig10_exceed_probability
from repro.viz import ascii_plot, format_table, sparkline


def feasibility_and_duration() -> None:
    print("=" * 72)
    print("Feasibility window (Eq. 14) and attack duration")
    print("=" * 72)
    rows = []
    for beta0 in (1 / 3, 0.3, 0.25, 0.2, 0.1):
        model = BouncingAttackModel(beta0=beta0, p0=0.55)
        lower, upper = model.feasible_p0_window()
        rows.append(
            {
                "beta0": beta0,
                "p0 window low": lower,
                "p0 window high": upper,
                "expected duration (epochs)": expected_attack_duration(beta0),
                "P[lasts 100 epochs]": attack_duration_probability(beta0, 100),
            }
        )
    print(format_table(rows))
    model = BouncingAttackModel(beta0=1 / 3)
    print(f"\n  P[attack lasts 7000 epochs] at beta0=1/3: "
          f"10^{model.log10_duration_probability(7000):.1f}  (paper: ~1e-121)")


def honest_stake_distribution() -> None:
    print()
    print("=" * 72)
    print("Honest stake distribution during the bounce (Figure 9, t = 4024)")
    print("=" * 72)
    result = fig9_stake_distribution.run()
    print(f"  mass ejected (stake -> 0): {result.ejection_mass:.4f}")
    print(f"  mass still at 32 ETH:      {result.cap_mass:.4f}")
    print(f"  median stake:              {result.median_stake:.2f} ETH")
    print(f"  density over [16.75, 32]:  {sparkline(result.density, width=64)}")


def exceed_probability_curves() -> None:
    print()
    print("=" * 72)
    print("Probability that the Byzantine proportion exceeds 1/3 (Figure 10)")
    print("=" * 72)
    result = fig10_exceed_probability.run()
    series = {
        f"beta0={beta0:.4f}": (list(result.epochs), result.series[beta0])
        for beta0 in result.beta0_values
    }
    print(ascii_plot(series, width=68, height=16, x_label="epoch", y_label="P[beta > 1/3]"))
    print()
    print(f"  Byzantine (semi-active) validators are ejected at epoch "
          f"~{result.byzantine_ejection_epoch:.0f}; the curves rise sharply just before")
    print("  that point, but the attack is overwhelmingly unlikely to last that long.")


def monte_carlo_check() -> None:
    print()
    print("=" * 72)
    print("Monte-Carlo cross-check of Equation 24")
    print("=" * 72)
    rows = []
    for beta0, t in ((1 / 3, 1500), (1 / 3, 3000), (0.333, 3000), (0.33, 5000)):
        model = BouncingAttackModel(beta0=beta0, p0=0.5)
        rows.append(
            {
                "beta0": beta0,
                "epoch": t,
                "closed form (Eq. 24)": model.exceed_threshold_probability(float(t)),
                "Monte-Carlo (discrete rules)": model.simulate_exceed_probability(
                    t=t, n_samples=4000, seed=42
                ),
            }
        )
    print(format_table(rows))


def main() -> None:
    feasibility_and_duration()
    honest_stake_distribution()
    exceed_probability_curves()
    monte_carlo_check()


if __name__ == "__main__":
    main()
