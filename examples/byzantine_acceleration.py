#!/usr/bin/env python3
"""Scenarios 5.2.1 / 5.2.2: Byzantine validators expedite the loss of Safety.

Reproduces Tables 2 and 3 and Figure 6: how much faster two conflicting
chains finalize when Byzantine validators are active on both branches
(slashable double votes) or semi-active on both branches (non-slashable),
as a function of their initial stake proportion beta0.

The script also runs the slot-level protocol simulator on a scaled-down
configuration to show the mechanism itself: double-voting attackers are
slashed once the partition heals, alternating attackers are not.

Run with:  python examples/byzantine_acceleration.py
"""

from repro.analysis.finalization_time import ByzantineStrategy, speedup_over_honest_baseline
from repro.experiments import fig6_finalization_times, table2_slashing_times, table3_nonslashing_times
from repro.sim.scenarios import build_partitioned_simulation
from repro.spec.config import SpecConfig
from repro.viz import ascii_plot, format_table


def tables() -> None:
    print("=" * 72)
    print("Tables 2 and 3: epochs to conflicting finalization (p0 = 0.5)")
    print("=" * 72)
    table2 = table2_slashing_times.run(include_simulation=False)
    table3 = table3_nonslashing_times.run(include_simulation=False)
    rows = []
    for row2, row3 in zip(table2.rows(), table3.rows()):
        rows.append(
            {
                "beta0": row2["beta0"],
                "slashing (Table 2)": row2["epochs_analytical"],
                "paper": row2["epochs_paper"],
                "non-slashing (Table 3)": row3["epochs_analytical"],
                "paper ": row3["epochs_paper"],
            }
        )
    print(format_table(rows))
    print()
    for strategy, label in (
        (ByzantineStrategy.SLASHING, "slashable double voting"),
        (ByzantineStrategy.NON_SLASHING, "non-slashable semi-activity"),
    ):
        speedup = speedup_over_honest_baseline(strategy, beta0=0.33)
        print(f"  With beta0 = 0.33, {label} breaks Safety ~{speedup:.1f}x faster "
              f"than the honest-only baseline.")


def figure6() -> None:
    print()
    print("=" * 72)
    print("Figure 6: crossing time vs beta0 for both strategies")
    print("=" * 72)
    result = fig6_finalization_times.run()
    print(ascii_plot(
        {
            "slashing (Eq. 9)": (list(result.beta0_values), result.slashing_epochs),
            "non-slashing (Eq. 10)": (list(result.beta0_values), result.non_slashing_epochs),
        },
        width=68,
        height=16,
        x_label="beta0",
        y_label="epochs to conflicting finalization",
    ))


def slot_level_mechanism() -> None:
    print()
    print("=" * 72)
    print("Mechanism check on the slot-level simulator (scaled-down leak)")
    print("=" * 72)
    config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)

    honest = build_partitioned_simulation(n_validators=12, p0=0.5, config=config).run(14)
    attacked = build_partitioned_simulation(
        n_validators=12,
        p0=0.5,
        byzantine_fraction=0.25,
        byzantine_strategy="double-voting",
        config=config,
    ).run(14)
    print(f"  honest-only partition:     safety violated at epoch "
          f"{honest.first_safety_violation_epoch()}")
    print(f"  with double-voting attack: safety violated at epoch "
          f"{attacked.first_safety_violation_epoch()}")

    healed = build_partitioned_simulation(
        n_validators=12,
        p0=0.5,
        byzantine_fraction=0.25,
        byzantine_strategy="double-voting",
        gst_epoch=3,
        config=SpecConfig.minimal(),
    ).run(9)
    print(f"  after the partition heals, the equivocating validators are slashed: "
          f"{sorted(healed.slashed_indices)}")

    alternating = build_partitioned_simulation(
        n_validators=16,
        p0=0.5,
        byzantine_fraction=0.25,
        byzantine_strategy="alternating",
        gst_epoch=4,
        config=SpecConfig.minimal(),
    ).run(10)
    print(f"  the semi-active (alternating) strategy is never slashed: "
          f"slashed = {sorted(alternating.slashed_indices)}")


def main() -> None:
    tables()
    figure6()
    slot_level_mechanism()


if __name__ == "__main__":
    main()
