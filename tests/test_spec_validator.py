"""Tests for repro.spec.validator."""

import pytest

from repro.spec.config import SpecConfig
from repro.spec.validator import (
    Validator,
    byzantine_proportion,
    make_registry,
    stake_proportion,
    total_stake,
)


class TestValidator:
    def test_defaults(self):
        validator = Validator(index=0, stake=32.0)
        assert validator.is_active(0)
        assert not validator.slashed
        assert validator.inactivity_score == 0

    def test_rejects_negative_stake(self):
        with pytest.raises(ValueError):
            Validator(index=0, stake=-1.0)

    def test_rejects_negative_index(self):
        with pytest.raises(ValueError):
            Validator(index=-1, stake=32.0)

    def test_exit_is_idempotent_and_keeps_earliest(self):
        validator = Validator(index=0, stake=32.0)
        validator.exit(10)
        validator.exit(20)
        assert validator.exit_epoch == 10
        validator.exit(5)
        assert validator.exit_epoch == 5

    def test_is_active_respects_exit(self):
        validator = Validator(index=0, stake=32.0)
        validator.exit(10)
        assert validator.is_active(9)
        assert not validator.is_active(10)

    def test_apply_penalty_floors_at_zero(self):
        validator = Validator(index=0, stake=1.0)
        deducted = validator.apply_penalty(5.0)
        assert deducted == pytest.approx(1.0)
        assert validator.stake == 0.0

    def test_apply_penalty_rejects_negative(self):
        validator = Validator(index=0, stake=1.0)
        with pytest.raises(ValueError):
            validator.apply_penalty(-1.0)

    def test_apply_reward_with_cap(self):
        validator = Validator(index=0, stake=31.5)
        credited = validator.apply_reward(1.0, cap=32.0)
        assert credited == pytest.approx(0.5)
        assert validator.stake == pytest.approx(32.0)

    def test_apply_reward_rejects_negative(self):
        validator = Validator(index=0, stake=1.0)
        with pytest.raises(ValueError):
            validator.apply_reward(-0.1)


class TestRegistry:
    def test_make_registry_size_and_stake(self):
        registry = make_registry(8)
        assert len(registry) == 8
        assert all(v.stake == 32.0 for v in registry)
        assert [v.index for v in registry] == list(range(8))

    def test_make_registry_byzantine_labels_at_end(self):
        registry = make_registry(10, byzantine_fraction=0.3)
        labels = [v.label for v in registry]
        assert labels.count("byzantine") == 3
        assert labels[-3:] == ["byzantine"] * 3

    def test_make_registry_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            make_registry(10, byzantine_fraction=1.0)

    def test_make_registry_rejects_zero_validators(self):
        with pytest.raises(ValueError):
            make_registry(0)

    def test_total_stake(self):
        registry = make_registry(4)
        assert total_stake(registry) == pytest.approx(128.0)

    def test_total_stake_with_epoch_filters_exited(self):
        registry = make_registry(4)
        registry[0].exit(2)
        assert total_stake(registry, epoch=1) == pytest.approx(128.0)
        assert total_stake(registry, epoch=2) == pytest.approx(96.0)

    def test_stake_proportion(self):
        registry = make_registry(4)
        assert stake_proportion(registry[:1], registry) == pytest.approx(0.25)

    def test_stake_proportion_empty_registry_total(self):
        registry = [Validator(index=0, stake=0.0)]
        assert stake_proportion(registry, registry) == 0.0

    def test_byzantine_proportion_matches_fraction(self):
        registry = make_registry(10, byzantine_fraction=0.2)
        assert byzantine_proportion(registry) == pytest.approx(0.2)

    def test_byzantine_proportion_changes_with_stake(self):
        registry = make_registry(10, byzantine_fraction=0.2)
        for validator in registry:
            if validator.label == "byzantine":
                validator.stake = 16.0
        assert byzantine_proportion(registry) == pytest.approx(32.0 / (8 * 32 + 32))
