"""Tests for repro.analysis.partition_scenarios (the Table-1 scenario drivers)."""

import pytest

from repro.analysis.partition_scenarios import (
    NonSlashableFinalizer,
    run_all_honest_scenario,
    run_all_scenarios,
    run_bouncing_scenario,
    run_non_slashable_byzantine_scenario,
    run_slashable_byzantine_scenario,
    run_threshold_exceeding_scenario,
)
from repro.leak.groups import BranchView


def view(epoch: int, ratio: float = 0.0, finalized: bool = False) -> BranchView:
    return BranchView(
        branch_name="branch-1",
        epoch=epoch,
        previous_active_ratio=ratio,
        in_leak=True,
        finalized=finalized,
    )


class TestAllHonestScenario:
    def test_short_partition_is_safe(self):
        outcome = run_all_honest_scenario(p0=0.5, max_epochs=200)
        assert outcome.conflicting_finalization_epoch is None

    def test_long_partition_breaks_safety(self):
        outcome = run_all_honest_scenario(p0=0.5, max_epochs=5000)
        assert outcome.conflicting_finalization_epoch is not None
        # Discrete simulation lands within 2% of the paper's 4686 bound.
        assert abs(outcome.conflicting_finalization_epoch - 4686) / 4686 < 0.02
        assert outcome.outcome == "2 finalized branches"
        assert outcome.analytical_epoch == pytest.approx(4686.0)

    def test_uneven_split_slowest_branch_decides(self):
        outcome = run_all_honest_scenario(p0=0.6, max_epochs=5000)
        branches = outcome.simulation.branches
        finalizations = [b.finalization_epoch for b in branches.values()]
        assert outcome.conflicting_finalization_epoch == max(finalizations)


class TestSlashableScenario:
    def test_byzantine_accelerate_conflicting_finalization(self):
        attacked = run_slashable_byzantine_scenario(beta0=0.3, p0=0.5, max_epochs=5000)
        honest = run_all_honest_scenario(p0=0.5, max_epochs=5000)
        assert attacked.conflicting_finalization_epoch is not None
        assert (
            attacked.conflicting_finalization_epoch
            < honest.conflicting_finalization_epoch
        )

    def test_close_to_analytical_prediction(self):
        outcome = run_slashable_byzantine_scenario(beta0=0.2, p0=0.5, max_epochs=5000)
        assert outcome.conflicting_finalization_epoch == pytest.approx(
            outcome.analytical_epoch, rel=0.02
        )

    def test_byzantine_proportion_stays_reported(self):
        outcome = run_slashable_byzantine_scenario(beta0=0.2, p0=0.5, max_epochs=1000)
        assert 0.19 < outcome.max_byzantine_proportion < 0.45


class TestNonSlashableScenario:
    def test_finalizes_but_slower_than_slashing(self):
        non_slashing = run_non_slashable_byzantine_scenario(beta0=0.3, p0=0.5, max_epochs=6000)
        slashing = run_slashable_byzantine_scenario(beta0=0.3, p0=0.5, max_epochs=6000)
        assert non_slashing.conflicting_finalization_epoch is not None
        assert (
            non_slashing.conflicting_finalization_epoch
            >= slashing.conflicting_finalization_epoch
        )

    def test_finalizer_strategy_bursts_after_threshold(self):
        strategy = NonSlashableFinalizer(supermajority=2 / 3)
        pattern = strategy.pattern_for("branch-1", parity=0)
        # Below the threshold the agent alternates.
        assert pattern(0, view(0, ratio=0.5)) is True
        assert pattern(1, view(1, ratio=0.5)) is False
        # Once the ratio reaches 2/3 it stays active to finalize.
        assert pattern(2, view(2, ratio=0.7)) is True
        assert pattern(3, view(3, ratio=0.6)) is True  # burst continues

    def test_finalizer_strategy_never_active_on_both_branches_same_epoch(self):
        strategy = NonSlashableFinalizer(supermajority=2 / 3)
        pattern_1 = strategy.pattern_for("branch-1", parity=0)
        pattern_2 = strategy.pattern_for("branch-2", parity=1)
        for epoch in range(0, 12):
            ratio = 0.7 if epoch >= 4 else 0.5
            active_1 = pattern_1(epoch, view(epoch, ratio=ratio))
            active_2 = pattern_2(epoch, view(epoch, ratio=ratio))
            assert not (active_1 and active_2)


class TestThresholdScenario:
    def test_beta_exceeds_one_third_above_critical(self):
        outcome = run_threshold_exceeding_scenario(beta0=0.25, p0=0.5, max_epochs=6000)
        assert outcome.threshold_exceeded
        assert outcome.max_byzantine_proportion > 1 / 3
        assert outcome.outcome == "beta > 1/3"

    def test_beta_stays_below_one_third_below_critical(self):
        outcome = run_threshold_exceeding_scenario(beta0=0.2, p0=0.5, max_epochs=6000)
        assert not outcome.threshold_exceeded
        assert outcome.max_byzantine_proportion < 1 / 3


class TestBouncingScenario:
    def test_reports_probabilities(self):
        outcome = run_bouncing_scenario(beta0=0.33, p0=0.5, horizon_epochs=4000)
        assert outcome.scenario_id == "5.3"
        assert "exceed_probability_at_horizon" in outcome.details
        assert 0.0 <= outcome.details["exceed_probability_at_horizon"] <= 1.0
        assert outcome.details["log10_duration_probability"] < -50

    def test_feasibility_window_included(self):
        outcome = run_bouncing_scenario(beta0=0.33, p0=0.5)
        assert outcome.details["feasible_p0_lower"] < outcome.details["feasible_p0_upper"]


class TestRunAllScenarios:
    def test_five_scenarios_with_expected_outcomes(self):
        outcomes = run_all_scenarios(beta0=0.33, threshold_beta0=0.25, max_epochs=5000)
        assert [o.scenario_id for o in outcomes] == ["5.1", "5.2.1", "5.2.2", "5.2.3", "5.3"]
        assert outcomes[0].outcome == "2 finalized branches"
        assert outcomes[1].outcome == "2 finalized branches"
        assert outcomes[2].outcome == "2 finalized branches"
        assert outcomes[3].outcome == "beta > 1/3"
        assert outcomes[4].outcome == "beta > 1/3 probably"
