"""Tests for the experiment runners (one per table/figure) and the registry."""

import pytest

from repro.experiments import (
    ablations,
    bouncing_duration,
    fig2_stake_trajectories,
    fig3_active_ratio,
    fig6_finalization_times,
    fig7_threshold_region,
    fig9_stake_distribution,
    fig10_exceed_probability,
    registry,
    safety_bounds,
    table1_scenarios,
    table2_slashing_times,
    table3_nonslashing_times,
)
from repro.experiments.runner import build_parser, main, run_experiments


class TestFigure2:
    def test_series_and_ejections(self):
        result = fig2_stake_trajectories.run(max_epoch=8000, step=100)
        rows = {row["behavior"]: row for row in result.rows()}
        assert rows["active"]["final_stake_eth"] == pytest.approx(32.0)
        assert rows["inactive"]["discrete_ejection_epoch"] == pytest.approx(4685, rel=0.01)
        assert rows["semi-active"]["discrete_ejection_epoch"] == pytest.approx(7652, rel=0.01)
        assert "Figure 2" in result.format_text()

    def test_trajectories_ordered(self):
        result = fig2_stake_trajectories.run(max_epoch=4000, step=200)
        at_end = {name: trajectory.final_stake() for name, trajectory in result.trajectories.items()}
        assert at_end["inactive"] < at_end["semi-active"] < at_end["active"]


class TestFigure3:
    def test_threshold_epochs_ordered_by_p0(self):
        result = fig3_active_ratio.run(max_epoch=5000, step=100, include_simulation=False)
        # Larger p0 regains the supermajority sooner.
        assert result.threshold_epochs[0.6] < result.threshold_epochs[0.5]
        assert result.threshold_epochs[0.5] <= result.threshold_epochs[0.2]

    def test_ratio_jumps_to_one_at_ejection(self):
        result = fig3_active_ratio.run(
            p0_values=(0.2,), max_epoch=8000, step=100, include_simulation=False
        )
        assert result.analytical_series[0.2][-1] == pytest.approx(1.0)

    def test_simulation_tracks_analytical_before_ejection(self):
        result = fig3_active_ratio.run(p0_values=(0.4,), max_epoch=2000, step=100)
        analytical = result.analytical_series[0.4]
        simulated = result.simulated_series[0.4]
        assert analytical[10] == pytest.approx(simulated[10], abs=0.02)

    def test_initial_ratio_is_p0(self):
        result = fig3_active_ratio.run(p0_values=(0.3,), max_epoch=100, step=10, include_simulation=False)
        assert result.analytical_series[0.3][0] == pytest.approx(0.3)


class TestTables2And3:
    def test_table2_matches_paper_exactly(self):
        result = table2_slashing_times.run(include_simulation=False)
        for row in result.rows():
            assert row["epochs_analytical"] == row["epochs_paper"]

    def test_table2_simulation_cross_check(self):
        result = table2_slashing_times.run(
            beta0_values=(0.2, 0.33), include_simulation=True, simulation_max_epochs=4000
        )
        for row in result.rows():
            assert row["epochs_simulated"] == pytest.approx(row["epochs_analytical"], rel=0.03)

    def test_table3_within_one_percent_of_paper(self):
        result = table3_nonslashing_times.run(include_simulation=False)
        for row in result.rows():
            assert row["epochs_analytical"] == pytest.approx(row["epochs_paper"], rel=0.01)

    def test_formatting(self):
        assert "Table 2" in table2_slashing_times.run(include_simulation=False).format_text()
        assert "Table 3" in table3_nonslashing_times.run(include_simulation=False).format_text()


class TestFigure6:
    def test_curves_decrease_with_beta0(self):
        result = fig6_finalization_times.run(n_points=12)
        assert result.slashing_epochs[0] > result.slashing_epochs[-1]
        assert result.non_slashing_epochs[0] > result.non_slashing_epochs[-1]

    def test_non_slashing_never_faster(self):
        result = fig6_finalization_times.run(n_points=12)
        assert result.non_slashing_always_slower()

    def test_rows_and_text(self):
        result = fig6_finalization_times.run(n_points=5)
        assert len(result.rows()) == 5
        assert "Figure 6" in result.format_text()


class TestFigure7:
    def test_critical_beta0(self):
        result = fig7_threshold_region.run(p0_points=11, beta0_points=12)
        assert result.critical_beta0_at_half == pytest.approx(0.2421, abs=5e-4)

    def test_boundary_curve_monotone_in_p0(self):
        result = fig7_threshold_region.run(p0_points=21, beta0_points=5)
        betas = list(result.boundary_beta0)
        assert all(b >= a - 1e-12 for a, b in zip(betas, betas[1:]))

    def test_region_contains_paper_point(self):
        result = fig7_threshold_region.run(p0_points=11, beta0_points=34)
        region = result.region
        i = region.p0_values.index(0.5)
        feasible_betas = [
            region.beta0_values[j]
            for j in range(len(region.beta0_values))
            if region.feasible_on_both()[i, j]
        ]
        assert feasible_betas and min(feasible_betas) == pytest.approx(0.2421, abs=0.02)


class TestFigure9:
    def test_mass_accounting(self):
        result = fig9_stake_distribution.run()
        row = result.rows()[0]
        assert row["total_mass"] == pytest.approx(1.0, abs=5e-3)
        # At t=4024 the honest validators are still far from ejection, so
        # virtually all the mass sits in the continuous body of the law.
        assert row["ejection_mass"] == pytest.approx(0.0, abs=1e-6)
        assert row["continuous_mass"] == pytest.approx(1.0, abs=5e-3)
        assert "Figure 9" in result.format_text()

    def test_ejection_mass_appears_late(self):
        late = fig9_stake_distribution.run(epoch=7500)
        assert late.ejection_mass > 0.05

    def test_median_matches_semi_active_stake(self):
        from repro.leak.stake import semi_active_stake

        result = fig9_stake_distribution.run(epoch=4024)
        assert result.median_stake == pytest.approx(semi_active_stake(4024.0), rel=1e-9)
        assert 20.0 < result.median_stake < 30.0


class TestFigure10:
    def test_one_third_curve_sits_at_half(self):
        result = fig10_exceed_probability.run(beta0_values=(1 / 3,), max_epoch=4000, step=1000)
        series = result.series[1 / 3]
        assert series[1] == pytest.approx(0.5, abs=1e-3)

    def test_curves_ordered_by_beta0(self):
        result = fig10_exceed_probability.run(beta0_values=(0.3, 0.33, 1 / 3), max_epoch=6000, step=2000)
        at_6000 = [result.series[b][-1] for b in (0.3, 0.33, 1 / 3)]
        assert at_6000[0] <= at_6000[1] <= at_6000[2]

    def test_ejection_epoch_reported(self):
        result = fig10_exceed_probability.run(beta0_values=(0.33,), max_epoch=1000, step=500)
        assert result.byzantine_ejection_epoch == pytest.approx(7652, rel=0.01)
        assert "Figure 10" in result.format_text()


class TestAuxiliaryExperiments:
    def test_table1_outcomes_match_paper(self):
        result = table1_scenarios.run(max_epochs=5000)
        assert result.matches_paper()
        assert "Table 1" in result.format_text()

    def test_bouncing_duration_paper_estimate(self):
        result = bouncing_duration.run(beta0_values=(1 / 3,), horizons=(7000,))
        assert result.rows()[0]["log10_p_at_7000"] == pytest.approx(-121.0, abs=0.5)

    def test_safety_bound(self):
        result = safety_bounds.run(p0_values=(0.5,), include_simulation=False)
        assert result.worst_case_bound() == pytest.approx(4686.0)
        assert "4686" in result.format_text() or "Section 5.1" in result.format_text()

    def test_ablations_run(self):
        result = ablations.run(p0_values=(0.4, 0.5))
        assert result.ejection_model.rows()
        assert result.split_sensitivity.rows()
        assert result.early_finalization.rows()
        assert "Ablations" in result.format_text()

    def test_ablation_waiting_for_ejection_is_optimal(self):
        result = ablations.run()
        rows = result.early_finalization.rows()
        at_ejection = rows[0]["byzantine_proportion"]
        assert all(row["byzantine_proportion"] <= at_ejection + 1e-9 for row in rows)


class TestRegistryAndRunner:
    def test_all_ids_registered(self):
        ids = registry.list_ids()
        for expected in ("fig2", "fig3", "fig6", "fig7", "fig9", "fig10", "table1", "table2", "table3"):
            assert expected in ids

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            registry.get("fig99")

    def test_registry_run_dispatches(self):
        result = registry.run("fig6")
        assert hasattr(result, "rows")

    def test_runner_list_option(self, capsys):
        assert main(["--list"]) == 0
        captured = capsys.readouterr()
        assert "table2" in captured.out

    def test_runner_executes_experiment(self, capsys):
        assert main(["fig6"]) == 0
        captured = capsys.readouterr()
        assert "Figure 6" in captured.out

    def test_runner_without_arguments_prints_help(self, capsys):
        assert main([]) == 1

    def test_run_experiments_helper(self):
        reports = run_experiments(["bouncing-duration"])
        assert len(reports) == 1
        assert "Bouncing" in reports[0]

    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["--all"])
        assert args.all
