"""Tests for repro.spec.committees."""

import pytest

from repro.spec.committees import DutyScheduler, EpochDuties
from repro.spec.config import SpecConfig
from repro.spec.validator import make_registry


@pytest.fixture
def scheduler():
    return DutyScheduler(config=SpecConfig.minimal(), seed="test-seed")


@pytest.fixture
def registry():
    return make_registry(12, SpecConfig.minimal())


class TestDutyScheduler:
    def test_every_active_validator_attests_once(self, scheduler, registry):
        duties = scheduler.duties_for_epoch(0, registry)
        assigned = [i for committee in duties.attestation_committees for i in committee]
        assert sorted(assigned) == [v.index for v in registry]

    def test_one_proposer_per_slot(self, scheduler, registry):
        duties = scheduler.duties_for_epoch(0, registry)
        assert len(duties.proposers) == SpecConfig.minimal().slots_per_epoch
        assert all(p in {v.index for v in registry} for p in duties.proposers)

    def test_deterministic_given_seed(self, registry):
        a = DutyScheduler(SpecConfig.minimal(), seed="s").duties_for_epoch(3, registry)
        b = DutyScheduler(SpecConfig.minimal(), seed="s").duties_for_epoch(3, registry)
        assert a.proposers == b.proposers
        assert a.attestation_committees == b.attestation_committees

    def test_different_seeds_differ(self, registry):
        a = DutyScheduler(SpecConfig.minimal(), seed="s1").duties_for_epoch(0, registry)
        b = DutyScheduler(SpecConfig.minimal(), seed="s2").duties_for_epoch(0, registry)
        assert a.proposers != b.proposers or a.attestation_committees != b.attestation_committees

    def test_different_epochs_reshuffle(self, scheduler, registry):
        a = scheduler.duties_for_epoch(0, registry)
        b = scheduler.duties_for_epoch(1, registry)
        assert a.proposers != b.proposers or a.attestation_committees != b.attestation_committees

    def test_exited_validators_excluded(self, scheduler, registry):
        registry[0].exit(1)
        duties = scheduler.duties_for_epoch(5, registry)
        assigned = {i for committee in duties.attestation_committees for i in committee}
        assert 0 not in assigned
        assert 0 not in set(duties.proposers)

    def test_no_active_validators_raises(self, scheduler, registry):
        for validator in registry:
            validator.exit(0)
        with pytest.raises(ValueError):
            scheduler.duties_for_epoch(3, registry)

    def test_cache_and_clear(self, scheduler, registry):
        first = scheduler.duties_for_epoch(0, registry)
        assert scheduler.duties_for_epoch(0, registry) is first
        scheduler.clear_cache()
        assert scheduler.duties_for_epoch(0, registry) is not first


class TestEpochDuties:
    def test_proposer_for_absolute_slot(self, scheduler, registry):
        cfg = SpecConfig.minimal()
        duties = scheduler.duties_for_epoch(2, registry)
        slot = cfg.start_slot_of_epoch(2) + 1
        assert duties.proposer_for_slot(slot, cfg.slots_per_epoch) == duties.proposers[1]

    def test_committee_for_absolute_slot(self, scheduler, registry):
        cfg = SpecConfig.minimal()
        duties = scheduler.duties_for_epoch(1, registry)
        slot = cfg.start_slot_of_epoch(1) + 2
        assert duties.committee_for_slot(slot, cfg.slots_per_epoch) == duties.attestation_committees[2]

    def test_attestation_slot_of(self, scheduler, registry):
        cfg = SpecConfig.minimal()
        duties = scheduler.duties_for_epoch(0, registry)
        for validator in registry:
            offset = duties.attestation_slot_of(validator.index, cfg.slots_per_epoch)
            assert offset is not None
            assert validator.index in duties.attestation_committees[offset]

    def test_attestation_slot_of_unknown_validator(self, scheduler, registry):
        duties = scheduler.duties_for_epoch(0, registry)
        assert duties.attestation_slot_of(999, SpecConfig.minimal().slots_per_epoch) is None


class TestBouncingWindow:
    def test_proposer_in_first_slots_detects_byzantine_proposer(self, registry):
        scheduler = DutyScheduler(SpecConfig.minimal(), seed="window")
        duties = scheduler.duties_for_epoch(0, registry)
        first_proposer = duties.proposers[0]
        assert scheduler.proposer_in_first_slots(0, registry, [first_proposer], window=1)

    def test_proposer_in_first_slots_false_when_absent(self, registry):
        scheduler = DutyScheduler(SpecConfig.minimal(), seed="window")
        duties = scheduler.duties_for_epoch(0, registry)
        not_first = [i for i in range(12) if i not in duties.proposers[:2]]
        assert not scheduler.proposer_in_first_slots(0, registry, not_first[:1], window=2) or (
            not_first[0] in duties.proposers[:2]
        )
