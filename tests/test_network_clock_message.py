"""Tests for repro.network.clock and repro.network.message."""

import pytest

from repro.network.clock import SlotClock
from repro.network.message import Delivery, Message, MessageKind
from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.types import GENESIS_ROOT, Root


@pytest.fixture
def clock():
    return SlotClock(config=SpecConfig.mainnet())


class TestSlotClock:
    def test_slot_at_genesis(self, clock):
        assert clock.slot_at(0.0) == 0
        assert clock.slot_at(11.9) == 0
        assert clock.slot_at(12.0) == 1

    def test_epoch_at(self, clock):
        assert clock.epoch_at(0.0) == 0
        assert clock.epoch_at(32 * 12.0) == 1

    def test_start_of_slot_and_epoch(self, clock):
        assert clock.start_of_slot(3) == pytest.approx(36.0)
        assert clock.start_of_epoch(2) == pytest.approx(2 * 32 * 12.0)

    def test_attestation_deadline_inside_slot(self, clock):
        deadline = clock.attestation_deadline(5)
        assert clock.start_of_slot(5) < deadline < clock.start_of_slot(6)

    def test_is_epoch_start(self, clock):
        assert clock.is_epoch_start(0)
        assert clock.is_epoch_start(32)
        assert not clock.is_epoch_start(33)

    def test_time_before_genesis_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.slot_at(-1.0)

    def test_negative_slot_rejected(self, clock):
        with pytest.raises(ValueError):
            clock.start_of_slot(-1)

    def test_genesis_offset(self):
        clock = SlotClock(config=SpecConfig.mainnet(), genesis_time=100.0)
        assert clock.slot_at(100.0) == 0
        assert clock.start_of_slot(1) == pytest.approx(112.0)


class TestMessage:
    def _attestation(self) -> Attestation:
        return Attestation(
            validator_index=1,
            slot=1,
            head_root=Root.from_label("h"),
            ffg=FFGVote(source=GENESIS_CHECKPOINT, target=Checkpoint(epoch=0, root=GENESIS_ROOT)),
        )

    def test_block_wrapper(self):
        block = BeaconBlock.genesis()
        message = Message.block(block, sender=0, sent_at=1.0)
        assert message.kind is MessageKind.BLOCK
        assert message.payload is block
        assert message.sender == 0

    def test_attestation_wrapper(self):
        message = Message.attestation(self._attestation(), sender=1, sent_at=2.0)
        assert message.kind is MessageKind.ATTESTATION

    def test_message_ids_unique(self):
        a = Message.block(BeaconBlock.genesis(), 0, 0.0)
        b = Message.block(BeaconBlock.genesis(), 0, 0.0)
        assert a.message_id != b.message_id

    def test_delivery_ordering(self):
        early = Delivery(Message.block(BeaconBlock.genesis(), 0, 0.0), recipient=1, deliver_at=1.0)
        late = Delivery(Message.block(BeaconBlock.genesis(), 0, 0.0), recipient=1, deliver_at=2.0)
        assert early < late
        assert sorted([late, early])[0] is early
