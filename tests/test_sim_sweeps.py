"""Tests for the trial-parallel sweep engine (:mod:`repro.sim.sweeps`).

The headline contract: sweep rows are *byte-identical* at any ``jobs``
and ``chunk_size`` level, and a cached replay is byte-identical to the
cold computation — pinned here by comparing JSON serialisations, on both
the numpy and python stake backends.
"""

import json
import pickle

import pytest

from repro.cache import ResultCache
from repro.core.trials import DispatchCancelled
from repro.experiments import balancing_duration, registry
from repro.sim.sweeps import (
    SWEEP_CHUNK_SIZE,
    TRIAL_EXPERIMENT,
    ScenarioSpec,
    run_sweep,
    run_sweep_cached,
    run_sweep_grid,
    run_sweep_resumable,
    summarize_trial,
    trial_cache_query,
)

#: Small but non-trivial balancing-attack workload: 32 validators split
#: into 4 committees of 8, enough for proposer + swayer staffing.
BALANCING = ScenarioSpec(
    builder="balancing",
    kwargs={"n_validators": 32, "byzantine_fraction": 0.2, "sway_delay": 2.0},
    epochs=2,
    seed="test-sweep",
)


def rows_json(result) -> str:
    return json.dumps(result.rows())


class TestScenarioSpec:
    def test_unknown_builder_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(builder="no-such-builder")

    def test_non_positive_epochs_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(builder="honest", epochs=0)

    def test_trial_seed_is_a_pure_function_of_trial(self):
        assert BALANCING.trial_seed(None) == "test-sweep"
        assert BALANCING.trial_seed(0) == "test-sweep/trial-0"
        assert BALANCING.trial_seed(7) == "test-sweep/trial-7"

    def test_spec_pickles(self):
        clone = pickle.loads(pickle.dumps(BALANCING))
        assert clone == BALANCING
        assert clone.canonical() == BALANCING.canonical()

    def test_from_preset_and_overrides(self):
        spec = ScenarioSpec.from_preset("mainnet-healthy-10k", epochs=3, n_validators=16)
        assert spec.label == "mainnet-healthy-10k"
        assert spec.epochs == 3
        assert spec.kwargs["n_validators"] == 16
        smaller = spec.with_overrides(n_validators=8)
        assert smaller.kwargs["n_validators"] == 8
        assert spec.kwargs["n_validators"] == 16

    def test_from_preset_unknown(self):
        with pytest.raises(KeyError):
            ScenarioSpec.from_preset("no-such-preset")

    def test_name_falls_back_to_builder(self):
        assert ScenarioSpec(builder="honest").name == "honest"
        assert ScenarioSpec(builder="honest", label="x").name == "x"

    def test_build_runs_locally(self):
        spec = ScenarioSpec(builder="honest", kwargs={"n_validators": 8}, epochs=2)
        engine = spec.build(trial=0)
        result = engine.run(spec.epochs)
        row = summarize_trial(spec, 0, engine, result)
        # Rows are JSON-native scalars only: the cache round-trip contract.
        assert json.loads(json.dumps(row)) == row
        assert row["scenario"] == "honest"
        assert row["trial"] == 0
        assert row["n_validators"] == 8


class TestJobsInvariance:
    N_TRIALS = 4

    def test_rows_byte_identical_across_jobs(self):
        serial = run_sweep(BALANCING, self.N_TRIALS, jobs=1)
        parallel = run_sweep(BALANCING, self.N_TRIALS, jobs=2, chunk_size=2)
        assert rows_json(serial) == rows_json(parallel)

    def test_rows_byte_identical_across_chunk_sizes(self):
        coarse = run_sweep(BALANCING, self.N_TRIALS, jobs=1, chunk_size=SWEEP_CHUNK_SIZE)
        fine = run_sweep(BALANCING, self.N_TRIALS, jobs=1, chunk_size=1)
        assert rows_json(coarse) == rows_json(fine)

    def test_rows_byte_identical_on_python_backend(self):
        spec = BALANCING.with_overrides(backend="python")
        serial = run_sweep(spec, 2, jobs=1)
        parallel = run_sweep(spec, 2, jobs=2, chunk_size=1)
        assert rows_json(serial) == rows_json(parallel)

    def test_grid_rows_in_spec_major_order(self):
        specs = [
            ScenarioSpec(builder="honest", kwargs={"n_validators": 8}, label="a"),
            ScenarioSpec(builder="honest", kwargs={"n_validators": 12}, label="b"),
        ]
        result = run_sweep_grid(specs, 2, jobs=2, chunk_size=1)
        assert [(row["scenario"], row["trial"]) for row in result.rows()] == [
            ("a", 0),
            ("a", 1),
            ("b", 0),
            ("b", 1),
        ]
        assert result.scenarios() == ["a", "b"]
        assert [spec["label"] for spec in result.specs] == ["a", "b"]

    def test_trials_are_seed_decorrelated_but_reproducible(self):
        result = run_sweep(BALANCING, 3, jobs=1)
        again = run_sweep(BALANCING, 3, jobs=1)
        assert rows_json(result) == rows_json(again)
        seeds = [row["seed"] for row in result.rows()]
        assert len(set(seeds)) == 3

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            run_sweep(BALANCING, 0)
        with pytest.raises(ValueError):
            run_sweep_grid([], 2)


class TestSweepResult:
    def test_aggregate_reports_hold_statistics(self):
        result = run_sweep(BALANCING, 2, jobs=1)
        (summary,) = result.aggregate()
        assert summary["scenario"] == BALANCING.name
        assert summary["n_trials"] == 2
        assert 0 <= summary["min_balance_held_epochs"] <= summary["max_balance_held_epochs"]
        assert 0.0 <= summary["held_full_horizon_fraction"] <= 1.0
        assert "balancing" in result.format_text() or BALANCING.name in result.format_text()

    def test_rows_for_filters_by_scenario(self):
        specs = [
            ScenarioSpec(builder="honest", kwargs={"n_validators": 8}, label="a"),
            ScenarioSpec(builder="honest", kwargs={"n_validators": 8}, label="b"),
        ]
        result = run_sweep_grid(specs, 2, jobs=1)
        assert len(result.rows_for("a")) == 2
        assert all(row["scenario"] == "a" for row in result.rows_for("a"))


class TestCachedSweeps:
    def test_cold_and_cached_rows_byte_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold, cold_hit = run_sweep_cached([BALANCING], 2, cache, jobs=1)
        warm, warm_hit = run_sweep_cached([BALANCING], 2, cache, jobs=2, chunk_size=1)
        assert not cold_hit and warm_hit
        assert rows_json(cold) == rows_json(warm)
        live = run_sweep(BALANCING, 2, jobs=1)
        assert rows_json(cold) == rows_json(live)

    def test_different_trial_count_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep_cached([BALANCING], 2, cache, jobs=1)
        _, hit = run_sweep_cached([BALANCING], 3, cache, jobs=1)
        assert not hit


class TestResumableSweeps:
    """Per-trial cache granularity: resume, grow, and cancel sweeps."""

    SPEC = ScenarioSpec(builder="honest", kwargs={"n_validators": 8}, epochs=2, seed="resume")

    def test_rows_match_the_plain_sweep_byte_for_byte(self, tmp_path):
        cache = ResultCache(tmp_path)
        resumable = run_sweep_resumable([self.SPEC], 3, cache, jobs=1)
        plain = run_sweep(self.SPEC, 3, jobs=1)
        assert rows_json(resumable) == rows_json(plain)
        assert cache.stats.stores == 3

    def test_replay_computes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_sweep_resumable([self.SPEC], 3, cache, jobs=1)
        replay_cache = ResultCache(tmp_path)
        warm = run_sweep_resumable([self.SPEC], 3, replay_cache, jobs=1)
        assert replay_cache.stats.stores == 0
        assert replay_cache.stats.hits == 3
        assert rows_json(cold) == rows_json(warm)

    def test_grown_sweep_reuses_its_prefix(self, tmp_path):
        # Trial keys never include n_trials: extending a sweep computes
        # only the new tail.
        cache = ResultCache(tmp_path)
        small = run_sweep_resumable([self.SPEC], 2, cache, jobs=1)
        grow_cache = ResultCache(tmp_path)
        grown = run_sweep_resumable([self.SPEC], 5, grow_cache, jobs=1)
        assert grow_cache.stats.stores == 3
        assert rows_json(grown)[1:-1].startswith(rows_json(small)[1:-1])

    def test_trial_cache_query_is_n_trials_free(self):
        config, seed = trial_cache_query(self.SPEC, 4)
        assert config == {"spec": self.SPEC.canonical(), "trial": 4}
        assert seed == self.SPEC.trial_seed(4)

    def test_progress_streams_resume_point_then_chunks(self, tmp_path):
        cache = ResultCache(tmp_path)
        # Pre-store one trial, then watch the counters stream.
        run_sweep_resumable([self.SPEC], 1, cache, jobs=1)
        events = []
        run_sweep_resumable(
            [self.SPEC],
            3,
            ResultCache(tmp_path),
            jobs=1,
            chunk_size=1,
            progress=lambda done, total, cached: events.append((done, total, cached)),
        )
        assert events == [(1, 3, 1), (2, 3, 1), (3, 3, 1)]

    def test_cancel_persists_finished_chunks_then_resumes(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(DispatchCancelled):
            run_sweep_resumable(
                [self.SPEC],
                4,
                cache,
                jobs=1,
                chunk_size=1,
                cancel=lambda: cache.stats.stores >= 2,
            )
        assert cache.stats.stores == 2
        resume_cache = ResultCache(tmp_path)
        resumed = run_sweep_resumable([self.SPEC], 4, resume_cache, jobs=1)
        # Only the missing half computed on resume...
        assert resume_cache.stats.stores == 2
        # ...and the result equals an uninterrupted run byte for byte.
        uninterrupted = run_sweep_resumable([self.SPEC], 4, ResultCache(tmp_path / "fresh"), jobs=1)
        assert rows_json(resumed) == rows_json(uninterrupted)

    def test_grid_rows_in_spec_major_order(self, tmp_path):
        specs = [
            ScenarioSpec(builder="honest", kwargs={"n_validators": 8}, label="a"),
            ScenarioSpec(builder="honest", kwargs={"n_validators": 12}, label="b"),
        ]
        cache = ResultCache(tmp_path)
        result = run_sweep_resumable(specs, 2, cache, jobs=1)
        assert [(row["scenario"], row["trial"]) for row in result.rows()] == [
            ("a", 0),
            ("a", 1),
            ("b", 0),
            ("b", 1),
        ]
        plain = run_sweep_grid(specs, 2, jobs=1)
        assert rows_json(result) == rows_json(plain)

    def test_trial_entries_live_under_the_trial_experiment_id(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep_resumable([self.SPEC], 1, cache, jobs=1)
        config, seed = trial_cache_query(self.SPEC, 0)
        assert cache.fetch(TRIAL_EXPERIMENT, config, seed) is not None

    def test_invalid_arguments(self, tmp_path):
        cache = ResultCache(tmp_path)
        with pytest.raises(ValueError):
            run_sweep_resumable([self.SPEC], 0, cache)
        with pytest.raises(ValueError):
            run_sweep_resumable([], 2, cache)


class TestSpecCanonicalRoundTrip:
    def test_from_canonical_round_trips(self):
        spec = ScenarioSpec(
            builder="balancing",
            kwargs={"n_validators": 32, "byzantine_fraction": 0.2},
            epochs=3,
            seed="rt",
            label="case",
        )
        clone = ScenarioSpec.from_canonical(spec.canonical())
        assert clone == spec
        assert clone.canonical() == spec.canonical()

    def test_from_canonical_reinflates_spec_config(self):
        from repro.spec.config import SpecConfig

        spec = ScenarioSpec(
            builder="honest",
            kwargs={"n_validators": 8, "config": SpecConfig.mainnet()},
            epochs=2,
        )
        clone = ScenarioSpec.from_canonical(spec.canonical())
        assert clone.kwargs["config"] == SpecConfig.mainnet()
        assert clone.canonical() == spec.canonical()


class TestBalancingDurationExperiment:
    def test_smoke_and_row_shape(self):
        result = balancing_duration.run(
            committee_sizes=(8,),
            sway_delays=(0.0, 2.0),
            epochs=2,
            n_trials=2,
            jobs=1,
        )
        rows = result.rows()
        assert [(row["committee_size"], row["sway_delay"]) for row in rows] == [
            (8, 0.0),
            (8, 2.0),
        ]
        for row in rows:
            assert row["n_trials"] == 2
            assert 0 <= row["min_balance_held_epochs"] <= row["max_balance_held_epochs"] <= 2
            assert not row["any_safety_violated"]
        assert len(result.trial_rows()) == 4
        assert "hold duration" in result.format_text()

    def test_jobs_invariant(self):
        kwargs = dict(committee_sizes=(8,), sway_delays=(0.0,), epochs=2, n_trials=2)
        serial = balancing_duration.run(jobs=1, **kwargs)
        parallel = balancing_duration.run(jobs=2, **kwargs)
        assert json.dumps(serial.rows()) == json.dumps(parallel.rows())

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            balancing_duration.run(committee_sizes=())
        with pytest.raises(ValueError):
            balancing_duration.run(committee_sizes=(1,))
        with pytest.raises(ValueError):
            balancing_duration.run(sway_delays=(-1.0,))

    def test_registered_with_runner_options(self):
        experiment = registry.get("balancing-duration")
        accepted = experiment.accepted_options()
        assert "jobs" in accepted
        assert "seed" in accepted
        assert "n_trials" in accepted
        assert "backend" in accepted
        assert experiment.parallelizable
        assert experiment.cacheable
