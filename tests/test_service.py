"""Tests for the experiment service (:mod:`repro.service`).

Covers the job-store lifecycle (atomic records, race-free claims,
dead-worker recovery), the executor contracts (retry budget, per-job
timeout, graceful shutdown requeueing), the ``repro-service`` CLI, and
the headline crash-tolerance property: a sweep job killed with SIGKILL
mid-run resumes after restart, computing only the not-yet-stored trials,
with final rows byte-identical to an uninterrupted run.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.cache import ResultCache
from repro.service.cli import main as service_main
from repro.service.executor import execute_job, run_worker_loop
from repro.service.jobs import JobRecord, JobStore
from repro.sim.sweeps import ScenarioSpec, run_sweep

#: The sweep scenario of the integration tests: heavy enough that a
#: worker can be killed mid-run (~tens of ms per trial), light enough
#: for the suite.
SWEEP_SCENARIO = ScenarioSpec(
    builder="balancing",
    kwargs={"n_validators": 32, "byzantine_fraction": 0.2},
    epochs=2,
    seed="service-test",
)
N_TRIALS = 6


def sweep_spec(n_trials: int = N_TRIALS, chunk_size: int = 1) -> dict:
    return {
        "specs": [SWEEP_SCENARIO.canonical()],
        "n_trials": n_trials,
        "chunk_size": chunk_size,
    }


def service_env() -> dict:
    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestJobStore:
    def test_submit_get_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit("sweep", sweep_spec(), timeout=5.0)
        loaded = store.get(record.job_id)
        assert loaded.kind == "sweep"
        assert loaded.state == "queued"
        assert loaded.spec == sweep_spec()
        assert loaded.timeout == 5.0
        assert loaded.attempts == 0

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(KeyError):
            JobStore(tmp_path).get("nope")

    def test_invalid_submissions_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(ValueError):
            store.submit("mystery", {})
        with pytest.raises(ValueError):
            store.submit("sweep", sweep_spec(), max_attempts=0)
        record = store.submit("sweep", sweep_spec())
        with pytest.raises(ValueError):
            store.submit("sweep", sweep_spec(), job_id=record.job_id)

    def test_list_jobs_oldest_first_with_state_filter(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.submit("sweep", sweep_spec(), job_id="a")
        second = store.submit("sweep", sweep_spec(), job_id="b")
        second.created_at = first.created_at + 1.0
        store.save(second)
        assert [r.job_id for r in store.list_jobs()] == ["a", "b"]
        claimed = store.claim("a")
        assert claimed is not None
        assert [r.job_id for r in store.list_jobs(states=("queued",))] == ["b"]
        assert [r.job_id for r in store.list_jobs(states=("running",))] == ["a"]

    def test_claim_is_exclusive(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit("sweep", sweep_spec())
        first = store.claim(record.job_id)
        assert first is not None
        assert first.state == "running"
        assert first.attempts == 1
        assert first.worker_pid == os.getpid()
        # Second claimer loses while the lock is held.
        assert store.claim(record.job_id) is None

    def test_claim_of_non_queued_job_returns_none(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit("sweep", sweep_spec())
        claimed = store.claim(record.job_id)
        store.finish(claimed, {"ok": True})
        assert store.claim(record.job_id) is None

    def test_requeue_refunds_the_attempt_on_shutdown(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit("sweep", sweep_spec())
        claimed = store.claim(record.job_id)
        store.requeue(claimed, consume_attempt=False)
        again = store.get(record.job_id)
        assert again.state == "queued"
        assert again.attempts == 0
        # A retryable failure keeps the attempt consumed.
        claimed = store.claim(record.job_id)
        store.requeue(claimed, error="boom", consume_attempt=True)
        again = store.get(record.job_id)
        assert again.attempts == 1
        assert again.error == "boom"

    def test_recover_requeues_dead_workers_only(self, tmp_path):
        store = JobStore(tmp_path)
        dead = store.submit("sweep", sweep_spec(), job_id="dead")
        live = store.submit("sweep", sweep_spec(), job_id="live")
        for job_id in ("dead", "live"):
            assert store.claim(job_id) is not None
        # Forge a dead claimant pid on one record (SIGKILL aftermath).
        crashed = store.get("dead")
        crashed.worker_pid = 2 ** 22 + 12345  # beyond default pid_max
        store.save(crashed)
        recovered = store.recover()
        assert [r.job_id for r in recovered] == ["dead"]
        assert store.get("dead").state == "queued"
        assert store.get("dead").attempts == 1  # the crashed attempt stays consumed
        assert store.get("live").state == "running"
        # The stale lock was reclaimed: the job can be claimed again.
        assert store.claim("dead") is not None

    def test_recover_fails_jobs_out_of_budget(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.submit("sweep", sweep_spec(), max_attempts=1)
        claimed = store.claim(record.job_id)
        claimed.worker_pid = 2 ** 22 + 12345
        store.save(claimed)
        store.recover()
        final = store.get(record.job_id)
        assert final.state == "failed"
        assert "budget" in final.error

    def test_records_survive_json_round_trip(self):
        record = JobRecord(job_id="x", kind="sweep", spec={"n_trials": 2, "specs": []})
        clone = JobRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert clone == record


class TestExecutor:
    def test_sweep_job_runs_to_done_with_streamed_progress(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        cache = ResultCache(tmp_path / "cache")
        record = store.submit("sweep", sweep_spec(n_trials=2))
        claimed = store.claim(record.job_id)
        execute_job(claimed, store, cache, jobs=1)
        final = store.get(record.job_id)
        assert final.state == "done"
        assert final.progress == {"total": 2, "done": 2, "cached": 0}
        rows = final.result["trial_rows"]
        plain = run_sweep(SWEEP_SCENARIO, 2, jobs=1)
        assert json.dumps(rows) == json.dumps(plain.rows())

    def test_experiment_job_shares_the_runner_cache_address(self, tmp_path):
        from repro.experiments.runner import run_experiments

        store = JobStore(tmp_path / "svc")
        cache = ResultCache(tmp_path / "cache")
        record = store.submit("experiment", {"experiment": "safety-bound", "options": {}})
        claimed = store.claim(record.job_id)
        execute_job(claimed, store, cache)
        final = store.get(record.job_id)
        assert final.state == "done"
        assert final.progress == {"total": 1, "done": 1, "cached": 0}
        # The CLI runner replays the service job's entry (shared key).
        (report,) = run_experiments(["safety-bound"], cache=cache)
        assert report == final.result["report"]
        assert cache.stats.hits >= 1

    def test_failing_job_retries_then_fails(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        cache = ResultCache(tmp_path / "cache")
        record = store.submit(
            "experiment", {"experiment": "no-such-experiment"}, max_attempts=2
        )
        processed = run_worker_loop(store, cache, idle_exit=True)
        final = store.get(record.job_id)
        assert final.state == "failed"
        assert final.attempts == 2
        assert "no-such-experiment" in final.error
        assert processed == 2  # both attempts went through the loop

    def test_timeout_consumes_attempts_until_failed(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        cache = ResultCache(tmp_path / "cache")
        record = store.submit("sweep", sweep_spec(), max_attempts=2, timeout=0.0)
        run_worker_loop(store, cache, idle_exit=True)
        final = store.get(record.job_id)
        assert final.state == "failed"
        assert "timed out" in final.error

    def test_graceful_shutdown_requeues_and_resume_completes(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        cache = ResultCache(tmp_path / "cache")
        record = store.submit("sweep", sweep_spec())
        claimed = store.claim(record.job_id)
        # "Shutdown" as soon as two trials are persisted.
        execute_job(
            claimed, store, cache, jobs=1, cancel=lambda: cache.stats.stores >= 2
        )
        interrupted = store.get(record.job_id)
        assert interrupted.state == "queued"
        assert interrupted.attempts == 0  # refunded: not the job's fault
        assert cache.stats.stores == 2
        # Restart: only the remaining trials compute.
        resume_cache = ResultCache(tmp_path / "cache")
        run_worker_loop(store, resume_cache, jobs=1, idle_exit=True)
        final = store.get(record.job_id)
        assert final.state == "done"
        assert resume_cache.stats.stores == N_TRIALS - 2
        assert final.progress == {
            "total": N_TRIALS,
            "done": N_TRIALS,
            "cached": 2,
        }

    def test_unknown_job_kind_fails_cleanly(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        cache = ResultCache(tmp_path / "cache")
        record = store.submit("sweep", sweep_spec(), max_attempts=1)
        record.kind = "mystery"
        store.save(record)
        claimed = store.claim(record.job_id)
        execute_job(claimed, store, cache)
        assert store.get(record.job_id).state == "failed"


class TestKillAndResume:
    """The acceptance property: SIGKILL mid-run, restart, resume exactly."""

    def test_sigkill_mid_sweep_resumes_from_stored_trials(self, tmp_path):
        service_dir = tmp_path / "svc"
        store = JobStore(service_dir)
        cache_dir = service_dir / "cache"
        record = store.submit("sweep", sweep_spec())

        worker = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.cli",
                "run-workers",
                "--service-dir",
                str(service_dir),
                "--poll",
                "0.05",
            ],
            env=service_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                stored = (
                    len(list(cache_dir.glob("*.json"))) if cache_dir.exists() else 0
                )
                if stored >= 2:
                    break
                time.sleep(0.02)
            else:
                pytest.fail("worker never stored two trials")
        finally:
            worker.send_signal(signal.SIGKILL)
            worker.wait()

        stored_before = len(list(cache_dir.glob("*.json")))
        assert 0 < stored_before < N_TRIALS, "kill window missed; tune the workload"
        # The record still claims "running" — recovery happens on restart.
        assert store.get(record.job_id).state == "running"

        # Restart the workers in-process with fresh cache stats: only the
        # not-yet-stored trials may compute.
        resume_cache = ResultCache(cache_dir)
        run_worker_loop(store, resume_cache, jobs=1, idle_exit=True)
        final = store.get(record.job_id)
        assert final.state == "done"
        assert resume_cache.stats.stores == N_TRIALS - stored_before

        # Byte-identical to the same job run uninterrupted from scratch.
        reference_store = JobStore(tmp_path / "ref")
        reference = reference_store.submit("sweep", sweep_spec())
        run_worker_loop(
            reference_store, ResultCache(tmp_path / "ref" / "cache"), idle_exit=True
        )
        reference_final = reference_store.get(reference.job_id)
        assert json.dumps(final.result) == json.dumps(reference_final.result)


class TestServiceCLI:
    def run_cli(self, *args, capsys=None):
        code = service_main([str(a) for a in args])
        return code

    def test_submit_prints_exactly_the_job_id(self, tmp_path, capsys):
        code = self.run_cli(
            "submit",
            "--service-dir",
            tmp_path,
            "--builder",
            "honest",
            "--scenario-arg",
            "n_validators=8",
            "--trials",
            "1",
        )
        assert code == 0
        job_id = capsys.readouterr().out.strip()
        assert "\n" not in job_id
        record = JobStore(tmp_path).get(job_id)
        assert record.kind == "sweep"
        assert record.spec["n_trials"] == 1
        assert record.spec["specs"][0]["builder"] == "honest"
        assert record.spec["specs"][0]["kwargs"] == {"n_validators": 8}

    def test_submit_experiment_validates_id_and_options(self, tmp_path):
        with pytest.raises(KeyError):
            self.run_cli(
                "submit", "--service-dir", tmp_path, "--experiment", "no-such"
            )
        with pytest.raises(SystemExit):
            self.run_cli(
                "submit",
                "--service-dir",
                tmp_path,
                "--experiment",
                "safety-bound",
                "--option",
                "bogus_option=1",
            )

    def test_full_cycle_submit_run_status_results(self, tmp_path, capsys):
        self.run_cli(
            "submit",
            "--service-dir",
            tmp_path,
            "--builder",
            "honest",
            "--scenario-arg",
            "n_validators=8",
            "--trials",
            "2",
        )
        job_id = capsys.readouterr().out.strip()
        assert self.run_cli("run-workers", "--service-dir", tmp_path, "--idle-exit") == 0
        capsys.readouterr()
        assert self.run_cli("status", "--service-dir", tmp_path) == 0
        status = capsys.readouterr().out
        assert job_id in status and "done" in status
        assert self.run_cli("watch", "--service-dir", tmp_path, job_id) == 0
        capsys.readouterr()
        assert (
            self.run_cli("results", "--service-dir", tmp_path, job_id, "--json") == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["trial_rows"]) == 2
        assert self.run_cli("results", "--service-dir", tmp_path, job_id) == 0
        assert "sweep" in capsys.readouterr().out.lower()

    def test_results_of_unfinished_job_exits_nonzero(self, tmp_path, capsys):
        self.run_cli(
            "submit",
            "--service-dir",
            tmp_path,
            "--builder",
            "honest",
            "--trials",
            "1",
        )
        job_id = capsys.readouterr().out.strip()
        assert self.run_cli("results", "--service-dir", tmp_path, job_id) == 1

    def test_watch_times_out_on_stuck_jobs(self, tmp_path, capsys):
        self.run_cli(
            "submit",
            "--service-dir",
            tmp_path,
            "--builder",
            "honest",
            "--trials",
            "1",
        )
        job_id = capsys.readouterr().out.strip()
        code = self.run_cli(
            "watch",
            "--service-dir",
            tmp_path,
            job_id,
            "--interval",
            "0.01",
            "--timeout",
            "0.05",
        )
        assert code == 2

    def test_status_of_empty_queue(self, tmp_path, capsys):
        assert self.run_cli("status", "--service-dir", tmp_path) == 0
        assert "no jobs" in capsys.readouterr().out
