"""Tests for repro.spec.checkpoint."""

import pytest

from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.types import Root


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"block-{epoch}"))


class TestCheckpoint:
    def test_genesis_checkpoint_epoch_zero(self):
        assert GENESIS_CHECKPOINT.epoch == 0

    def test_rejects_negative_epoch(self):
        with pytest.raises(ValueError):
            Checkpoint(epoch=-1, root=Root.from_label("x"))

    def test_checkpoints_are_hashable_and_comparable(self):
        assert cp(1) == cp(1)
        assert cp(1) != cp(2)
        assert len({cp(1), cp(1), cp(2)}) == 2

    def test_ordering_by_epoch(self):
        assert cp(1) < cp(2)


class TestFFGVote:
    def test_valid_vote(self):
        vote = FFGVote(source=cp(1), target=cp(2))
        assert vote.span() == 1

    def test_rejects_target_before_source(self):
        with pytest.raises(ValueError):
            FFGVote(source=cp(3), target=cp(2))

    def test_self_link(self):
        vote = FFGVote(source=cp(2, "a"), target=cp(2, "a"))
        assert vote.is_self_link()

    def test_surround_detection(self):
        outer = FFGVote(source=cp(1), target=cp(5))
        inner = FFGVote(source=cp(2), target=cp(4))
        assert outer.surrounds(inner)
        assert not inner.surrounds(outer)

    def test_surround_requires_strict_nesting(self):
        a = FFGVote(source=cp(1), target=cp(4))
        b = FFGVote(source=cp(1), target=cp(3))
        assert not a.surrounds(b)
        assert not b.surrounds(a)

    def test_double_vote_same_target_epoch_different_vote(self):
        a = FFGVote(source=cp(1), target=cp(2, "branch-a"))
        b = FFGVote(source=cp(1), target=cp(2, "branch-b"))
        assert a.conflicts_as_double_vote(b)
        assert b.conflicts_as_double_vote(a)

    def test_identical_votes_are_not_double_votes(self):
        a = FFGVote(source=cp(1), target=cp(2, "same"))
        b = FFGVote(source=cp(1), target=cp(2, "same"))
        assert not a.conflicts_as_double_vote(b)

    def test_different_target_epochs_not_double_vote(self):
        a = FFGVote(source=cp(1), target=cp(2))
        b = FFGVote(source=cp(1), target=cp(3))
        assert not a.conflicts_as_double_vote(b)
