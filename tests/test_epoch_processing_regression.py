"""Regression: ``process_epoch`` is byte-identical pre/post the array port.

``spec/rewards.py`` and ``spec/slashing.py`` used to loop over ``Validator``
objects; they now delegate to the flat-array kernels in
:mod:`repro.core.backend`.  This suite pins the refactor down:

* a hand-written per-validator loop reference (the pre-refactor
  implementation, with the zero-deduction and slash-after-ejection fixes
  applied) must produce *byte-identical* ``BeaconState`` trajectories,
* the ``"numpy"`` and ``"python"`` backends must agree byte-for-byte
  through multi-epoch ``process_epoch`` runs, leak and slashings included.
"""

import numpy as np
import pytest

from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.finality import FFGVotePool
from repro.spec.rewards import process_attestation_rewards
from repro.spec.slashing import apply_slashing
from repro.spec.state import BeaconState
from repro.spec.state_transition import process_epoch
from repro.spec.types import Root
from repro.spec.validator import make_registry


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"c{epoch}"))


def snapshot(state: BeaconState):
    """Every mutable per-validator field, as exact values."""
    return [
        (v.index, v.stake, v.inactivity_score, v.slashed, v.exit_epoch)
        for v in state.validators
    ]


# ----------------------------------------------------------------------
# Pre-refactor loop references (with the two bugfixes applied)
# ----------------------------------------------------------------------
def legacy_process_attestation_rewards(state, active_indices, in_leak):
    """The per-validator loop that spec/rewards.py ran before the port."""
    cfg = state.config
    active_set = set(active_indices)
    rewarded, penalized = [], []
    for validator in state.validators:
        if not validator.is_active(state.current_epoch) or validator.slashed:
            continue
        if validator.index in active_set:
            if not in_leak:
                credited = validator.apply_reward(
                    validator.stake * cfg.base_reward_fraction,
                    cap=cfg.max_effective_balance,
                )
                if credited > 0:
                    rewarded.append(validator.index)
        else:
            deducted = validator.apply_penalty(
                validator.stake * cfg.attestation_penalty_fraction
            )
            if deducted > 0:  # bugfix: record only non-zero deductions
                penalized.append(validator.index)
    return rewarded, penalized


def legacy_apply_slashing(state, validator_indices):
    """The per-validator loop that spec/slashing.py ran before the port."""
    slashed_indices = []
    for index in validator_indices:
        validator = state.validators[index]
        # bugfix: an already-exited validator cannot be charged any more.
        if validator.slashed or not validator.is_active(state.current_epoch):
            continue
        validator.slashed = True
        validator.apply_penalty(
            validator.stake * state.config.min_slashing_penalty_fraction
        )
        validator.exit(state.current_epoch + 1)
        slashed_indices.append(index)
    return slashed_indices


class TestLoopReferenceEquivalence:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    @pytest.mark.parametrize("in_leak", [True, False])
    def test_rewards_match_legacy_loop(self, backend, in_leak):
        rng = np.random.default_rng(3)
        array_state = BeaconState.genesis(make_registry(24), SpecConfig.minimal())
        for validator in array_state.validators:
            validator.stake = float(rng.uniform(0.0, 33.0))
        array_state.validators[0].stake = 0.0  # stake-0 edge case
        array_state.validators[1].exit(0)  # exited edge case
        loop_state = array_state.fork()
        active = set(int(i) for i in np.flatnonzero(rng.random(24) < 0.5))

        summary = process_attestation_rewards(
            array_state, active, in_leak=in_leak, backend=backend
        )
        rewarded, penalized = legacy_process_attestation_rewards(
            loop_state, active, in_leak
        )
        assert snapshot(array_state) == snapshot(loop_state)
        assert summary.rewarded_indices == rewarded
        assert summary.penalized_indices == penalized
        assert 0 not in summary.penalized_indices
        assert 1 not in summary.penalized_indices

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_slashing_matches_legacy_loop(self, backend):
        array_state = BeaconState.genesis(make_registry(12), SpecConfig.minimal())
        array_state.validators[2].slashed = True
        array_state.validators[2].exit(0)
        array_state.validators[3].exit(0)  # ejected, never slashed
        loop_state = array_state.fork()
        targets = [5, 2, 3, 7, 5]  # duplicate + already-slashed + ejected

        outcome = apply_slashing(array_state, targets, backend=backend)
        slashed = legacy_apply_slashing(loop_state, targets)
        assert snapshot(array_state) == snapshot(loop_state)
        assert outcome.slashed_indices == slashed == [5, 7]


def drive_epochs(backend: str, epochs: int = 30):
    """A multi-epoch chain with justification gaps, a leak and slashings."""
    rng = np.random.default_rng(17)
    state = BeaconState.genesis(
        make_registry(30, byzantine_fraction=0.3), SpecConfig.minimal()
    )
    pool = FFGVotePool()
    snapshots = []
    for epoch in range(1, epochs + 1):
        state.current_epoch = epoch
        active = set(int(i) for i in np.flatnonzero(rng.random(30) < 0.6))
        # Healthy start, then a long vote drought that triggers the leak.
        if epoch < 4:
            source = GENESIS_CHECKPOINT if epoch == 1 else cp(epoch - 1)
            for validator in range(30):
                pool.add_vote(validator, FFGVote(source=source, target=cp(epoch)))
        slashable = [int(i) for i in rng.integers(0, 30, size=2)] if epoch % 7 == 0 else []
        report = process_epoch(
            state, pool, active_indices=active, slashable_indices=slashable,
            backend=backend,
        )
        snapshots.append(
            (
                snapshot(state),
                report.in_leak,
                report.slashing.slashed_indices,
                sorted(report.inactivity.ejected_indices),
                state.last_finalized_epoch,
            )
        )
    return snapshots


class TestProcessEpochTrajectory:
    def test_backends_byte_identical_through_process_epoch(self):
        assert drive_epochs("numpy") == drive_epochs("python")

    def test_trajectory_exercises_all_forces(self):
        snapshots = drive_epochs("numpy")
        assert any(in_leak for _, in_leak, _, _, _ in snapshots)
        assert any(slashed for _, _, slashed, _, _ in snapshots)
        final_registry = snapshots[-1][0]
        assert any(exit_epoch is not None for _, _, _, _, exit_epoch in final_registry)
