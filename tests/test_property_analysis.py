"""Property-based tests (hypothesis) for the leak and analysis layers."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.distributions import BouncingStakeDistribution
from repro.analysis.finalization_time import (
    threshold_epoch_honest_only,
    threshold_epoch_non_slashing,
    threshold_epoch_slashing,
)
from repro.analysis.randomwalk import exact_score_distribution
from repro.leak.ratios import (
    active_ratio_honest_only,
    active_ratio_with_semi_active_byzantine,
    active_ratio_with_slashing_byzantine,
    byzantine_proportion,
    max_byzantine_proportion,
)
from repro.leak.stake import Behavior, inactive_stake, semi_active_stake

probabilities = st.floats(min_value=0.01, max_value=0.99)
beta0s = st.floats(min_value=0.0, max_value=0.33)
times = st.floats(min_value=0.0, max_value=8000.0)


class TestStakeFunctionProperties:
    @given(t=times)
    @settings(max_examples=60, deadline=None)
    def test_stakes_bounded_and_ordered(self, t):
        inactive = inactive_stake(t)
        semi = semi_active_stake(t)
        assert 0.0 < inactive <= 32.0
        assert 0.0 < semi <= 32.0
        assert inactive <= semi + 1e-12

    @given(t1=times, t2=times)
    @settings(max_examples=60, deadline=None)
    def test_stakes_monotone_decreasing(self, t1, t2):
        low, high = sorted((t1, t2))
        assert inactive_stake(high) <= inactive_stake(low) + 1e-12
        assert semi_active_stake(high) <= semi_active_stake(low) + 1e-12


class TestRatioProperties:
    @given(t=times, p0=probabilities)
    @settings(max_examples=80, deadline=None)
    def test_equation5_bounded(self, t, p0):
        ratio = active_ratio_honest_only(t, p0)
        assert 0.0 <= ratio <= 1.0
        assert ratio >= p0 - 1e-12  # inactivity penalties only help the active side

    @given(t=times, p0=probabilities, beta0=beta0s)
    @settings(max_examples=80, deadline=None)
    def test_equation8_dominates_equation10_dominates_equation5(self, t, p0, beta0):
        honest = active_ratio_honest_only(t, p0)
        semi = active_ratio_with_semi_active_byzantine(t, p0, beta0)
        slashing = active_ratio_with_slashing_byzantine(t, p0, beta0)
        assert slashing >= semi - 1e-9
        assert semi >= honest - 1e-9

    @given(t=times, p0=probabilities, beta0=beta0s)
    @settings(max_examples=80, deadline=None)
    def test_byzantine_proportion_bounded(self, t, p0, beta0):
        beta = byzantine_proportion(t, p0, beta0)
        assert 0.0 <= beta <= 1.0

    @given(p0=probabilities, beta0=st.floats(min_value=0.01, max_value=0.33))
    @settings(max_examples=60, deadline=None)
    def test_beta_max_bounded_and_decreasing_in_p0(self, p0, beta0):
        peak = max_byzantine_proportion(p0, beta0)
        assert 0.0 <= peak <= 1.0
        # Fewer honest-active validators on the branch can only help the attacker.
        smaller_p0 = p0 / 2
        assert max_byzantine_proportion(smaller_p0, beta0) >= peak - 1e-12

    @given(beta0=st.floats(min_value=0.01, max_value=0.33))
    @settings(max_examples=40, deadline=None)
    def test_beta_max_exceeds_initial_for_even_split(self, beta0):
        # For the paper's even split, waiting for the honest ejection always
        # increases the Byzantine proportion.
        assert max_byzantine_proportion(0.5, beta0) >= beta0 - 1e-9


class TestCrossingTimeProperties:
    @given(p0=st.floats(min_value=0.05, max_value=0.63), beta0=beta0s)
    @settings(max_examples=60, deadline=None)
    def test_byzantine_never_slow_down_crossing(self, p0, beta0):
        honest = threshold_epoch_honest_only(p0)
        slashing = threshold_epoch_slashing(p0, beta0)
        non_slashing = threshold_epoch_non_slashing(p0, beta0)
        assert slashing <= honest + 1e-6
        assert non_slashing <= honest + 1e-6
        assert slashing <= non_slashing + 1e-6

    @given(p0=st.floats(min_value=0.05, max_value=0.63), beta0=beta0s)
    @settings(max_examples=40, deadline=None)
    def test_crossing_times_bounded_by_ejection_cap(self, p0, beta0):
        for value in (
            threshold_epoch_honest_only(p0),
            threshold_epoch_slashing(p0, beta0),
            threshold_epoch_non_slashing(p0, beta0),
        ):
            assert 0.0 <= value <= 4685.0


class TestDistributionProperties:
    @given(
        p0=st.floats(min_value=0.2, max_value=0.8),
        t=st.floats(min_value=100.0, max_value=7000.0),
        s=st.floats(min_value=0.1, max_value=32.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_capped_cdf_bounded_and_dominates_raw_cdf(self, p0, t, s):
        distribution = BouncingStakeDistribution(p0=p0)
        capped = distribution.capped_cdf(s, t)
        assert 0.0 <= capped <= 1.0
        assert capped >= distribution.cdf(s, t) - 1e-9 or s < distribution.ejection_balance

    @given(
        p0=st.floats(min_value=0.2, max_value=0.8),
        t=st.floats(min_value=1500.0, max_value=7000.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_capped_law_mass_is_one(self, p0, t):
        # For very small t the continuous body is a spike just below 32 ETH
        # that a fixed grid cannot resolve, so the check starts once the
        # distribution has spread out.
        distribution = BouncingStakeDistribution(p0=p0)
        assert abs(distribution.total_mass(t, grid_points=801) - 1.0) < 2e-2


class TestRandomWalkProperties:
    @given(
        epochs=st.integers(min_value=0, max_value=12),
        p0=probabilities,
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_distribution_is_a_probability_law(self, epochs, p0):
        distribution = exact_score_distribution(epochs, p0)
        total = sum(distribution.probabilities.values())
        assert abs(total - 1.0) < 1e-9
        assert all(p >= 0 for p in distribution.probabilities.values())
        assert min(distribution.support() or [0]) >= 0
