"""Tests for repro.spec.state_transition (epoch processing)."""

import pytest

from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.finality import FFGVotePool
from repro.spec.state import BeaconState
from repro.spec.state_transition import ChainHistory, advance_epoch, process_epoch
from repro.spec.types import Root
from repro.spec.validator import make_registry


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"c{epoch}"))


@pytest.fixture
def state():
    return BeaconState.genesis(make_registry(9, byzantine_fraction=1 / 3), SpecConfig.mainnet())


def fill_pool(pool: FFGVotePool, validators, source, target):
    for validator in validators:
        pool.add_vote(validator, FFGVote(source=source, target=target))


class TestProcessEpoch:
    def test_healthy_epoch_justifies_and_rewards(self, state):
        pool = FFGVotePool()
        fill_pool(pool, range(9), GENESIS_CHECKPOINT, cp(1))
        state.current_epoch = 1
        state.validators[0].stake = 31.0  # below the cap, so the reward is visible
        report = process_epoch(state, pool, active_indices=range(9))
        assert report.justification.justified_any
        assert not report.in_leak
        assert report.active_stake_ratio == pytest.approx(1.0)
        assert report.rewards.total_rewards > 0

    def test_two_healthy_epochs_finalize(self, state):
        pool = FFGVotePool()
        fill_pool(pool, range(9), GENESIS_CHECKPOINT, cp(1))
        state.current_epoch = 1
        process_epoch(state, pool, active_indices=range(9))
        fill_pool(pool, range(9), cp(1), cp(2))
        state.current_epoch = 2
        report = process_epoch(state, pool, active_indices=range(9))
        assert report.justification.finalized_any
        assert state.finalized_checkpoint.epoch == 1

    def test_leak_epoch_penalizes_inactive(self, state):
        pool = FFGVotePool()
        state.current_epoch = 6  # past the 4-epoch grace period
        for validator in state.validators:
            validator.inactivity_score = 10
        report = process_epoch(state, pool, active_indices={0, 1, 2, 3, 4, 5})
        assert report.in_leak
        assert report.inactivity.total_penalty > 0
        assert report.rewards.total_rewards == 0.0
        assert set(report.inactivity.inactive_indices) == {6, 7, 8}

    def test_slashable_indices_get_slashed(self, state):
        pool = FFGVotePool()
        state.current_epoch = 1
        report = process_epoch(state, pool, active_indices=range(9), slashable_indices=[8])
        assert report.slashing.slashed_indices == [8]
        assert state.validators[8].slashed

    def test_byzantine_proportion_reported(self, state):
        pool = FFGVotePool()
        state.current_epoch = 1
        report = process_epoch(state, pool, active_indices=range(9))
        assert report.byzantine_proportion == pytest.approx(1 / 3, abs=0.01)

    def test_active_ratio_half(self, state):
        pool = FFGVotePool()
        state.current_epoch = 1
        report = process_epoch(state, pool, active_indices=range(4))
        assert report.active_stake_ratio == pytest.approx(4 / 9, rel=0.05)

    def test_explicit_epoch_argument(self, state):
        pool = FFGVotePool()
        report = process_epoch(state, pool, active_indices=range(9), epoch=7)
        assert report.epoch == 7
        assert state.current_epoch == 7


class TestAdvanceAndHistory:
    def test_advance_epoch(self, state):
        assert advance_epoch(state) == 1
        assert advance_epoch(state) == 2
        assert state.current_epoch == 2

    def test_history_tracks_finalizations_and_series(self, state):
        history = ChainHistory()
        pool = FFGVotePool()
        for epoch in range(1, 4):
            if epoch == 1:
                fill_pool(pool, range(9), GENESIS_CHECKPOINT, cp(1))
            else:
                fill_pool(pool, range(9), cp(epoch - 1), cp(epoch))
            state.current_epoch = epoch
            history.append(process_epoch(state, pool, active_indices=range(9)))
        assert history.first_finalization_epoch() == 2
        assert len(history.byzantine_proportion_series()) == 3
        assert len(history.active_ratio_series()) == 3
        assert history.leak_epochs() == []
        assert history.last is not None

    def test_empty_history(self):
        history = ChainHistory()
        assert history.last is None
        assert history.first_finalization_epoch() is None
