"""Tests for repro.sim.node."""

import pytest

from repro.network.message import Message
from repro.sim.node import Node
from repro.spec.block import BeaconBlock
from repro.spec.config import SpecConfig
from repro.spec.types import GENESIS_ROOT
from repro.spec.validator import make_registry


@pytest.fixture
def config():
    return SpecConfig.minimal()


@pytest.fixture
def node(config):
    return Node(validator_index=0, registry=make_registry(8, config), config=config)


def block_at(slot: int, parent=GENESIS_ROOT, proposer: int = 1, tag: str = "") -> BeaconBlock:
    return BeaconBlock.create(slot=slot, proposer_index=proposer, parent_root=parent, branch_tag=tag)


class TestMessageIngestion:
    def test_receive_block(self, node):
        block = block_at(1)
        node.receive(Message.block(block, sender=1, sent_at=0.0))
        assert block.root in node.store.tree
        assert node.blocks_received == 1

    def test_out_of_order_blocks_are_queued_then_applied(self, node):
        first = block_at(1)
        second = block_at(2, parent=first.root)
        node.receive(Message.block(second, sender=1, sent_at=0.0))
        assert second.root not in node.store.tree
        node.receive(Message.block(first, sender=1, sent_at=0.0))
        assert first.root in node.store.tree
        assert second.root in node.store.tree

    def test_receive_attestation_updates_store_and_pool(self, node):
        block = block_at(1)
        node.receive(Message.block(block, sender=1, sent_at=0.0))
        attestation = node.attestation_for(slot=1, head=block.root)
        node.receive(Message.attestation(attestation, sender=0, sent_at=1.0))
        assert node.store.latest_messages[0].root == block.root
        assert node.attestations_by_epoch[attestation.target_epoch]

    def test_attestation_for_unknown_block_queued(self, node):
        block = block_at(1)
        other = Node(validator_index=1, registry=make_registry(8, SpecConfig.minimal()), config=node.config)
        other.receive(Message.block(block, sender=1, sent_at=0.0))
        attestation = other.attestation_for(slot=1, head=block.root)
        node.receive(Message.attestation(attestation, sender=1, sent_at=1.0))
        assert node.pending.attestations
        node.receive(Message.block(block, sender=1, sent_at=2.0))
        assert not node.pending.attestations
        assert node.store.latest_messages[1].root == block.root

    def test_block_attestations_count_as_seen(self, node):
        parent = block_at(1)
        node.receive(Message.block(parent, sender=1, sent_at=0.0))
        attestation = node.attestation_for(slot=1, head=parent.root)
        child = BeaconBlock.create(
            slot=2, proposer_index=2, parent_root=parent.root, attestations=(attestation,)
        )
        node.receive(Message.block(child, sender=2, sent_at=1.0))
        assert node.attestations_by_epoch[attestation.target_epoch]

    def test_slashing_evidence_in_block_recorded(self, node):
        block = BeaconBlock.create(
            slot=1, proposer_index=1, parent_root=GENESIS_ROOT, slashing_evidence=(5,)
        )
        node.receive(Message.block(block, sender=1, sent_at=0.0))
        epoch = node.config.epoch_of_slot(1)
        assert 5 in node.slashings_observed[epoch]


class TestChainViews:
    def test_head_follows_blocks(self, node):
        first = block_at(1)
        second = block_at(2, parent=first.root)
        node.receive(Message.block(first, sender=1, sent_at=0.0))
        node.receive(Message.block(second, sender=1, sent_at=1.0))
        assert node.head() == second.root

    def test_branch_heads_on_fork(self, node):
        a = block_at(1, tag="a")
        b = block_at(1, tag="b", proposer=2)
        node.receive(Message.block(a, sender=1, sent_at=0.0))
        node.receive(Message.block(b, sender=2, sent_at=0.0))
        assert set(node.branch_heads()) == {a.root, b.root}

    def test_attestation_for_uses_own_head_and_checkpoints(self, node):
        block = block_at(1)
        node.receive(Message.block(block, sender=1, sent_at=0.0))
        attestation = node.attestation_for(slot=1)
        assert attestation.validator_index == 0
        assert attestation.head_root == block.root
        assert attestation.source == node.state.current_justified_checkpoint

    def test_build_block_includes_known_attestations_and_evidence(self, node):
        block = block_at(1)
        node.receive(Message.block(block, sender=1, sent_at=0.0))
        attestation = node.attestation_for(slot=1, head=block.root)
        node.receive(Message.attestation(attestation, sender=3, sent_at=1.0))
        built = node.build_block(slot=2)
        assert attestation in built.attestations
        assert built.parent_root == block.root
        # The included attestations are not re-included in the next block.
        assert node.attestations_for_inclusion == []


class TestPendingDrainOrdering:
    """Blocks/attestations arriving before their ancestors, across hops."""

    def test_three_block_chain_delivered_in_reverse(self, node):
        first = block_at(1)
        second = block_at(2, parent=first.root)
        third = block_at(3, parent=second.root)
        node.receive(Message.block(third, sender=1, sent_at=0.0))
        node.receive(Message.block(second, sender=1, sent_at=0.0))
        assert len(node.pending.blocks) == 2
        assert second.root not in node.store.tree
        # The missing root arrives last: one drain applies both hops.
        node.receive(Message.block(first, sender=1, sent_at=0.0))
        assert node.pending.blocks == []
        for block in (first, second, third):
            assert block.root in node.store.tree

    def test_attestation_pending_across_two_block_hops(self, node):
        first = block_at(1)
        second = block_at(2, parent=first.root)
        other = Node(
            validator_index=1, registry=make_registry(8, node.config), config=node.config
        )
        other.receive(Message.block(first, sender=1, sent_at=0.0))
        other.receive(Message.block(second, sender=1, sent_at=0.0))
        attestation = other.attestation_for(slot=2, head=second.root)
        node.receive(Message.attestation(attestation, sender=1, sent_at=0.0))
        node.receive(Message.block(second, sender=1, sent_at=0.0))
        assert node.pending.attestations and node.pending.blocks
        node.receive(Message.block(first, sender=1, sent_at=0.0))
        # The drain applies first -> second -> the attestation, in one call.
        assert node.pending.attestations == [] and node.pending.blocks == []
        assert node.store.latest_messages[1].root == second.root

    def test_batch_pending_until_head_arrives(self, node):
        block = block_at(1)
        other = Node(
            validator_index=1, registry=make_registry(8, node.config), config=node.config
        )
        other.receive(Message.block(block, sender=1, sent_at=0.0))
        batch = other.attestation_batch_for(slot=1, validators=[2, 3, 4])
        node.receive(Message.attestation_batch(batch, sender=2, sent_at=0.0))
        assert node.pending.attestations == [batch]
        assert node.attestations_received == 3
        node.receive(Message.block(block, sender=1, sent_at=1.0))
        assert node.pending.attestations == []
        for validator in (2, 3, 4):
            assert node.store.latest_messages[validator].root == block.root
        assert node.active_indices_for_epoch(0) == {2, 3, 4}

    def test_block_carried_attestation_with_unknown_head_pends(self, node):
        # A drained block may carry attestations voting for a block this
        # node still lacks; they must queue instead of half-ingesting.
        known = block_at(1)
        foreign = block_at(2, parent=known.root, tag="foreign")
        voter = Node(
            validator_index=5, registry=make_registry(8, node.config), config=node.config
        )
        voter.receive(Message.block(known, sender=1, sent_at=0.0))
        voter.receive(Message.block(foreign, sender=3, sent_at=0.0))
        attestation = voter.attestation_for(slot=2, head=foreign.root)
        carrier = BeaconBlock.create(
            slot=3,
            proposer_index=2,
            parent_root=known.root,
            attestations=(attestation,),
        )
        node.receive(Message.block(carrier, sender=2, sent_at=0.0))  # parent unknown
        assert node.pending.blocks == [carrier]
        node.receive(Message.block(known, sender=1, sent_at=0.0))  # drains carrier
        assert node.pending.blocks == []
        # The carried attestation's head is still unknown: it pends.
        assert node.pending.attestations == [attestation]
        assert 5 not in node.store.latest_messages
        node.receive(Message.block(foreign, sender=3, sent_at=1.0))
        assert node.pending.attestations == []
        assert node.store.latest_messages[5].root == foreign.root

    def test_interleaved_batches_and_blocks_drain_in_dependency_order(self, node):
        first = block_at(1)
        second = block_at(2, parent=first.root)
        other = Node(
            validator_index=1, registry=make_registry(8, node.config), config=node.config
        )
        other.receive(Message.block(first, sender=1, sent_at=0.0))
        batch_on_first = other.attestation_batch_for(slot=1, validators=[2, 3])
        other.receive(Message.block(second, sender=1, sent_at=0.0))
        batch_on_second = other.attestation_batch_for(slot=2, validators=[4, 5])
        node.receive(Message.attestation_batch(batch_on_second, sender=4, sent_at=0.0))
        node.receive(Message.block(second, sender=1, sent_at=0.0))
        node.receive(Message.attestation_batch(batch_on_first, sender=2, sent_at=0.0))
        assert len(node.pending.attestations) == 2 and len(node.pending.blocks) == 1
        node.receive(Message.block(first, sender=1, sent_at=0.0))
        assert node.pending.attestations == [] and node.pending.blocks == []
        assert node.store.latest_messages[2].root == first.root
        assert node.store.latest_messages[4].root == second.root


class TestEpochProcessing:
    def test_active_indices_require_correct_target(self, node, config):
        block = block_at(1)
        node.receive(Message.block(block, sender=1, sent_at=0.0))
        good = node.attestation_for(slot=1, head=block.root)
        node.receive(Message.attestation(good, sender=0, sent_at=1.0))
        active = node.active_indices_for_epoch(0)
        assert 0 in active

    def test_process_epoch_end_progresses_state(self, node, config):
        # Build a block and have everyone attest correctly for epoch 0.
        block = block_at(1)
        node.receive(Message.block(block, sender=1, sent_at=0.0))
        for validator in range(8):
            attestation = node.attestation_for(slot=1, head=block.root)
            attestation = type(attestation)(
                validator_index=validator,
                slot=attestation.slot,
                head_root=attestation.head_root,
                ffg=attestation.ffg,
            )
            node.receive(Message.attestation(attestation, sender=validator, sent_at=1.0))
        report = node.process_epoch_end(0)
        assert report.epoch == 0
        assert node.history.reports
        assert node.state.current_epoch == 0

    def test_finalized_accessors(self, node):
        assert node.finalized_epochs() == {0}
        assert 0 in node.finalized_checkpoints()
