"""Backend-equivalence tests for the core stake-dynamics kernel.

The ``"numpy"`` and ``"python"`` backends must produce *bit-identical*
trajectories — the loop backend is the semantics oracle for the vectorized
one.  The suite covers the score floor, the ejection edge cases (exactly at
the balance, frozen after ejection), leak on/off, the fused vs staged
composition, and golden checks against the paper's reference numbers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.core.backend import (
    AUTO_BACKEND_THRESHOLD,
    NumpyBackend,
    PythonBackend,
    StakeRules,
    available_backends,
    get_backend,
    leak_mask,
)
from repro.core.stake_engine import FinalityTracker, StakeEngine
from repro.spec.config import SpecConfig
from repro.spec.inactivity import (
    discrete_ejection_epoch,
    discrete_stake_trajectory,
)

MAINNET = SpecConfig.mainnet()
FAST = MAINNET.with_overrides(inactivity_penalty_quotient=2 ** 14)


def run_both_backends(stakes, scores, active_per_epoch, config, in_leak=True):
    """Run the same trajectory on both backends; return both state tuples."""
    rules = StakeRules.from_config(config)
    states = {}
    for name in ("numpy", "python"):
        kernel = get_backend(name)
        s = np.array(stakes, dtype=float)
        sc = np.array(scores, dtype=float)
        ej = np.zeros(len(stakes), dtype=bool)
        history = []
        for active in active_per_epoch:
            outcome = kernel.epoch_update(
                s, sc, np.asarray(active, dtype=bool), ej, rules, in_leak=in_leak
            )
            s, sc, ej = outcome.stakes, outcome.scores, outcome.ejected
            history.append((s.copy(), sc.copy(), ej.copy(), outcome.newly_ejected.copy()))
        states[name] = history
    return states["numpy"], states["python"]


class TestBackendRegistry:
    def test_available_backends(self):
        # Superset, not equality: the optional numba backend joins the
        # registry in environments (e.g. the dedicated CI leg) that have
        # its dependency installed.
        assert {"numpy", "python"} <= set(available_backends())

    def test_get_backend_by_name_and_instance(self):
        numpy_backend = get_backend("numpy")
        assert isinstance(numpy_backend, NumpyBackend)
        assert get_backend(numpy_backend) is numpy_backend
        assert isinstance(get_backend("python"), PythonBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("fortran")

    def test_auto_backend_selects_by_population(self):
        assert isinstance(
            get_backend("auto", population=AUTO_BACKEND_THRESHOLD - 1), PythonBackend
        )
        assert isinstance(
            get_backend("auto", population=AUTO_BACKEND_THRESHOLD), NumpyBackend
        )
        with pytest.raises(ValueError):
            get_backend("auto")


class TestBitIdenticalTrajectories:
    def test_deterministic_patterns_bit_identical(self):
        rng = np.random.default_rng(7)
        n, epochs = 9, 300
        stakes = np.full(n, MAINNET.max_effective_balance)
        scores = np.zeros(n)
        activity = [rng.random(n) < 0.5 for _ in range(epochs)]
        numpy_history, python_history = run_both_backends(
            stakes, scores, activity, FAST
        )
        for (ns, nsc, nej, nnew), (ps, psc, pej, pnew) in zip(
            numpy_history, python_history
        ):
            assert np.array_equal(ns, ps)
            assert np.array_equal(nsc, psc)
            assert np.array_equal(nej, pej)
            assert np.array_equal(nnew, pnew)

    def test_score_floor_bit_identical(self):
        # Validators that are always active keep hitting the floor at zero.
        stakes = [32.0, 32.0, 20.0]
        scores = [0.0, 3.0, 1.0]
        activity = [[True, True, True]] * 10
        numpy_history, python_history = run_both_backends(
            stakes, scores, activity, MAINNET
        )
        final_numpy = numpy_history[-1]
        final_python = python_history[-1]
        assert np.array_equal(final_numpy[1], final_python[1])
        assert np.all(final_numpy[1] == 0.0)  # every score floored

    def test_out_of_leak_recovery_bit_identical(self):
        stakes = [32.0, 32.0]
        scores = [20.0, 2.0]
        activity = [[True, False]] * 5
        numpy_history, python_history = run_both_backends(
            stakes, scores, activity, MAINNET, in_leak=False
        )
        for (ns, nsc, _, _), (ps, psc, _, _) in zip(numpy_history, python_history):
            assert np.array_equal(ns, ps)
            assert np.array_equal(nsc, psc)
        # No penalties outside a leak.
        assert np.array_equal(numpy_history[-1][0], np.array(stakes))

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
        n=st.integers(min_value=1, max_value=12),
        epochs=st.integers(min_value=1, max_value=60),
        in_leak=st.booleans(),
    )
    def test_property_backends_agree(self, seed, n, epochs, in_leak):
        rng = np.random.default_rng(seed)
        stakes = rng.uniform(0.0, 32.0, size=n)
        scores = rng.integers(0, 50, size=n).astype(float)
        activity = [rng.random(n) < rng.uniform(0.1, 0.9) for _ in range(epochs)]
        numpy_history, python_history = run_both_backends(
            stakes, scores, activity, FAST, in_leak=in_leak
        )
        for (ns, nsc, nej, _), (ps, psc, pej, _) in zip(
            numpy_history, python_history
        ):
            assert np.array_equal(ns, ps)
            assert np.array_equal(nsc, psc)
            assert np.array_equal(nej, pej)


class TestEjectionEdgeCases:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_exactly_at_ejection_balance_is_ejected(self, backend):
        rules = StakeRules.from_config(MAINNET)
        kernel = get_backend(backend)
        stakes = np.array([constants.EJECTION_BALANCE_ETH, 32.0])
        outcome = kernel.epoch_update(
            stakes,
            np.zeros(2),
            np.array([True, True]),
            np.zeros(2, dtype=bool),
            rules,
        )
        assert outcome.newly_ejected.tolist() == [True, False]

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_ejected_validators_are_frozen(self, backend):
        rules = StakeRules.from_config(FAST)
        kernel = get_backend(backend)
        stakes = np.array([16.0])
        scores = np.array([100.0])
        ejected = np.zeros(1, dtype=bool)
        outcome = kernel.epoch_update(
            stakes, scores, np.array([False]), ejected, rules
        )
        assert bool(outcome.newly_ejected[0])
        frozen_stake = float(outcome.stakes[0])
        frozen_score = float(outcome.scores[0])
        # Further epochs leave the ejected validator untouched and never
        # re-eject it.
        again = kernel.epoch_update(
            outcome.stakes, outcome.scores, np.array([False]), outcome.ejected, rules
        )
        assert float(again.stakes[0]) == frozen_stake
        assert float(again.scores[0]) == frozen_score
        assert not bool(again.newly_ejected[0])

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_penalty_total_matches_burned_stake(self, backend):
        rules = StakeRules.from_config(MAINNET)
        kernel = get_backend(backend)
        stakes = np.array([32.0, 30.0, 10.0])
        scores = np.array([100.0, 0.0, 50.0])
        new_stakes, total = kernel.apply_penalties(
            stakes, scores, np.zeros(3, dtype=bool), rules
        )
        assert total == pytest.approx(float(np.sum(stakes - new_stakes)))
        assert total > 0.0

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_penalty_totals_can_be_disabled(self, backend):
        rules = StakeRules.from_config(MAINNET)
        kernel = get_backend(backend)
        kernel.track_penalty_totals = False
        tracked = get_backend(backend)
        stakes = np.array([32.0, 30.0])
        scores = np.array([100.0, 40.0])
        quiet, total = kernel.apply_penalties(
            stakes, scores, np.zeros(2, dtype=bool), rules
        )
        loud, loud_total = tracked.apply_penalties(
            stakes, scores, np.zeros(2, dtype=bool), rules
        )
        assert total == 0.0
        assert loud_total > 0.0
        assert np.array_equal(quiet, loud)  # only the reporting differs


class TestGoldenTrajectories:
    """The kernel reproduces the paper's reference numbers end to end."""

    def test_reference_trajectories_agree_across_backends(self):
        for behavior in ("active", "semi-active", "inactive"):
            numpy_trajectory = discrete_stake_trajectory(
                behavior, 500, backend="numpy"
            )
            python_trajectory = discrete_stake_trajectory(
                behavior, 500, backend="python"
            )
            assert numpy_trajectory == python_trajectory

    def test_paper_ejection_epochs_on_both_backends(self):
        for backend in ("numpy", "python"):
            inactive = discrete_ejection_epoch("inactive", backend=backend)
            assert abs(inactive - constants.PAPER_INACTIVE_EJECTION_EPOCH) / 4685 < 0.01

    def test_batched_update_matches_flat_update(self):
        # A (trials, n) batch must evolve exactly like each row separately.
        rng = np.random.default_rng(3)
        rules = StakeRules.from_config(FAST)
        kernel = get_backend("numpy")
        batch_stakes = rng.uniform(17.0, 32.0, size=(4, 6))
        batch_scores = rng.integers(0, 30, size=(4, 6)).astype(float)
        batch_active = rng.random((4, 6)) < 0.5
        batch_ejected = np.zeros((4, 6), dtype=bool)
        batched = kernel.epoch_update(
            batch_stakes, batch_scores, batch_active, batch_ejected, rules
        )
        for row in range(4):
            single = kernel.epoch_update(
                batch_stakes[row],
                batch_scores[row],
                batch_active[row],
                batch_ejected[row],
                rules,
            )
            assert np.array_equal(batched.stakes[row], single.stakes)
            assert np.array_equal(batched.scores[row], single.scores)
            assert np.array_equal(batched.ejected[row], single.ejected)


class TestStakeEngine:
    def test_engine_backends_bit_identical(self):
        rng = np.random.default_rng(11)
        engines = {
            name: StakeEngine.uniform(8, config=FAST, backend=name)
            for name in ("numpy", "python")
        }
        for _ in range(200):
            active = rng.random(8) < 0.5
            for engine in engines.values():
                engine.step(active)
        assert np.array_equal(engines["numpy"].stakes, engines["python"].stakes)
        assert np.array_equal(engines["numpy"].scores, engines["python"].scores)
        assert np.array_equal(engines["numpy"].ejected, engines["python"].ejected)
        assert engines["numpy"].ejection_epochs == engines["python"].ejection_epochs

    def test_engine_validates_inputs(self):
        with pytest.raises(ValueError):
            StakeEngine([])
        with pytest.raises(ValueError):
            StakeEngine([32.0, 32.0], weights=[1.0])
        engine = StakeEngine.uniform(3)
        with pytest.raises(ValueError):
            engine.step([True, False])  # wrong shape

    def test_effective_stake_and_ratio(self):
        engine = StakeEngine(
            [32.0, 32.0], weights=[0.25, 0.75], config=MAINNET, backend="numpy"
        )
        assert engine.total_stake() == pytest.approx(32.0)
        assert engine.active_ratio([True, False]) == pytest.approx(0.25)
        engine.ejected[1] = True
        assert engine.total_stake() == pytest.approx(8.0)
        assert engine.active_ratio([True, True]) == pytest.approx(1.0)

    def test_ejection_epochs_recorded(self):
        engine = StakeEngine.uniform(2, config=FAST)
        inactive = np.array([False, True])
        for _ in range(500):
            engine.step(~inactive)
            if engine.ejected.any():
                break
        # Only the inactive validator (index 1... active mask is ~inactive,
        # i.e. index 0 active) — the inactive one leaks and gets ejected.
        assert list(engine.ejection_epochs) == [1]


class TestFinalityTracker:
    def test_two_consecutive_justified_epochs_finalize(self):
        tracker = FinalityTracker.for_config(MAINNET)
        assert tracker.observe(0, 0.5) == (False, False)
        assert tracker.observe(1, 0.7) == (True, False)
        assert tracker.threshold_epoch == 1
        assert tracker.observe(2, 0.8) == (True, True)
        assert tracker.finalization_epoch == 2
        # Finalization is reported once.
        assert tracker.observe(3, 0.9) == (True, False)

    def test_interrupted_justification_does_not_finalize(self):
        tracker = FinalityTracker.for_config(MAINNET)
        tracker.observe(0, 0.7)
        tracker.observe(1, 0.5)
        tracker.observe(2, 0.7)
        assert tracker.finalization_epoch is None
        assert tracker.threshold_epoch == 0


class TestLeakMask:
    def test_scalar_flags_yield_no_mask(self):
        assert leak_mask(True, (3, 4)) is None
        assert leak_mask(False, (3, 4)) is None
        assert leak_mask(np.bool_(True), (3, 4)) is None
        assert leak_mask(np.asarray(True), (3, 4)) is None

    def test_prefix_mask_broadcasts_to_full_shape(self):
        mask = leak_mask([True, False], (2, 3))
        assert mask.shape == (2, 3)
        assert mask[0].all() and not mask[1].any()

    def test_full_shape_mask_passes_through(self):
        flags = np.array([[True, False], [False, True]])
        mask = leak_mask(flags, (2, 2))
        assert np.array_equal(mask, flags)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            leak_mask([True, False, True], (2, 4))


class TestPerTrialLeakFlags:
    """A (trials,) in_leak array must equal per-trial scalar stepping."""

    RULES = StakeRules.from_config(FAST)

    def _batch_state(self, seed=0, trials=6, n=9):
        rng = np.random.default_rng(seed)
        return (
            rng.uniform(16.5, 32.0, (trials, n)),
            rng.uniform(0.0, 60.0, (trials, n)),
            rng.random((trials, n)) < 0.5,
            rng.random((trials, n)) < 0.15,
            rng.random(trials) < 0.5,
        )

    @pytest.mark.parametrize("backend_name", ["numpy", "python"])
    def test_masked_epoch_update_matches_scalar_rows(self, backend_name):
        stakes, scores, active, ejected, leaks = self._batch_state()
        kernel = get_backend(backend_name)
        batched = kernel.epoch_update(
            stakes, scores, active, ejected, self.RULES, in_leak=leaks
        )
        for t in range(stakes.shape[0]):
            single = kernel.epoch_update(
                stakes[t], scores[t], active[t], ejected[t], self.RULES,
                in_leak=bool(leaks[t]),
            )
            assert np.array_equal(batched.stakes[t], single.stakes)
            assert np.array_equal(batched.scores[t], single.scores)
            assert np.array_equal(batched.ejected[t], single.ejected)
            assert np.array_equal(batched.newly_ejected[t], single.newly_ejected)

    @pytest.mark.parametrize("backend_name", ["numpy", "python"])
    def test_all_true_mask_equals_scalar_true(self, backend_name):
        stakes, scores, active, ejected, _ = self._batch_state(seed=3)
        kernel = get_backend(backend_name)
        masked = kernel.epoch_update(
            stakes, scores, active, ejected, self.RULES,
            in_leak=np.ones(stakes.shape[0], dtype=bool),
        )
        scalar = kernel.epoch_update(
            stakes, scores, active, ejected, self.RULES, in_leak=True
        )
        assert np.array_equal(masked.stakes, scalar.stakes)
        assert np.array_equal(masked.scores, scalar.scores)
        assert np.array_equal(masked.ejected, scalar.ejected)

    @pytest.mark.parametrize("backend_name", ["numpy", "python"])
    def test_masked_rewards_match_scalar_rows(self, backend_name):
        rng = np.random.default_rng(11)
        from repro.core.backend import RewardRules

        rules = RewardRules.from_config(FAST)
        trials, n = 5, 7
        stakes = rng.uniform(1.0, 32.0, (trials, n))
        correct = rng.random((trials, n)) < 0.6
        ineligible = rng.random((trials, n)) < 0.2
        leaks = np.array([True, False, True, False, True])
        kernel = get_backend(backend_name)
        batched = kernel.attestation_rewards_epoch_update(
            stakes, correct, ineligible, rules, in_leak=leaks
        )
        for t in range(trials):
            single = kernel.attestation_rewards_epoch_update(
                stakes[t], correct[t], ineligible[t], rules, in_leak=bool(leaks[t])
            )
            assert np.array_equal(batched.stakes[t], single.stakes)
            assert np.array_equal(batched.rewarded[t], single.rewarded)
            assert np.array_equal(batched.penalized[t], single.penalized)


class TestOptionalBackends:
    def test_missing_optional_backend_error_names_the_extra(self):
        pytest.importorskip  # (no skip: this test targets the *absence* path)
        try:
            import numba  # noqa: F401

            pytest.skip("numba installed: the missing-extra path is not reachable")
        except ImportError:
            pass
        with pytest.raises(ValueError, match="numba.*optional.*pip install numba"):
            get_backend("numba")
        # The probe failure must not poison the registry.
        assert {"numpy", "python"} <= set(available_backends())

    def test_unknown_backend_error_lists_known_names(self):
        with pytest.raises(ValueError, match="fortran"):
            get_backend("fortran")
