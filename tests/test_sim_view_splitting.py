"""Unit tests for dynamic view splitting, re-merging and their plumbing.

The differential suite (``test_sim_view_groups.py``) pins the end-to-end
grouped==per-node contract for scenarios that fragment; this file tests
the mechanics in isolation:

* ``_ensure_exact_audience`` copy-on-write splits exactly the partially
  covered groups, duplicates in-flight/withheld traffic, and preserves
  the representative-is-min-member convention;
* ``_try_merges`` re-fuses groups only when their message streams *and*
  state fingerprints have re-converged, gated by ``merge_views``;
* the adversary's audience caches are invalidated on every topology
  change (the staleness regression of this PR);
* the inclusion horizon bounds the attestation backlog and rebases
  member cursors without changing what proposers include.
"""

import pytest

from repro.agents.honest import HonestAgent, OfflineAgent
from repro.network.message import Message
from repro.network.partition import PartitionSchedule
from repro.sim.engine import SimulationEngine
from repro.sim.node import Node
from repro.sim.scenarios import (
    build_honest_simulation,
    build_partitioned_simulation,
)
from repro.spec.config import SpecConfig
from repro.spec.validator import make_registry


def _offline_engine(n: int = 8, merge_views: bool = True) -> SimulationEngine:
    """A healthy network of silent validators: one 'global' view group."""
    config = SpecConfig.minimal()
    registry = make_registry(n, config)
    return SimulationEngine(
        registry=registry,
        agents={i: OfflineAgent(i) for i in range(n)},
        schedule=PartitionSchedule.fully_connected(delta=1.0),
        config=config,
        view_sharding=True,
        merge_views=merge_views,
    )


def _attestation_message(engine: SimulationEngine, group: str = "global"):
    view = engine.views[group]
    attestation = view.attestation_for(slot=1, validator_index=view.members[0])
    return Message.attestation(
        attestation, sender=view.members[0], sent_at=0.0
    )


class TestSplitMechanics:
    def test_partial_audience_splits_group(self):
        engine = build_honest_simulation(n_validators=12)
        message = _attestation_message(engine)
        engine.adversary.send_to_validators(message, (0, 1, 2, 3))
        assert set(engine.view_groups) == {"global", "global/4"}
        assert engine.view_groups["global"] == (0, 1, 2, 3)
        assert engine.view_groups["global/4"] == tuple(range(4, 12))
        # Representative = min(members) on both children; facades and
        # endpoint maps rebound for the moved side.
        for name, members in engine.view_groups.items():
            assert engine.views[name].validator_index == min(members)
            assert engine.views[name].members == members
        assert engine.group_of[5] == "global/4"
        assert engine.nodes[5].node is engine.views["global/4"]
        assert engine._endpoint_of[5] == 4
        # The split happened *before* scheduling: only the covered side's
        # endpoint receives the diverging message.
        assert [m for _, m in engine.network.pending_for(0)] == [message.message_id]
        assert engine.network.pending_for(4) == []
        (event,) = engine.view_events
        assert event.kind == "split"
        assert (event.parent, event.child) == ("global", "global/4")
        assert event.members == tuple(range(4, 12))

    def test_full_or_empty_audience_does_not_split(self):
        engine = build_honest_simulation(n_validators=12)
        engine.adversary.send_to_validators(
            _attestation_message(engine), tuple(range(12))
        )
        assert set(engine.view_groups) == {"global"}
        assert engine.view_events == []

    def test_split_duplicates_in_flight_and_withheld_traffic(self):
        engine = build_honest_simulation(n_validators=12)
        in_flight = _attestation_message(engine)
        withheld = _attestation_message(engine)
        engine.network.broadcast(in_flight)
        engine.adversary.withhold(withheld, range(12))
        diverging = _attestation_message(engine)
        engine.adversary.send_to_validators(diverging, (0, 1, 2, 3))
        # Both children must observe the identical pre-split stream; the
        # diverging message itself reaches only the covered child.
        pending_old = engine.network.pending_for(0)
        pending_new = engine.network.pending_for(4)
        assert pending_new == [(1.0, in_flight.message_id)]
        assert pending_old == pending_new + [(1.0, diverging.message_id)]
        assert engine.network.withheld_for(0) == [withheld.message_id]
        assert engine.network.withheld_for(4) == [withheld.message_id]

    def test_per_node_mode_never_splits(self):
        engine = build_honest_simulation(n_validators=8, view_sharding=False)
        engine.adversary.send_to_validators(
            _attestation_message(engine, group=next(iter(engine.views))), (0, 1, 2)
        )
        assert len(engine.views) == 8
        assert engine.view_events == []


class TestMergeMechanics:
    def _split_and_cross_deliver(self, engine):
        """Split 'global' along (0,1,2), then deliver the same content to
        both sides via two distinct messages.  Returns the child name."""
        first = _attestation_message(engine)
        second = Message.attestation(first.payload, first.sender, first.sent_at)
        engine.adversary.send_to_validators(first, (0, 1, 2))
        child = "global/3"
        assert set(engine.view_groups) == {"global", child}
        engine.adversary.send_to_validators(
            second, tuple(engine.view_groups[child])
        )
        return child

    def test_converged_groups_remerge(self):
        engine = _offline_engine()
        child = self._split_and_cross_deliver(engine)
        engine._deliver_due(1.0)
        engine._try_merges()
        assert set(engine.view_groups) == {"global"}
        assert engine.views["global"].members == tuple(range(8))
        assert engine.group_of[7] == "global"
        assert engine.nodes[7].node is engine.views["global"]
        assert engine.adversary.resolve_endpoints(range(8)) == (0,)
        merge = engine.view_events[-1]
        assert merge.kind == "merge"
        assert (merge.parent, merge.child) == ("global", child)

    def test_divergent_groups_do_not_merge(self):
        engine = _offline_engine()
        # Deliver the diverging message to one side only.
        engine.adversary.send_to_validators(
            _attestation_message(engine), (0, 1, 2)
        )
        engine._deliver_due(1.0)
        engine._try_merges()
        assert set(engine.view_groups) == {"global", "global/3"}

    def test_unequal_pending_streams_block_merge(self):
        engine = _offline_engine()
        self._split_and_cross_deliver(engine)
        # Same content is in flight to both sides, but under *different*
        # message ids — the stream check must refuse until delivery.
        engine._try_merges()
        assert set(engine.view_groups) == {"global", "global/3"}

    def test_stale_deliveries_to_dead_endpoint_are_dropped(self):
        engine = _offline_engine()
        self._split_and_cross_deliver(engine)
        engine._deliver_due(1.0)
        # A broadcast sits identically in both endpoints' queues: merge is
        # legal, and the dead endpoint's copy must be dropped silently.
        late = _attestation_message(engine)
        engine.network.broadcast(late)
        engine._try_merges()
        assert set(engine.view_groups) == {"global"}
        engine._deliver_due(2.0)  # must not raise on the dead endpoint

    def test_merge_views_flag_gates_the_run_loop(self):
        merging = _offline_engine(merge_views=True)
        self._split_and_cross_deliver(merging)
        result = merging.run(2)
        assert len(merging.views) == 1
        assert len(result.merge_events()) == 1
        assert result.peak_view_count == 2

        frozen = _offline_engine(merge_views=False)
        self._split_and_cross_deliver(frozen)
        result = frozen.run(2)
        assert len(frozen.views) == 2
        assert result.merge_events() == []


class TestAdversaryCacheInvalidation:
    """Satellite regression: `_audience_endpoints` must never go stale."""

    def test_notify_topology_changed_clears_cache(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        adversary = engine.adversary
        adversary._audience_endpoints("branch-1", True)
        assert adversary._audience_cache
        adversary.notify_topology_changed()
        assert adversary._audience_cache == {}

    def test_resolver_reinstall_routes_through_invalidation(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        adversary = engine.adversary
        adversary._audience_endpoints("branch-1", True)
        adversary.set_endpoint_resolver(lambda index: 99)
        assert adversary._audience_cache == {}
        assert adversary.resolve_endpoints((0, 1, 2)) == (99,)

    def test_split_refreshes_partition_audiences(self):
        # The regression this PR fixes: after a view split, a cached
        # partition audience would keep addressing only the old endpoint,
        # silently skipping the freshly split group.
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        adversary = engine.adversary
        before = adversary._audience_endpoints("branch-1", False)
        members = engine.view_groups["branch-1"]
        view = engine.views["branch-1"]
        message = Message.attestation(
            view.attestation_for(slot=1, validator_index=members[0]),
            sender=members[0],
            sent_at=0.0,
        )
        adversary.send_to_validators(message, members[:2])
        after = adversary._audience_endpoints("branch-1", False)
        assert after != before
        assert set(after) > set(before)
        new_rep = min(set(members) - set(members[:2]))
        assert new_rep in after


class TestInclusionHorizon:
    """Satellite: the ~2-epoch inclusion horizon bounds the backlog."""

    def test_prune_drops_expired_columns_and_rebases_cursors(self):
        config = SpecConfig.minimal()  # 4-slot epochs
        view = Node(
            validator_index=0,
            registry=make_registry(8, config),
            config=config,
            members=(0, 1),
        )
        # Two attestations targeting epoch 0, two targeting epoch 2.
        for validator, slot in ((4, 1), (5, 2), (6, 9), (7, 10)):
            attestation = view.attestation_for(slot=slot, validator_index=validator)
            view.receive(
                Message.attestation(attestation, sender=validator, sent_at=float(slot))
            )
        # Member 0 consumes the whole log; member 1 consumes nothing.
        assert len(view.build_block(slot=11, proposer=0).attestations) == 4
        view._prune_inclusion_horizon(2)  # horizon 2 -> cutoff epoch 1
        assert set(view.attestations_by_epoch) == {2}
        assert all(a.target_epoch >= 1 for a in view._inclusion_log)
        # Cursors point at the same logical position: the caught-up member
        # re-includes nothing, the fresh member sees only the survivors.
        assert view.build_block(slot=11, proposer=0).attestations == ()
        assert len(view.build_block(slot=11, proposer=1).attestations) == 2

    def test_horizon_bounds_columns_in_a_long_run(self):
        engine = build_honest_simulation(n_validators=12)
        engine.run(6)
        for view in engine.views.values():
            horizon = view.inclusion_horizon_epochs
            assert horizon == 2
            assert len(view.attestations_by_epoch) <= horizon + 1
            assert all(epoch >= 4 for epoch in view.attestations_by_epoch)

    def test_horizon_none_restores_unbounded_backlog(self):
        config = SpecConfig.minimal()
        registry = make_registry(12, config)
        engine = SimulationEngine(
            registry=registry,
            agents={i: HonestAgent(i) for i in range(12)},
            schedule=PartitionSchedule.fully_connected(delta=1.0),
            config=config,
            inclusion_horizon_epochs=None,
        )
        engine.run(4)
        (view,) = engine.views.values()
        assert view.inclusion_horizon_epochs is None
        assert {0, 1, 2, 3} <= set(view.attestations_by_epoch)

    def test_horizon_identical_across_sharding_modes(self):
        grouped = build_honest_simulation(n_validators=10).run(5)
        per_node = build_honest_simulation(n_validators=10, view_sharding=False).run(5)
        assert grouped.snapshots == per_node.snapshots
        for index in grouped.final_states:
            assert grouped.final_states[index] == per_node.final_states[index]
