"""Backend-equivalence tests for the rewards and slashing kernels.

Like the inactivity kernel, ``attestation_rewards_epoch_update`` and
``slashing_epoch_update`` must be *bit-identical* between the ``"numpy"``
and ``"python"`` backends — the loop backend is the semantics oracle.  The
suite covers the edge cases the spec layer relies on: stake-0 validators
(charged nothing, not recorded as penalized), rewards capped at the
maximum effective balance, the leak boundary (no rewards in leak,
penalties always), and slashing after ejection (skipped).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backend import RewardRules, SlashingRules, get_backend
from repro.core.stake_engine import StakeEngine
from repro.spec.config import SpecConfig

MAINNET = SpecConfig.mainnet()
MINIMAL = SpecConfig.minimal()
REWARDS = RewardRules.from_config(MINIMAL)
SLASHING = SlashingRules.from_config(MINIMAL)


def run_rewards_both(stakes, active, ineligible, rules, in_leak):
    outcomes = {}
    for name in ("numpy", "python"):
        outcomes[name] = get_backend(name).attestation_rewards_epoch_update(
            np.array(stakes, dtype=float),
            np.array(active, dtype=bool),
            np.array(ineligible, dtype=bool),
            rules,
            in_leak,
        )
    return outcomes["numpy"], outcomes["python"]


def run_slashing_both(stakes, slashable, slashed, ineligible, rules):
    outcomes = {}
    for name in ("numpy", "python"):
        outcomes[name] = get_backend(name).slashing_epoch_update(
            np.array(stakes, dtype=float),
            np.array(slashable, dtype=bool),
            np.array(slashed, dtype=bool),
            np.array(ineligible, dtype=bool),
            rules,
        )
    return outcomes["numpy"], outcomes["python"]


def assert_reward_outcomes_identical(a, b):
    assert np.array_equal(a.stakes, b.stakes)
    assert np.array_equal(a.rewarded, b.rewarded)
    assert np.array_equal(a.penalized, b.penalized)
    assert a.total_rewards == b.total_rewards
    assert a.total_penalties == b.total_penalties


def assert_slashing_outcomes_identical(a, b):
    assert np.array_equal(a.stakes, b.stakes)
    assert np.array_equal(a.slashed, b.slashed)
    assert np.array_equal(a.newly_slashed, b.newly_slashed)
    assert a.total_penalty == b.total_penalty


class TestRewardKernel:
    def test_zero_stake_validator_not_penalized(self):
        numpy_out, python_out = run_rewards_both(
            [0.0, 32.0], [False, False], [False, False], REWARDS, in_leak=False
        )
        assert_reward_outcomes_identical(numpy_out, python_out)
        # The stake-0 validator is charged nothing and not recorded.
        assert numpy_out.penalized.tolist() == [False, True]
        assert float(numpy_out.stakes[0]) == 0.0

    def test_reward_capped_at_max_effective_balance(self):
        cap = REWARDS.max_effective_balance
        numpy_out, python_out = run_rewards_both(
            [cap, cap - 1.0], [True, True], [False, False], REWARDS, in_leak=False
        )
        assert_reward_outcomes_identical(numpy_out, python_out)
        # At the cap nothing is credited (and not recorded as rewarded);
        # below the cap the credit never pushes past it.
        assert numpy_out.rewarded.tolist() == [False, True]
        assert float(numpy_out.stakes[0]) == cap
        assert float(numpy_out.stakes[1]) <= cap
        assert numpy_out.total_rewards > 0.0

    def test_leak_boundary_gates_rewards_not_penalties(self):
        for in_leak in (True, False):
            numpy_out, python_out = run_rewards_both(
                [30.0, 30.0], [True, False], [False, False], REWARDS, in_leak=in_leak
            )
            assert_reward_outcomes_identical(numpy_out, python_out)
            if in_leak:
                assert numpy_out.total_rewards == 0.0
                assert float(numpy_out.stakes[0]) == 30.0
            else:
                assert numpy_out.total_rewards > 0.0
            # Attestation penalties apply leak or not.
            assert numpy_out.total_penalties > 0.0
            assert numpy_out.penalized.tolist() == [False, True]

    def test_ineligible_entries_frozen(self):
        numpy_out, python_out = run_rewards_both(
            [30.0, 30.0], [True, False], [True, True], REWARDS, in_leak=False
        )
        assert_reward_outcomes_identical(numpy_out, python_out)
        assert numpy_out.stakes.tolist() == [30.0, 30.0]
        assert not numpy_out.rewarded.any()
        assert not numpy_out.penalized.any()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
        n=st.integers(min_value=1, max_value=12),
        in_leak=st.booleans(),
    )
    def test_property_backends_agree(self, seed, n, in_leak):
        rng = np.random.default_rng(seed)
        stakes = rng.uniform(0.0, 33.0, size=n)
        stakes[rng.random(n) < 0.2] = 0.0
        active = rng.random(n) < 0.5
        ineligible = rng.random(n) < 0.2
        numpy_out, python_out = run_rewards_both(
            stakes, active, ineligible, REWARDS, in_leak
        )
        assert_reward_outcomes_identical(numpy_out, python_out)

    def test_batched_update_matches_flat_update(self):
        rng = np.random.default_rng(5)
        kernel = get_backend("numpy")
        stakes = rng.uniform(0.0, 33.0, size=(3, 5))
        active = rng.random((3, 5)) < 0.5
        ineligible = rng.random((3, 5)) < 0.2
        batched = kernel.attestation_rewards_epoch_update(
            stakes, active, ineligible, REWARDS, False
        )
        for row in range(3):
            single = kernel.attestation_rewards_epoch_update(
                stakes[row], active[row], ineligible[row], REWARDS, False
            )
            assert np.array_equal(batched.stakes[row], single.stakes)
            assert np.array_equal(batched.rewarded[row], single.rewarded)
            assert np.array_equal(batched.penalized[row], single.penalized)


class TestSlashingKernel:
    def test_slash_charges_penalty_and_flags(self):
        numpy_out, python_out = run_slashing_both(
            [32.0, 32.0], [True, False], [False, False], [False, False], SLASHING
        )
        assert_slashing_outcomes_identical(numpy_out, python_out)
        assert numpy_out.newly_slashed.tolist() == [True, False]
        assert float(numpy_out.stakes[0]) == pytest.approx(
            32.0 * (1 - SLASHING.penalty_fraction)
        )
        assert float(numpy_out.stakes[1]) == 32.0

    def test_already_slashed_skipped(self):
        numpy_out, python_out = run_slashing_both(
            [31.0], [True], [True], [False], SLASHING
        )
        assert_slashing_outcomes_identical(numpy_out, python_out)
        assert not numpy_out.newly_slashed.any()
        assert float(numpy_out.stakes[0]) == 31.0
        assert numpy_out.total_penalty == 0.0

    def test_slash_after_ejection_skipped(self):
        # A validator that already left the active set (16.75-ETH ejection)
        # cannot be charged a slashing penalty any more.
        numpy_out, python_out = run_slashing_both(
            [16.0, 32.0], [True, True], [False, False], [True, False], SLASHING
        )
        assert_slashing_outcomes_identical(numpy_out, python_out)
        assert numpy_out.newly_slashed.tolist() == [False, True]
        assert float(numpy_out.stakes[0]) == 16.0

    def test_zero_stake_slash_deducts_nothing(self):
        numpy_out, python_out = run_slashing_both(
            [0.0], [True], [False], [False], SLASHING
        )
        assert_slashing_outcomes_identical(numpy_out, python_out)
        assert numpy_out.newly_slashed.tolist() == [True]
        assert numpy_out.total_penalty == 0.0

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2 ** 32 - 1),
        n=st.integers(min_value=1, max_value=12),
    )
    def test_property_backends_agree(self, seed, n):
        rng = np.random.default_rng(seed)
        stakes = rng.uniform(0.0, 33.0, size=n)
        slashable = rng.random(n) < 0.5
        slashed = rng.random(n) < 0.2
        ineligible = rng.random(n) < 0.2
        numpy_out, python_out = run_slashing_both(
            stakes, slashable, slashed, ineligible, SLASHING
        )
        assert_slashing_outcomes_identical(numpy_out, python_out)


class TestStakeEngineIncentives:
    def test_apply_attestation_rewards_updates_stakes(self):
        engine = StakeEngine([30.0, 30.0], config=MINIMAL)
        outcome = engine.apply_attestation_rewards([True, False], in_leak=False)
        assert float(engine.stakes[0]) > 30.0
        assert float(engine.stakes[1]) < 30.0
        assert outcome.total_rewards > 0.0
        assert outcome.total_penalties > 0.0

    def test_apply_slashings_marks_and_ejects(self):
        engine = StakeEngine([32.0, 32.0], config=MINIMAL)
        outcome = engine.apply_slashings([True, False])
        assert engine.slashed.tolist() == [True, False]
        assert engine.ejected.tolist() == [True, False]
        assert engine.ejection_epochs == {0: 0}
        assert outcome.total_penalty > 0.0
        # Slashing the same entry again is a no-op.
        again = engine.apply_slashings([True, False])
        assert not again.newly_slashed.any()
        assert again.total_penalty == 0.0

    def test_slashed_entries_skip_rewards(self):
        engine = StakeEngine([30.0, 30.0], config=MINIMAL)
        engine.apply_slashings([True, False])
        stake_after_slash = float(engine.stakes[0])
        engine.apply_attestation_rewards([True, True], in_leak=False)
        assert float(engine.stakes[0]) == stake_after_slash

    def test_engine_backends_agree_on_incentives(self):
        rng = np.random.default_rng(13)
        finals = {}
        for backend in ("numpy", "python"):
            rng = np.random.default_rng(13)
            engine = StakeEngine(
                rng.uniform(0.0, 32.0, size=40), config=MINIMAL, backend=backend
            )
            for round_index in range(20):
                active = rng.random(40) < 0.5
                engine.apply_attestation_rewards(active, in_leak=round_index % 2 == 0)
                engine.step(active, in_leak=round_index % 2 == 0)
                if round_index == 10:
                    engine.apply_slashings(rng.random(40) < 0.1)
            finals[backend] = (engine.stakes, engine.scores, engine.ejected, engine.slashed)
        for a, b in zip(finals["numpy"], finals["python"]):
            assert np.array_equal(a, b)
