"""Tests for the Monte-Carlo bouncing-attack simulator."""

import numpy as np
import pytest

from repro.analysis.bouncing import BouncingAttackModel, attack_duration_probability
from repro.analysis.montecarlo import BouncingMonteCarlo
from repro.spec.config import SpecConfig


#: A faster-leaking configuration so the interesting dynamics (stake decay,
#: threshold crossing) show up within a few hundred epochs in tests.
FAST = SpecConfig.mainnet().with_overrides(inactivity_penalty_quotient=2 ** 16)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BouncingMonteCarlo(beta0=1.2)
        with pytest.raises(ValueError):
            BouncingMonteCarlo(beta0=0.3, p0=1.0)
        with pytest.raises(ValueError):
            BouncingMonteCarlo(beta0=0.3, n_honest=0)

    def test_invalid_run_arguments(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=10)
        with pytest.raises(ValueError):
            mc.run(n_trials=0, horizon=10)
        with pytest.raises(ValueError):
            mc.run(n_trials=1, horizon=0)


class TestStoppingTime:
    def test_survival_matches_closed_form(self):
        # With stake-proportional proposer election and beta0 = 1/3, the
        # per-epoch continuation probability is 1 - (2/3)^8; over a short
        # horizon the stakes barely move, so the empirical survival matches
        # the closed form (1 - (1-beta)^j)^k.
        mc = BouncingMonteCarlo(beta0=1 / 3, n_honest=50, seed=3)
        result = mc.run(n_trials=400, horizon=20, record_epochs=[10, 20])
        expected = attack_duration_probability(1 / 3, 20)
        assert result.survival_probability(20) == pytest.approx(expected, abs=0.06)

    def test_small_beta_dies_quickly(self):
        mc = BouncingMonteCarlo(beta0=0.05, n_honest=20, seed=1)
        result = mc.run(n_trials=200, horizon=50)
        assert result.mean_stop_epoch() < 10
        assert result.survival_probability(50) < 0.05

    def test_no_stopping_when_disabled(self):
        mc = BouncingMonteCarlo(beta0=0.05, n_honest=20, enforce_stopping=False, seed=1)
        result = mc.run(n_trials=20, horizon=30)
        assert result.survival_probability(30) == 1.0
        assert result.mean_stop_epoch() == 30


class TestByzantineProportion:
    def test_beta_starts_near_beta0(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=200, enforce_stopping=False, seed=2)
        result = mc.run(n_trials=10, horizon=4, record_epochs=[2])
        for trial in result.trials:
            assert trial.byzantine_proportion_branch_a[2] == pytest.approx(0.3, abs=0.03)
            assert trial.byzantine_proportion_branch_b[2] == pytest.approx(0.3, abs=0.03)

    def test_exceed_probability_half_at_one_third(self):
        # The discrete per-validator dynamics reproduce the paper's headline:
        # at beta0 = 1/3 the probability of exceeding the threshold on a
        # given branch hovers around 1/2 (and is ~1 on at least one branch).
        mc = BouncingMonteCarlo(
            beta0=1 / 3, n_honest=300, config=FAST, enforce_stopping=False, seed=5
        )
        result = mc.run(n_trials=60, horizon=120, record_epochs=[120])
        either = result.exceed_probability(120)
        assert 0.5 <= either <= 1.0

    def test_low_beta_rarely_exceeds(self):
        mc = BouncingMonteCarlo(
            beta0=0.25, n_honest=300, config=FAST, enforce_stopping=False, seed=6
        )
        result = mc.run(n_trials=40, horizon=120, record_epochs=[120])
        assert result.exceed_probability(120) < 0.2

    def test_conditional_probability_at_least_unconditional(self):
        mc = BouncingMonteCarlo(beta0=0.33, n_honest=100, config=FAST, seed=7)
        result = mc.run(n_trials=100, horizon=60, record_epochs=[60])
        assert result.conditional_exceed_probability(60) >= result.exceed_probability(60)


class TestHonestStakeSample:
    def test_sample_matches_closed_form_median(self):
        mc = BouncingMonteCarlo(beta0=1 / 3, p0=0.5, n_honest=10, seed=11)
        stakes = mc.honest_stake_sample(epoch=2000, n_samples=4000)
        model = BouncingAttackModel(beta0=1 / 3, p0=0.5)
        median = float(np.median(stakes))
        assert median == pytest.approx(model.distribution.mean_stake(2000.0), rel=0.01)

    def test_sample_respects_bounds(self):
        mc = BouncingMonteCarlo(beta0=0.3, p0=0.5, n_honest=10, seed=12)
        stakes = mc.honest_stake_sample(epoch=500, n_samples=1000)
        assert float(stakes.max()) <= 32.0 + 1e-9
        assert float(stakes.min()) >= 0.0

    def test_ejected_validators_have_zero_stake(self):
        mc = BouncingMonteCarlo(beta0=0.3, p0=0.5, n_honest=10, config=FAST, seed=13)
        stakes = mc.honest_stake_sample(epoch=400, n_samples=2000)
        # With the fast-leak config, a visible fraction has been ejected.
        assert (stakes == 0.0).mean() > 0.0
        assert not ((stakes > 0) & (stakes < 10.0)).any()  # below ~ejection -> zeroed


def trials_identical(first, second, compare_stakes=False):
    assert len(first.trials) == len(second.trials)
    for a, b in zip(first.trials, second.trials):
        assert a.stop_epoch == b.stop_epoch
        assert a.survived == b.survived
        assert a.byzantine_proportion_branch_a == b.byzantine_proportion_branch_a
        assert a.byzantine_proportion_branch_b == b.byzantine_proportion_branch_b
        if compare_stakes:
            assert a.stake_snapshots is not None and b.stake_snapshots is not None
            assert set(a.stake_snapshots) == set(b.stake_snapshots)
            for epoch in a.stake_snapshots:
                assert np.array_equal(
                    a.stake_snapshots[epoch], b.stake_snapshots[epoch]
                )


class TestTrialBatching:
    """The kernel-batch width is a pure throughput knob.

    For a fixed ``(seed, chunk_size)`` the per-chunk RNG streams — and
    therefore every exceed-probability curve and stake trajectory — must
    be byte-identical whatever ``batch`` is.  With ``chunk_size=1`` the
    ``batch=1`` run *is* the per-trial reference path, so these tests pin
    the batched path against it directly.
    """

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_batched_equals_per_trial_path(self, backend):
        mc = BouncingMonteCarlo(
            beta0=0.3, n_honest=12, config=FAST, seed=21, backend=backend
        )
        per_trial = mc.run(
            n_trials=12,
            horizon=30,
            record_epochs=[10, 20, 30],
            chunk_size=1,
            batch=1,
            record_stakes=True,
        )
        batched = mc.run(
            n_trials=12,
            horizon=30,
            record_epochs=[10, 20, 30],
            chunk_size=1,
            batch=12,
            record_stakes=True,
        )
        trials_identical(per_trial, batched, compare_stakes=True)
        assert per_trial.exceed_probability_curve() == batched.exceed_probability_curve()

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_batch_width_invariance_with_stopping(self, backend):
        mc = BouncingMonteCarlo(
            beta0=0.3, n_honest=10, config=FAST, seed=5, backend=backend
        )
        baseline = mc.run(
            n_trials=40,
            horizon=40,
            record_epochs=[20, 40],
            chunk_size=8,
            batch=8,
            record_stakes=True,
        )
        for batch in (16, 24, 40, None):
            other = mc.run(
                n_trials=40,
                horizon=40,
                record_epochs=[20, 40],
                chunk_size=8,
                batch=batch,
                record_stakes=True,
            )
            trials_identical(baseline, other, compare_stakes=True)

    def test_batch_and_jobs_compose(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=10, config=FAST, seed=7)
        serial = mc.run(n_trials=24, horizon=30, chunk_size=6, batch=12, jobs=1)
        parallel = mc.run(n_trials=24, horizon=30, chunk_size=6, batch=12, jobs=3)
        trials_identical(serial, parallel)

    def test_default_batch_is_cache_budgeted(self):
        small = BouncingMonteCarlo(beta0=0.3, n_honest=64, config=FAST)
        large = BouncingMonteCarlo(beta0=0.3, n_honest=10_000, config=FAST)
        assert small.default_batch(100_000) > large.default_batch(100_000)
        # Never below the chunk size, never above the trial count when tiny.
        assert small.default_batch(8, chunk_size=8) == 8
        assert large.default_batch(100_000) >= 1

    def test_snapshots_absent_unless_requested(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=8, config=FAST, seed=3)
        result = mc.run(n_trials=4, horizon=10)
        assert all(t.stake_snapshots is None for t in result.trials)

    def test_snapshot_shape_and_filtering(self):
        mc = BouncingMonteCarlo(
            beta0=0.3, n_honest=8, config=FAST, seed=3, enforce_stopping=False
        )
        result = mc.run(
            n_trials=4, horizon=10, record_epochs=[5, 10], record_stakes=True
        )
        for trial in result.trials:
            assert set(trial.stake_snapshots) == {5, 10}
            for snapshot in trial.stake_snapshots.values():
                assert snapshot.shape == (2, 9)
