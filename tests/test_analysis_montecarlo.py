"""Tests for the Monte-Carlo bouncing-attack simulator."""

import numpy as np
import pytest

from repro.analysis.bouncing import BouncingAttackModel, attack_duration_probability
from repro.analysis.montecarlo import BouncingMonteCarlo
from repro.spec.config import SpecConfig


#: A faster-leaking configuration so the interesting dynamics (stake decay,
#: threshold crossing) show up within a few hundred epochs in tests.
FAST = SpecConfig.mainnet().with_overrides(inactivity_penalty_quotient=2 ** 16)


class TestConstruction:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BouncingMonteCarlo(beta0=1.2)
        with pytest.raises(ValueError):
            BouncingMonteCarlo(beta0=0.3, p0=1.0)
        with pytest.raises(ValueError):
            BouncingMonteCarlo(beta0=0.3, n_honest=0)

    def test_invalid_run_arguments(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=10)
        with pytest.raises(ValueError):
            mc.run(n_trials=0, horizon=10)
        with pytest.raises(ValueError):
            mc.run(n_trials=1, horizon=0)


class TestStoppingTime:
    def test_survival_matches_closed_form(self):
        # With stake-proportional proposer election and beta0 = 1/3, the
        # per-epoch continuation probability is 1 - (2/3)^8; over a short
        # horizon the stakes barely move, so the empirical survival matches
        # the closed form (1 - (1-beta)^j)^k.
        mc = BouncingMonteCarlo(beta0=1 / 3, n_honest=50, seed=3)
        result = mc.run(n_trials=400, horizon=20, record_epochs=[10, 20])
        expected = attack_duration_probability(1 / 3, 20)
        assert result.survival_probability(20) == pytest.approx(expected, abs=0.06)

    def test_small_beta_dies_quickly(self):
        mc = BouncingMonteCarlo(beta0=0.05, n_honest=20, seed=1)
        result = mc.run(n_trials=200, horizon=50)
        assert result.mean_stop_epoch() < 10
        assert result.survival_probability(50) < 0.05

    def test_no_stopping_when_disabled(self):
        mc = BouncingMonteCarlo(beta0=0.05, n_honest=20, enforce_stopping=False, seed=1)
        result = mc.run(n_trials=20, horizon=30)
        assert result.survival_probability(30) == 1.0
        assert result.mean_stop_epoch() == 30


class TestByzantineProportion:
    def test_beta_starts_near_beta0(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=200, enforce_stopping=False, seed=2)
        result = mc.run(n_trials=10, horizon=4, record_epochs=[2])
        for trial in result.trials:
            assert trial.byzantine_proportion_branch_a[2] == pytest.approx(0.3, abs=0.03)
            assert trial.byzantine_proportion_branch_b[2] == pytest.approx(0.3, abs=0.03)

    def test_exceed_probability_half_at_one_third(self):
        # The discrete per-validator dynamics reproduce the paper's headline:
        # at beta0 = 1/3 the probability of exceeding the threshold on a
        # given branch hovers around 1/2 (and is ~1 on at least one branch).
        mc = BouncingMonteCarlo(
            beta0=1 / 3, n_honest=300, config=FAST, enforce_stopping=False, seed=5
        )
        result = mc.run(n_trials=60, horizon=120, record_epochs=[120])
        either = result.exceed_probability(120)
        assert 0.5 <= either <= 1.0

    def test_low_beta_rarely_exceeds(self):
        mc = BouncingMonteCarlo(
            beta0=0.25, n_honest=300, config=FAST, enforce_stopping=False, seed=6
        )
        result = mc.run(n_trials=40, horizon=120, record_epochs=[120])
        assert result.exceed_probability(120) < 0.2

    def test_conditional_probability_at_least_unconditional(self):
        mc = BouncingMonteCarlo(beta0=0.33, n_honest=100, config=FAST, seed=7)
        result = mc.run(n_trials=100, horizon=60, record_epochs=[60])
        assert result.conditional_exceed_probability(60) >= result.exceed_probability(60)


class TestHonestStakeSample:
    def test_sample_matches_closed_form_median(self):
        mc = BouncingMonteCarlo(beta0=1 / 3, p0=0.5, n_honest=10, seed=11)
        stakes = mc.honest_stake_sample(epoch=2000, n_samples=4000)
        model = BouncingAttackModel(beta0=1 / 3, p0=0.5)
        median = float(np.median(stakes))
        assert median == pytest.approx(model.distribution.mean_stake(2000.0), rel=0.01)

    def test_sample_respects_bounds(self):
        mc = BouncingMonteCarlo(beta0=0.3, p0=0.5, n_honest=10, seed=12)
        stakes = mc.honest_stake_sample(epoch=500, n_samples=1000)
        assert float(stakes.max()) <= 32.0 + 1e-9
        assert float(stakes.min()) >= 0.0

    def test_ejected_validators_have_zero_stake(self):
        mc = BouncingMonteCarlo(beta0=0.3, p0=0.5, n_honest=10, config=FAST, seed=13)
        stakes = mc.honest_stake_sample(epoch=400, n_samples=2000)
        # With the fast-leak config, a visible fraction has been ejected.
        assert (stakes == 0.0).mean() > 0.0
        assert not ((stakes > 0) & (stakes < 10.0)).any()  # below ~ejection -> zeroed
