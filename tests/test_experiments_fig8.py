"""Tests for the Figure-8 Markov-bounce experiment."""

import pytest

from repro.experiments import fig8_markov_bounce, registry


class TestFigure8:
    def test_even_split_values(self):
        result = fig8_markov_bounce.run(p0_values=(0.5,))
        row = result.rows()[0]
        assert row["path_AA"] == pytest.approx(0.25)
        assert row["path_AB"] == pytest.approx(0.25)
        assert row["increment_+8"] == pytest.approx(0.25)
        assert row["increment_+3"] == pytest.approx(0.5)
        assert row["increment_-2"] == pytest.approx(0.25)

    def test_paths_sum_to_one(self):
        result = fig8_markov_bounce.run(p0_values=(0.5, 0.6, 0.66))
        for p0 in result.p0_values:
            assert sum(result.path_probabilities[p0].values()) == pytest.approx(1.0)
            assert sum(result.increment_distributions[p0].values()) == pytest.approx(1.0)

    def test_mean_increment_is_three_for_every_p0(self):
        result = fig8_markov_bounce.run(p0_values=(0.5, 0.55, 0.6, 0.66))
        for p0 in result.p0_values:
            assert result.mean_two_epoch_increment[p0] == pytest.approx(3.0)

    def test_exact_walk_consistency(self):
        # Seen from one branch, the exact two-epoch walk mean is 2*(4-5p)
        # which the rows expose for cross-checking against the drift model.
        result = fig8_markov_bounce.run(p0_values=(0.4,))
        row = result.rows()[0]
        assert row["exact_walk_mean_after_two_epochs"] == pytest.approx(2 * (4 - 5 * 0.4))

    def test_format_and_registry(self):
        result = fig8_markov_bounce.run()
        assert "Figure 8" in result.format_text()
        assert "fig8" in registry.list_ids()
        assert hasattr(registry.run("fig8"), "rows")
