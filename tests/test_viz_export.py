"""Tests for the ASCII visualisation helpers and the experiment export module."""

import json
import pathlib

import pytest

from repro.experiments import export, registry
from repro.experiments.runner import main, run_experiments
from repro.viz import ascii_plot, format_table, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_monotone_series_uses_increasing_levels(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 8

    def test_resampling_width(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10


class TestAsciiPlot:
    def test_single_series_contains_markers_and_labels(self):
        chart = ascii_plot(
            {"ratio": ([0, 1, 2, 3], [0.0, 0.5, 0.75, 1.0])},
            width=30,
            height=8,
            x_label="epoch",
            y_label="ratio",
        )
        assert "*" in chart
        assert "ratio" in chart
        assert "epoch" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_plot(
            {
                "first": ([0, 1, 2], [1.0, 2.0, 3.0]),
                "second": ([0, 1, 2], [3.0, 2.0, 1.0]),
            },
            width=20,
            height=6,
        )
        assert "*" in chart and "+" in chart

    def test_empty_plot(self):
        assert ascii_plot({"empty": ([], [])}) == "(empty plot)"

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"x": ([0], [0])}, width=5, height=2)


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty table)"

    def test_columns_aligned_and_none_rendered_as_dash(self):
        table = format_table(
            [{"a": 1, "b": None}, {"a": 123456, "b": 2.5}],
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert "-" in lines[2].split()[1]
        assert "2.5" in lines[3]

    def test_explicit_column_selection(self):
        table = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in table.splitlines()[0]


class TestExport:
    def test_export_json_and_csv(self, tmp_path):
        result = registry.run("fig6")
        json_path = export.export_json("fig6", result, tmp_path)
        csv_path = export.export_csv("fig6", result, tmp_path)
        assert json_path.exists() and csv_path.exists()
        record = json.loads(json_path.read_text())
        assert record["experiment"] == "fig6"
        assert record["rows"]
        assert "Figure 6" in record["report"]
        header = csv_path.read_text().splitlines()[0]
        assert "beta0" in header

    def test_export_experiments_helper(self, tmp_path):
        written = export.export_experiments(["bouncing-duration"], tmp_path)
        names = {path.name for path in written}
        assert "bouncing-duration.json" in names
        assert "bouncing-duration.csv" in names

    def test_jsonable_handles_special_floats(self):
        assert export._jsonable(float("nan")) is None
        assert export._jsonable(float("inf")) == "inf"
        assert export._jsonable((1, 2)) == [1, 2]

    def test_runner_with_output_dir(self, tmp_path, capsys):
        code = main(["fig6", "--output-dir", str(tmp_path), "--format", "json"])
        assert code == 0
        assert (tmp_path / "fig6.json").exists()
        assert not (tmp_path / "fig6.csv").exists()

    def test_run_experiments_with_export(self, tmp_path):
        reports = run_experiments(["safety-bound"], output_dir=tmp_path)
        assert len(reports) == 1
        assert (tmp_path / "safety-bound.json").exists()
        assert (tmp_path / "safety-bound.csv").exists()
