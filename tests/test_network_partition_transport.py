"""Tests for repro.network.partition, transport and adversary."""

import pytest

from repro.network.adversary import Adversary
from repro.network.latency import FixedJitter
from repro.network.message import Message
from repro.network.partition import Partition, PartitionSchedule
from repro.network.transport import Network
from repro.spec.block import BeaconBlock


def block_message(sender: int, sent_at: float = 0.0) -> Message:
    return Message.block(BeaconBlock.genesis(), sender=sender, sent_at=sent_at)


@pytest.fixture
def schedule():
    """Validators 0-3 in branch-1, 4-7 in branch-2, 8-9 Byzantine bridges, GST=1000."""
    return PartitionSchedule(
        partitions=(
            Partition("branch-1", frozenset({0, 1, 2, 3})),
            Partition("branch-2", frozenset({4, 5, 6, 7})),
        ),
        gst=1000.0,
        delta=2.0,
    )


class TestPartitionSchedule:
    def test_partition_of(self, schedule):
        assert schedule.partition_of(0) == "branch-1"
        assert schedule.partition_of(5) == "branch-2"
        assert schedule.partition_of(8) is None

    def test_is_bridge(self, schedule):
        assert schedule.is_bridge(9)
        assert not schedule.is_bridge(0)

    def test_communication_within_partition_before_gst(self, schedule):
        assert schedule.can_communicate(0, 1, time=10.0)

    def test_no_communication_across_partitions_before_gst(self, schedule):
        assert not schedule.can_communicate(0, 4, time=10.0)

    def test_bridge_reaches_both_sides_before_gst(self, schedule):
        assert schedule.can_communicate(8, 0, time=10.0)
        assert schedule.can_communicate(8, 4, time=10.0)
        assert schedule.can_communicate(0, 8, time=10.0)

    def test_everyone_communicates_after_gst(self, schedule):
        assert schedule.can_communicate(0, 4, time=1000.0)

    def test_delivery_time_within_partition(self, schedule):
        assert schedule.delivery_time(0, 1, sent_at=10.0) == pytest.approx(12.0)

    def test_delivery_time_across_partition_deferred_to_gst(self, schedule):
        assert schedule.delivery_time(0, 4, sent_at=10.0) == pytest.approx(1002.0)

    def test_rejects_overlapping_partitions(self):
        with pytest.raises(ValueError):
            PartitionSchedule(
                partitions=(
                    Partition("a", frozenset({0, 1})),
                    Partition("b", frozenset({1, 2})),
                ),
                gst=10.0,
            )

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            PartitionSchedule(partitions=(), gst=0.0, delta=0.0)

    def test_two_way_split_respects_fraction(self):
        schedule = PartitionSchedule.two_way_split(
            honest_indices=list(range(10)), active_fraction=0.3, gst=100.0
        )
        assert len(schedule.members_of("branch-1")) == 3
        assert len(schedule.members_of("branch-2")) == 7

    def test_two_way_split_excludes_bridges(self):
        schedule = PartitionSchedule.two_way_split(
            honest_indices=list(range(10)),
            active_fraction=0.5,
            gst=100.0,
            bridge_indices=[8, 9],
        )
        members = schedule.members_of("branch-1") | schedule.members_of("branch-2")
        assert 8 not in members and 9 not in members

    def test_fully_connected(self):
        schedule = PartitionSchedule.fully_connected()
        assert schedule.can_communicate(0, 99, time=0.0)

    def test_members_of_unknown_partition(self, schedule):
        with pytest.raises(KeyError):
            schedule.members_of("nope")


class TestNetwork:
    def test_broadcast_reaches_partition_members_quickly(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.broadcast(block_message(0, sent_at=0.0), exclude={0})
        deliveries = network.deliveries_until(schedule.delta)
        recipients = {d.recipient for d in deliveries}
        # Partition members and bridge nodes get it within delta.
        assert {1, 2, 3, 8, 9} <= recipients
        assert recipients.isdisjoint({4, 5, 6, 7})

    def test_cross_partition_messages_arrive_after_gst(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.broadcast(block_message(0, sent_at=0.0), exclude={0})
        network.deliveries_until(100.0)
        late = network.deliveries_until(schedule.gst + schedule.delta)
        assert {d.recipient for d in late} == {4, 5, 6, 7}

    def test_send_point_to_point(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.send(block_message(0, sent_at=5.0), recipient=2)
        deliveries = network.deliveries_until(10.0)
        assert len(deliveries) == 1
        assert deliveries[0].recipient == 2

    def test_restricted_broadcast(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.broadcast(block_message(8, sent_at=0.0), recipients=[0, 1], exclude={8})
        recipients = {d.recipient for d in network.deliveries_until(10.0)}
        assert recipients == {0, 1}

    def test_withhold_and_release(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        message = block_message(8, sent_at=0.0)
        network.withhold(message, recipient=0)
        assert network.withheld_count() == 1
        assert network.deliveries_until(100.0) == []
        released = network.release_withheld(release_time=50.0)
        assert released == 1
        deliveries = network.deliveries_until(60.0)
        assert [d.recipient for d in deliveries] == [0]

    def test_stats_counters(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.broadcast(block_message(0, sent_at=0.0), exclude={0})
        network.deliveries_until(2000.0)
        assert network.stats.sent == 1
        assert network.stats.delivered == 9
        assert network.stats.delayed_across_partition == 4

    def test_next_delivery_time(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        assert network.next_delivery_time() is None
        network.send(block_message(0, sent_at=3.0), recipient=1)
        assert network.next_delivery_time() == pytest.approx(5.0)


class TestDelayAccounting:
    """The delay counters are disjoint by cause.

    ``delayed_across_partition`` counts only deliveries the partition
    schedule held to GST; deliberate sender-side delays and latency-model
    delays have their own counters and never leak into it.
    """

    def test_send_delayed_counts_as_adversary_delay(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.send_delayed(block_message(0, sent_at=0.0), recipient=1, delay=5.0)
        assert network.stats.adversary_delayed == 1
        assert network.stats.delayed_across_partition == 0
        assert network.stats.lazy_delayed == 0
        # Partition rules apply from the delayed instant.
        assert network.next_delivery_time() == pytest.approx(5.0 + schedule.delta)

    def test_send_delayed_across_partition_counts_both_causes(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.send_delayed(block_message(0, sent_at=0.0), recipient=4, delay=5.0)
        assert network.stats.adversary_delayed == 1
        assert network.stats.delayed_across_partition == 1
        assert network.next_delivery_time() == pytest.approx(
            schedule.gst + schedule.delta
        )

    def test_lazy_broadcast_counts_once_per_publication(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        network.broadcast(block_message(0, sent_at=0.0), exclude={0}, delay=2.0)
        network.broadcast(block_message(1, sent_at=12.0), exclude={1})
        assert network.stats.lazy_delayed == 1
        assert network.stats.adversary_delayed == 0
        # The lazy copy still lands delta after its *effective* send time.
        in_partition = [
            d for d in network.deliveries_until(100.0) if d.message.sender == 0
        ]
        assert all(d.deliver_at == pytest.approx(2.0 + schedule.delta) for d in in_partition)

    def test_latency_model_delays_have_their_own_counter(self, schedule):
        # base=5s exceeds delta=2s for every recipient; an unbound model
        # is auto-bound without a phase grid, so delivery times are raw.
        network = Network(
            schedule,
            participants=list(range(10)),
            latency_model=FixedJitter(base=5.0, jitter=0.0, seed=1),
        )
        network.broadcast(block_message(0, sent_at=0.0), exclude={0}, recipients=[1, 2, 3])
        assert network.stats.latency_delayed == 3
        assert network.stats.delayed_across_partition == 0
        assert network.stats.adversary_delayed == 0
        deliveries = network.deliveries_until(100.0)
        assert all(d.deliver_at == pytest.approx(5.0) for d in deliveries)

    def test_modeled_cross_partition_still_held_to_gst(self, schedule):
        network = Network(
            schedule,
            participants=list(range(10)),
            latency_model=FixedJitter(base=0.1, jitter=0.0, seed=1),
        )
        network.broadcast(block_message(0, sent_at=0.0), exclude={0})
        assert network.stats.delayed_across_partition == 4  # branch-2
        assert network.stats.latency_delayed == 0  # 0.1s < delta
        late = [d for d in network.deliveries_until(10_000.0) if d.recipient in {4, 5, 6, 7}]
        assert all(d.deliver_at >= schedule.gst for d in late)

    def test_sub_delta_model_is_not_counted_as_delayed(self, schedule):
        network = Network(
            schedule,
            participants=list(range(10)),
            latency_model=FixedJitter(base=0.2, jitter=0.4, seed=1),
        )
        network.broadcast(block_message(0, sent_at=0.0), exclude={0}, recipients=[1, 2, 3])
        assert network.stats.latency_delayed == 0


class TestAdversary:
    @pytest.fixture
    def adversary(self, schedule):
        network = Network(schedule, participants=list(range(10)))
        return Adversary(byzantine_indices={8, 9}, network=network, schedule=schedule)

    def test_honest_members_of(self, adversary):
        assert adversary.honest_members_of("branch-1") == {0, 1, 2, 3}

    def test_controls(self, adversary):
        assert adversary.controls(8)
        assert not adversary.controls(0)

    def test_unaffected_by_partition(self, adversary):
        assert adversary.is_unaffected_by_partition()

    def test_send_to_partition_targets_one_side(self, adversary):
        # Senders receive their own messages through the network like any
        # other member of their view (uniform delivery keeps view groups
        # bit-identical), so 8 appears among the recipients.
        adversary.send_to_partition(block_message(8, sent_at=0.0), "branch-1")
        recipients = {d.recipient for d in adversary.network.deliveries_until(10.0)}
        assert recipients <= {0, 1, 2, 3, 8, 9}
        assert recipients.isdisjoint({4, 5, 6, 7})

    def test_broadcast_everywhere(self, adversary):
        adversary.broadcast_everywhere(block_message(8, sent_at=0.0))
        recipients = {d.recipient for d in adversary.network.deliveries_until(10.0)}
        assert {0, 1, 2, 3, 4, 5, 6, 7, 8, 9} == recipients

    def test_withhold_and_release_all(self, adversary):
        # Withholding is uniform too: the sender's own copy is withheld and
        # released along with everyone else's.
        adversary.withhold(block_message(8, sent_at=0.0), recipients=[0, 1, 8])
        assert adversary.network.withheld_count() == 3
        count = adversary.release_all(release_time=20.0)
        assert count == 3
        assert {d.recipient for d in adversary.network.deliveries_until(30.0)} == {0, 1, 8}

    def test_endpoint_resolver_collapses_audiences(self, adversary):
        # With a resolver mapping every validator of a side to one endpoint
        # (its view group's representative), targeted sends schedule one
        # delivery per group instead of one per validator.
        representative = {i: 0 for i in (0, 1, 2, 3)}
        representative.update({i: 4 for i in (4, 5, 6, 7)})
        representative.update({8: 8, 9: 8})
        adversary.set_endpoint_resolver(representative.__getitem__)
        adversary.send_to_partition(block_message(8, sent_at=0.0), "branch-1")
        recipients = [d.recipient for d in adversary.network.deliveries_until(10.0)]
        assert sorted(recipients) == [0, 8]

    def test_byzantine_count(self, adversary):
        assert adversary.byzantine_count() == 2
