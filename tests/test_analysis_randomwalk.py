"""Tests for repro.analysis.randomwalk (Equations 15-16)."""

import math

import numpy as np
import pytest

from repro.analysis.randomwalk import (
    diffusion_coefficient,
    drift_per_epoch,
    exact_score_distribution,
    gaussian_score_density,
    gaussian_score_mean,
    gaussian_score_std,
    sample_walks,
    two_epoch_increment_distribution,
)


class TestEquation15:
    def test_probabilities_sum_to_one(self):
        distribution = two_epoch_increment_distribution(0.3)
        assert sum(distribution.values()) == pytest.approx(1.0)

    def test_even_split_values(self):
        distribution = two_epoch_increment_distribution(0.5)
        assert distribution[8] == pytest.approx(0.25)
        assert distribution[3] == pytest.approx(0.5)
        assert distribution[-2] == pytest.approx(0.25)

    def test_mean_increment_is_three(self):
        for p0 in (0.3, 0.5, 0.7):
            distribution = two_epoch_increment_distribution(p0)
            mean = sum(step * probability for step, probability in distribution.items())
            assert mean == pytest.approx(3.0)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            two_epoch_increment_distribution(1.5)


class TestDriftAndDiffusion:
    def test_drift_is_three_halves(self):
        assert drift_per_epoch(0.5) == pytest.approx(1.5)
        assert drift_per_epoch(0.3) == pytest.approx(1.5)

    def test_diffusion_paper_value(self):
        assert diffusion_coefficient(0.5) == pytest.approx(6.25)
        assert diffusion_coefficient(0.2) == pytest.approx(25 * 0.2 * 0.8)

    def test_diffusion_maximal_at_even_split(self):
        assert diffusion_coefficient(0.5) >= diffusion_coefficient(0.3)
        assert diffusion_coefficient(0.5) >= diffusion_coefficient(0.7)


class TestExactDistribution:
    def test_zero_epochs_is_point_mass(self):
        distribution = exact_score_distribution(0, 0.5)
        assert distribution.probabilities == {0: 1.0}

    def test_probabilities_sum_to_one(self):
        distribution = exact_score_distribution(12, 0.4)
        assert sum(distribution.probabilities.values()) == pytest.approx(1.0)

    def test_clamped_scores_never_negative(self):
        distribution = exact_score_distribution(15, 0.8, clamp_at_zero=True)
        assert min(distribution.support()) >= 0

    def test_unclamped_mean_matches_drift(self):
        # Without the clamp, the mean per epoch is 4(1-p) - p = 4 - 5p.
        epochs, p0 = 20, 0.4
        distribution = exact_score_distribution(epochs, p0, clamp_at_zero=False)
        assert distribution.mean() == pytest.approx((4 - 5 * p0) * epochs)

    def test_probability_at_least(self):
        distribution = exact_score_distribution(2, 0.5, clamp_at_zero=False)
        assert distribution.probability_at_least(8) == pytest.approx(0.25)

    def test_negative_epochs_rejected(self):
        with pytest.raises(ValueError):
            exact_score_distribution(-1, 0.5)


class TestGaussianApproximation:
    def test_density_integrates_to_one(self):
        t, p0 = 200.0, 0.5
        grid = np.linspace(-500, 1500, 20001)
        density = [gaussian_score_density(float(x), t, p0) for x in grid]
        assert np.trapezoid(density, grid) == pytest.approx(1.0, abs=1e-3)

    def test_density_peaks_at_mean(self):
        t = 100.0
        mean = gaussian_score_mean(t)
        assert gaussian_score_density(mean, t) > gaussian_score_density(mean + 50, t)
        assert gaussian_score_density(mean, t) > gaussian_score_density(mean - 50, t)

    def test_mean_and_std(self):
        assert gaussian_score_mean(100.0) == pytest.approx(150.0)
        assert gaussian_score_std(100.0, 0.5) == pytest.approx(math.sqrt(2 * 6.25 * 100))

    def test_zero_time_rejected(self):
        with pytest.raises(ValueError):
            gaussian_score_density(0.0, 0.0)


class TestMonteCarlo:
    def test_sampled_mean_matches_model(self):
        # On one branch the expected increment per epoch is 4(1-p) - p.
        epochs, p0 = 400, 0.5
        samples = sample_walks(epochs, p0, n_samples=4000, seed=1, clamp_at_zero=False)
        assert samples.mean() == pytest.approx((4 - 5 * p0) * epochs, rel=0.05)

    def test_sampled_std_matches_diffusion(self):
        epochs, p0 = 400, 0.5
        samples = sample_walks(epochs, p0, n_samples=4000, seed=2, clamp_at_zero=False)
        expected_std = math.sqrt(25 * p0 * (1 - p0) * epochs)
        assert samples.std() == pytest.approx(expected_std, rel=0.1)

    def test_clamped_samples_non_negative(self):
        samples = sample_walks(50, 0.9, n_samples=500, seed=3, clamp_at_zero=True)
        assert (samples >= 0).all()


class TestChunkedSampling:
    def test_chunk_rows_is_bit_invariant(self):
        import numpy as np

        full = sample_walks(25, 0.4, 101, seed=7)
        for chunk_rows in (1, 10, 101, 500):
            chunked = sample_walks(25, 0.4, 101, seed=7, chunk_rows=chunk_rows)
            assert np.array_equal(full, chunked)

    def test_unclamped_dtype_preserved(self):
        import numpy as np

        full = sample_walks(10, 0.5, 8, seed=0, clamp_at_zero=False)
        chunked = sample_walks(
            10, 0.5, 8, seed=0, clamp_at_zero=False, chunk_rows=3
        )
        assert np.array_equal(full, chunked)
        assert full.dtype == chunked.dtype

    def test_invalid_chunk_rows_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            sample_walks(10, 0.5, 8, chunk_rows=0)
