"""Tests for repro.leak.stake (Section 4.3 continuous stake functions)."""

import math

import pytest

from repro import constants
from repro.leak.stake import (
    Behavior,
    active_stake,
    continuous_ejection_epoch,
    inactive_stake,
    inactivity_score,
    integrate_stake,
    sample_trajectory,
    semi_active_stake,
    stake,
    stake_decay_exponent,
)


class TestInactivityScoreProfiles:
    def test_active_score_zero(self):
        assert inactivity_score(Behavior.ACTIVE, 100.0) == 0.0

    def test_semi_active_score_three_halves_t(self):
        assert inactivity_score(Behavior.SEMI_ACTIVE, 100.0) == pytest.approx(150.0)

    def test_inactive_score_four_t(self):
        assert inactivity_score(Behavior.INACTIVE, 100.0) == pytest.approx(400.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            inactivity_score(Behavior.ACTIVE, -1.0)


class TestStakeClosedForms:
    def test_initial_values(self):
        assert active_stake(0.0) == 32.0
        assert semi_active_stake(0.0) == 32.0
        assert inactive_stake(0.0) == 32.0

    def test_active_constant(self):
        assert active_stake(5000.0) == 32.0

    def test_paper_formulas(self):
        t = 1000.0
        assert inactive_stake(t) == pytest.approx(32.0 * math.exp(-t * t / 2 ** 25))
        assert semi_active_stake(t) == pytest.approx(32.0 * math.exp(-3 * t * t / 2 ** 28))

    def test_ordering_inactive_loses_fastest(self):
        t = 2000.0
        assert inactive_stake(t) < semi_active_stake(t) < active_stake(t)

    def test_dispatch_helper(self):
        assert stake(Behavior.INACTIVE, 100.0) == inactive_stake(100.0)
        assert stake(Behavior.SEMI_ACTIVE, 100.0) == semi_active_stake(100.0)
        assert stake(Behavior.ACTIVE, 100.0) == active_stake(100.0)

    def test_decay_exponents(self):
        assert stake_decay_exponent(Behavior.ACTIVE) == 0.0
        assert stake_decay_exponent(Behavior.INACTIVE) == pytest.approx(1 / 2 ** 25)
        assert stake_decay_exponent(Behavior.SEMI_ACTIVE) == pytest.approx(3 / 2 ** 28)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            inactive_stake(-1.0)


class TestEjectionEpochs:
    def test_active_never_ejected(self):
        assert continuous_ejection_epoch(Behavior.ACTIVE) is None

    def test_inactive_ejection_near_paper_value(self):
        epoch = continuous_ejection_epoch(Behavior.INACTIVE)
        # Derived value ~4661; the paper's reference constant is 4685 (<1% off).
        assert epoch == pytest.approx(
            math.sqrt(2 ** 25 * math.log(32.0 / 16.75)), rel=1e-9
        )
        assert abs(epoch - constants.PAPER_INACTIVE_EJECTION_EPOCH) / 4685 < 0.01

    def test_semi_active_ejection_near_paper_value(self):
        epoch = continuous_ejection_epoch(Behavior.SEMI_ACTIVE)
        assert abs(epoch - constants.PAPER_SEMI_ACTIVE_EJECTION_EPOCH) / 7652 < 0.01

    def test_stake_at_ejection_equals_threshold(self):
        epoch = continuous_ejection_epoch(Behavior.INACTIVE)
        assert inactive_stake(epoch) == pytest.approx(16.75, rel=1e-6)


class TestTrajectorySampling:
    def test_trajectory_shape(self):
        trajectory = sample_trajectory(Behavior.INACTIVE, max_epoch=100, step=10)
        assert list(trajectory.epochs) == list(range(0, 101, 10))
        assert len(trajectory.stakes) == len(trajectory.epochs)

    def test_trajectory_monotonically_decreasing(self):
        trajectory = sample_trajectory(Behavior.INACTIVE, max_epoch=6000, step=50)
        stakes = list(trajectory.stakes)
        assert all(b <= a + 1e-12 for a, b in zip(stakes, stakes[1:]))

    def test_freeze_after_ejection(self):
        trajectory = sample_trajectory(Behavior.INACTIVE, max_epoch=8000, step=100)
        assert trajectory.final_stake() == pytest.approx(16.75, rel=1e-3)

    def test_no_freeze_keeps_decaying(self):
        trajectory = sample_trajectory(
            Behavior.INACTIVE, max_epoch=8000, step=100, freeze_after_ejection=False
        )
        assert trajectory.final_stake() < 16.75

    def test_as_arrays(self):
        trajectory = sample_trajectory(Behavior.ACTIVE, max_epoch=10)
        epochs, stakes = trajectory.as_arrays()
        assert epochs.shape == stakes.shape

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            sample_trajectory(Behavior.ACTIVE, max_epoch=-1)
        with pytest.raises(ValueError):
            sample_trajectory(Behavior.ACTIVE, max_epoch=10, step=0)


class TestGenericIntegrator:
    def test_matches_closed_form_for_inactive(self):
        stakes = integrate_stake(lambda t: 4.0 * t, max_epoch=2000)
        assert stakes[2000] == pytest.approx(inactive_stake(2000.0), rel=1e-6)

    def test_matches_closed_form_for_semi_active(self):
        stakes = integrate_stake(lambda t: 1.5 * t, max_epoch=2000)
        assert stakes[2000] == pytest.approx(semi_active_stake(2000.0), rel=1e-6)

    def test_zero_score_keeps_stake_constant(self):
        stakes = integrate_stake(lambda t: 0.0, max_epoch=100)
        assert stakes[-1] == pytest.approx(32.0)

    def test_rejects_negative_horizon(self):
        with pytest.raises(ValueError):
            integrate_stake(lambda t: 0.0, max_epoch=-5)
