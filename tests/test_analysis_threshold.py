"""Tests for repro.analysis.threshold (Section 5.2.3, Figure 7)."""

import pytest

from repro.analysis.threshold import (
    analyse_pair,
    beta_max,
    compute_threshold_region,
    critical_beta0,
    crossing_epoch,
    exceeds_threshold,
)


class TestBetaMax:
    def test_critical_beta0_matches_paper(self):
        assert critical_beta0(0.5) == pytest.approx(0.2421, abs=5e-4)

    def test_exceeds_threshold_around_critical_point(self):
        critical = critical_beta0(0.5)
        assert exceeds_threshold(0.5, critical + 0.005)
        assert not exceeds_threshold(0.5, critical - 0.005)

    def test_beta_max_at_zero_byzantine(self):
        assert beta_max(0.5, 0.0) == 0.0

    def test_beta_max_is_at_least_initial_proportion(self):
        for beta0 in (0.1, 0.2, 0.3):
            assert beta_max(0.5, beta0) >= beta0


class TestCrossingEpoch:
    def test_crossing_epoch_none_when_infeasible(self):
        assert crossing_epoch(0.5, 0.1) is None

    def test_crossing_epoch_zero_when_already_above(self):
        assert crossing_epoch(0.5, 0.34, threshold=1 / 3) == 0.0

    def test_crossing_for_feasible_beta_happens_at_ejection(self):
        # Before the ejection the honest inactive stake, although eroded, still
        # dilutes the Byzantine share; the crossing comes from the ejection jump.
        epoch = crossing_epoch(0.5, 0.3)
        assert epoch == pytest.approx(4685.0)

    def test_crossing_epoch_at_ejection_for_marginal_beta(self):
        critical = critical_beta0(0.5)
        epoch = crossing_epoch(0.5, critical + 1e-4)
        assert epoch == pytest.approx(4685.0)

    def test_analyse_pair_bundle(self):
        crossing = analyse_pair(0.5, 0.3)
        assert crossing.exceeds_threshold
        assert crossing.beta_max > 1 / 3
        assert crossing.crossing_epoch is not None


class TestThresholdRegion:
    def test_region_shapes(self):
        region = compute_threshold_region(
            p0_values=[0.2, 0.5, 0.8], beta0_values=[0.1, 0.25, 0.3]
        )
        assert region.feasible_branch_1.shape == (3, 3)
        assert region.feasible_branch_2.shape == (3, 3)

    def test_feasibility_monotone_in_beta0(self):
        region = compute_threshold_region(
            p0_values=[0.5], beta0_values=[0.1, 0.2, 0.25, 0.3]
        )
        row = region.feasible_branch_1[0]
        # Once feasible, it stays feasible for larger beta0.
        assert list(row) == sorted(row)

    def test_min_beta0_on_both_branches_near_paper_value(self):
        region = compute_threshold_region(
            p0_values=[0.5], beta0_values=[x / 1000 for x in range(200, 330)]
        )
        assert region.min_beta0_both_branches() == pytest.approx(0.2421, abs=2e-3)

    def test_both_branch_feasibility_is_intersection(self):
        region = compute_threshold_region(
            p0_values=[0.3, 0.5, 0.7], beta0_values=[0.25, 0.3]
        )
        both = region.feasible_on_both()
        assert both.shape == region.feasible_branch_1.shape
        assert (both <= region.feasible_branch_1).all()
        assert (both <= region.feasible_branch_2).all()

    def test_uneven_split_favours_one_branch(self):
        # With p0 = 0.7 the branch with only 30% honest-active validators
        # lets the Byzantine proportion grow much more easily.
        assert beta_max(0.3, 0.2) > beta_max(0.7, 0.2)
