"""Tests for the blockchain property checkers (Definitions 4-6 of the paper)."""

import pytest

from repro.spec.block import BeaconBlock
from repro.spec.blocktree import BlockTree
from repro.spec.checkpoint import Checkpoint
from repro.spec.config import SpecConfig
from repro.spec.properties import (
    PropertyReport,
    check_availability,
    check_byzantine_threshold,
    check_liveness,
    check_safety,
    check_simulation_properties,
)
from repro.spec.state import BeaconState
from repro.spec.types import GENESIS_ROOT, Root
from repro.spec.validator import make_registry
from repro.sim.scenarios import build_honest_simulation, build_partitioned_simulation


def cp(epoch: int, label: str) -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label))


def make_state(byzantine_fraction: float = 0.0) -> BeaconState:
    return BeaconState.genesis(
        make_registry(9, byzantine_fraction=byzantine_fraction), SpecConfig.mainnet()
    )


class TestSafetyChecker:
    def test_identical_finalized_chains_are_safe(self):
        a, b = make_state(), make_state()
        a.record_finalization(cp(2, "x"))
        b.record_finalization(cp(2, "x"))
        assert check_safety([a, b]).holds

    def test_same_epoch_conflict_detected(self):
        a, b = make_state(), make_state()
        a.record_finalization(cp(2, "x"))
        b.record_finalization(cp(2, "y"))
        verdict = check_safety([a, b])
        assert not verdict.holds
        assert "epoch 2" in verdict.details

    def test_prefix_ordered_chains_with_tree_are_safe(self):
        tree = BlockTree()
        first = BeaconBlock.create(slot=32, proposer_index=0, parent_root=GENESIS_ROOT)
        second = BeaconBlock.create(slot=64, proposer_index=1, parent_root=first.root)
        tree.add_block(first)
        tree.add_block(second)
        a, b = make_state(), make_state()
        a.record_finalization(Checkpoint(epoch=1, root=first.root))
        b.record_finalization(Checkpoint(epoch=2, root=second.root))
        assert check_safety([a, b], tree=tree).holds

    def test_forked_finalized_chains_with_tree_are_unsafe(self):
        tree = BlockTree()
        branch_a = BeaconBlock.create(slot=32, proposer_index=0, parent_root=GENESIS_ROOT, branch_tag="a")
        branch_b = BeaconBlock.create(slot=64, proposer_index=1, parent_root=GENESIS_ROOT, branch_tag="b")
        tree.add_block(branch_a)
        tree.add_block(branch_b)
        a, b = make_state(), make_state()
        a.record_finalization(Checkpoint(epoch=1, root=branch_a.root))
        b.record_finalization(Checkpoint(epoch=2, root=branch_b.root))
        verdict = check_safety([a, b], tree=tree)
        assert not verdict.holds

    def test_single_state_is_safe(self):
        state = make_state()
        state.record_finalization(cp(5, "x"))
        assert check_safety([state]).holds


class TestLivenessChecker:
    def test_grown_chain_holds(self):
        state = make_state()
        state.record_finalization(cp(3, "x"))
        assert check_liveness([state], min_growth_epochs=2).holds

    def test_stalled_chain_violates(self):
        state = make_state()
        verdict = check_liveness([state], min_growth_epochs=1)
        assert not verdict.holds

    def test_since_epoch_window(self):
        state = make_state()
        state.record_finalization(cp(5, "x"))
        assert check_liveness([state], min_growth_epochs=1, since_epoch=4).holds
        assert not check_liveness([state], min_growth_epochs=1, since_epoch=5).holds


class TestAvailabilityChecker:
    def _tree_up_to(self, slot: int) -> BlockTree:
        tree = BlockTree()
        parent = GENESIS_ROOT
        for s in range(1, slot + 1):
            block = BeaconBlock.create(slot=s, proposer_index=0, parent_root=parent)
            tree.add_block(block)
            parent = block.root
        return tree

    def test_growing_chain_holds(self):
        tree = self._tree_up_to(60)
        assert check_availability([tree], observation_slots=64).holds

    def test_stalled_chain_violates(self):
        tree = self._tree_up_to(5)
        verdict = check_availability([tree], observation_slots=128)
        assert not verdict.holds

    def test_custom_gap(self):
        tree = self._tree_up_to(50)
        assert not check_availability([tree], observation_slots=128, max_gap_slots=10).holds


class TestByzantineThresholdChecker:
    def test_below_threshold_holds(self):
        state = make_state(byzantine_fraction=0.2)
        assert check_byzantine_threshold([state]).holds

    def test_above_threshold_violates(self):
        state = make_state(byzantine_fraction=0.2)
        for validator in state.validators:
            if validator.label == "honest":
                validator.stake = 10.0
        verdict = check_byzantine_threshold([state])
        assert not verdict.holds


class TestSimulationPropertyReport:
    def test_healthy_network_satisfies_everything(self):
        engine = build_honest_simulation(n_validators=10)
        result = engine.run(6)
        report = check_simulation_properties(engine, result, min_finalized_growth=2)
        assert report.all_hold()
        assert report.holds("safety")
        assert report.holds("liveness")
        assert report.holds("availability")
        assert "HOLDS" in report.format_text()

    def test_partition_keeps_availability_but_not_liveness(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        result = engine.run(6)
        report = check_simulation_properties(engine, result, min_finalized_growth=1)
        assert report.holds("availability")
        assert report.holds("safety")  # no conflicting finalization yet
        assert not report.holds("liveness")
        assert not report.all_hold()

    def test_long_partition_with_fast_leak_breaks_safety_but_restores_liveness(self):
        config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)
        engine = build_partitioned_simulation(n_validators=12, p0=0.5, config=config)
        result = engine.run(14)
        report = check_simulation_properties(engine, result, min_finalized_growth=1)
        assert not report.holds("safety")
        assert report.holds("liveness")  # both branches finalized (that is the problem)
        assert report.holds("availability")

    def test_unknown_property_raises(self):
        report = PropertyReport()
        with pytest.raises(KeyError):
            report.holds("consistency")
