"""Differential network-equivalence harness: the default path is unchanged.

The latency layer must be invisible unless asked for.  This suite pins
that claim three ways, for every scenario preset the repo ships (shrunk
to test size) and on both kernel backends:

* ``latency_model=None`` (the default) and ``latency_model=UniformDelay()``
  produce byte-identical trajectories *and* byte-identical transport
  statistics — ``UniformDelay`` is routed through the exact legacy
  scheduling code, not a lookalike;
* the string spelling ``latency_model="uniform"`` resolves to the same
  thing, so the CLI seam cannot drift from the programmatic one;
* the transport of a default build is provably unmodeled (the legacy
  fast path, no per-recipient sampling).

Any change to transport scheduling that alters default timing, delivery
order, or partition accounting fails this file before it can perturb a
single published number.
"""

import dataclasses

import pytest

from repro.network.latency import UniformDelay
from repro.sim.scenarios import SCENARIO_PRESETS, build_preset
from repro.spec.config import SpecConfig

#: Presets predating the latency layer: their kwargs carry no model, so
#: the None / UniformDelay comparison is exactly "pre-PR vs post-PR".
LEGACY_PRESETS = sorted(
    name
    for name, preset in SCENARIO_PRESETS.items()
    if "latency_model" not in preset["kwargs"]
)

#: Shrink overrides: preset semantics at differential-test size.
SMALL = {"n_validators": 16, "config": SpecConfig.minimal()}
EPOCHS = 3


def run_small(name: str, backend: str = "numpy", **overrides):
    engine = build_preset(name, backend=backend, **SMALL, **overrides)
    return engine, engine.run(EPOCHS)


def assert_trajectories_identical(first, second):
    assert first.epochs_run == second.epochs_run
    assert first.snapshots == second.snapshots
    assert set(first.final_states) == set(second.final_states)
    for index in first.final_states:
        assert first.final_states[index] == second.final_states[index], (
            f"final state of validator {index} diverged"
        )
    assert first.slashed_indices == second.slashed_indices
    assert first.view_events == second.view_events
    assert first.peak_view_count == second.peak_view_count


def assert_stats_identical(first, second):
    # Full dataclass equality: sent, delivered, and every delay counter.
    assert dataclasses.asdict(first.transport_stats) == dataclasses.asdict(
        second.transport_stats
    )


class TestDefaultPathUnchanged:
    @pytest.mark.parametrize("name", LEGACY_PRESETS)
    def test_uniform_model_is_byte_identical_to_none(self, name):
        _, baseline = run_small(name)
        _, pinned = run_small(name, latency_model=UniformDelay())
        assert_trajectories_identical(baseline, pinned)
        assert_stats_identical(baseline, pinned)

    @pytest.mark.parametrize("name", LEGACY_PRESETS)
    def test_string_spelling_matches_instance(self, name):
        _, named = run_small(name, latency_model="uniform")
        _, pinned = run_small(name, latency_model=UniformDelay())
        assert_trajectories_identical(named, pinned)
        assert_stats_identical(named, pinned)

    @pytest.mark.parametrize(
        "name", ["mainnet-healthy-10k", "mainnet-partition-10k", "mainnet-balancing-10k"]
    )
    def test_python_backend_agrees(self, name):
        _, baseline = run_small(name, backend="python")
        _, pinned = run_small(name, backend="python", latency_model=UniformDelay())
        assert_trajectories_identical(baseline, pinned)
        assert_stats_identical(baseline, pinned)

    def test_default_transport_is_unmodeled(self):
        engine, _ = run_small("mainnet-partition-10k")
        assert engine.latency_model is None
        assert not engine.network._modeled

    def test_uniform_transport_takes_the_legacy_path(self):
        engine, _ = run_small("mainnet-partition-10k", latency_model=UniformDelay())
        assert engine.latency_model is not None
        assert engine.latency_model.is_uniform
        # is_uniform short-circuits _schedule_modeled entirely.
        assert not engine.network._modeled

    def test_per_node_fallback_also_pinned(self):
        _, baseline = run_small("mainnet-partition-10k", view_sharding=False)
        _, pinned = run_small(
            "mainnet-partition-10k", view_sharding=False, latency_model=UniformDelay()
        )
        assert_trajectories_identical(baseline, pinned)
        assert_stats_identical(baseline, pinned)


class TestDefaultCountersStayLegacy:
    def test_new_counters_are_zero_on_the_default_path(self):
        # No model, no lazy agents, no adversary delays: every new counter
        # must sit at exactly zero — the legacy fields carry the traffic.
        _, result = run_small("mainnet-partition-10k")
        stats = result.transport_stats
        assert stats.adversary_delayed == 0
        assert stats.lazy_delayed == 0
        assert stats.latency_delayed == 0
        assert stats.delivered > 0
        assert stats.delayed_across_partition > 0

    def test_healthy_default_has_no_partition_delays(self):
        _, result = run_small("mainnet-healthy-10k")
        stats = result.transport_stats
        assert stats.delayed_across_partition == 0
        assert stats.latency_delayed == 0
