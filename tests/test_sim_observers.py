"""Tests for the simulation observers."""

import pytest

from repro.sim.observers import (
    FinalityObserver,
    LeakObserver,
    ObserverSet,
    SafetyObserver,
    StakeObserver,
)
from repro.sim.scenarios import build_honest_simulation, build_partitioned_simulation
from repro.spec.config import SpecConfig


def run_with_observers(engine, epochs, *observers):
    engine.observers.extend(observers)
    return engine.run(epochs)


class TestFinalityObserver:
    def test_tracks_progress_on_healthy_network(self):
        observer = FinalityObserver()
        engine = build_honest_simulation(n_validators=10)
        run_with_observers(engine, 6, observer)
        assert len(observer.history) == 6
        assert observer.history[-1]["max_finalized"] >= 4
        # The lag settles at the FFG pipeline depth (2 epochs).
        assert observer.finalization_lag()[-1] <= 2

    def test_stalls_under_partition(self):
        observer = FinalityObserver()
        engine = build_partitioned_simulation(n_validators=10, p0=0.5)
        run_with_observers(engine, 6, observer)
        assert observer.history[-1]["max_finalized"] == 0
        assert observer.rows()


class TestStakeObserver:
    def test_labels_and_proportions(self):
        observer = StakeObserver()
        engine = build_partitioned_simulation(
            n_validators=12, p0=0.5, byzantine_fraction=0.25, byzantine_strategy="alternating"
        )
        run_with_observers(engine, 6, observer)
        row = observer.history[-1]
        assert "stake_honest" in row and "stake_byzantine" in row
        assert len(observer.byzantine_proportion_series()) == 6

    def test_observer_index_fallback(self):
        observer = StakeObserver(observer_index=999)
        engine = build_honest_simulation(n_validators=8)
        run_with_observers(engine, 3, observer)
        assert observer.history  # fell back to the first honest node


class TestSafetyObserver:
    def test_no_violation_on_healthy_network(self):
        observer = SafetyObserver()
        engine = build_honest_simulation(n_validators=8)
        run_with_observers(engine, 5, observer)
        assert not observer.violated
        assert observer.first_violation_epoch is None

    def test_detects_conflicting_finalization(self):
        observer = SafetyObserver()
        config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)
        engine = build_partitioned_simulation(n_validators=12, p0=0.5, config=config)
        result = run_with_observers(engine, 14, observer)
        assert observer.violated
        assert observer.first_violation_epoch == result.first_safety_violation_epoch()


class TestLeakObserver:
    def test_leak_epochs_match_result(self):
        observer = LeakObserver()
        engine = build_partitioned_simulation(n_validators=10, p0=0.5)
        result = run_with_observers(engine, 8, observer)
        assert observer.leak_epochs() == result.leak_epochs()
        assert observer.rows()


class TestObserverSet:
    def test_bundles_observers(self):
        finality = FinalityObserver()
        leak = LeakObserver()
        bundle = ObserverSet()
        bundle.add(finality)
        bundle.add(leak)
        assert len(bundle) == 2
        engine = build_honest_simulation(n_validators=8)
        engine.observers.append(bundle)
        engine.run(4)
        assert len(finality.history) == 4
        assert len(leak.history) == 4
