"""Tests for the content-addressed result cache (:mod:`repro.cache`).

Covers the addressing contract (equal configs hash equal, any changed
ingredient — config, seed, code fingerprint — misses), the robustness
contract (corrupted entries recompute, never crash), and the runner-level
wiring (``--cache-dir`` replays an experiment's rows and report).
"""

import dataclasses
import json
import threading

import numpy as np
import pytest

from repro.cache import (
    ENTRY_VERSION,
    CacheStats,
    ResultCache,
    canonical_json,
    canonical_value,
    code_fingerprint,
    result_key,
)
from repro.experiments import registry
from repro.experiments.runner import build_parser, run_experiments


@dataclasses.dataclass
class DemoConfig:
    n: int
    name: str


class TestCanonicalisation:
    def test_json_native_values_pass_through(self):
        assert canonical_value({"a": 1, "b": [1.5, "x", None, True]}) == {
            "a": 1,
            "b": [1.5, "x", None, True],
        }

    def test_dataclasses_and_tuples_collapse(self):
        assert canonical_value(DemoConfig(3, "x")) == {"n": 3, "name": "x"}
        assert canonical_value((1, 2)) == [1, 2]
        assert canonical_json((1, 2)) == canonical_json([1, 2])

    def test_sets_are_order_deterministic(self):
        assert canonical_value({3, 1, 2}) == canonical_value({2, 3, 1})

    def test_numpy_scalars_collapse(self):
        assert canonical_value(np.int64(4)) == 4
        assert canonical_value(np.float64(0.5)) == 0.5

    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})


class TestKeyTypeCanonicalisation:
    """Mapping keys are type-encoded: distinct key types never collide."""

    FP = "0" * 32

    def test_int_str_and_bool_keys_key_separately(self):
        int_key = result_key("exp", {1: "x"}, fingerprint=self.FP)
        str_key = result_key("exp", {"1": "x"}, fingerprint=self.FP)
        bool_key = result_key("exp", {True: "x"}, fingerprint=self.FP)
        assert len({int_key, str_key, bool_key}) == 3

    def test_distinct_configs_round_trip_distinct_payloads(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint=self.FP)
        cache.store("exp", {1: "x"}, payload="int-config")
        cache.store("exp", {"1": "x"}, payload="str-config")
        cache.store("exp", {True: "x"}, payload="bool-config")
        assert cache.fetch("exp", {1: "x"}) == "int-config"
        assert cache.fetch("exp", {"1": "x"}) == "str-config"
        assert cache.fetch("exp", {True: "x"}) == "bool-config"

    def test_plain_string_keys_pass_through_untagged(self):
        # Ordinary payloads (summary rows, option dicts) canonicalise to
        # themselves — the byte-identity contract of the sweep rows.
        row = {"scenario": "honest", "trial": 3, "safety_violated": False}
        assert canonical_value(row) == row

    def test_tag_lookalike_string_keys_are_escaped(self):
        # A string key that *looks* like a tagged key must not collide
        # with the genuinely-typed key it imitates.
        assert canonical_json({"i:1": "x"}) != canonical_json({1: "x"})
        assert canonical_json({"s:a": "x"}) != canonical_json({"a": "x"})
        # Escaping is stable: equal inputs still give equal forms.
        assert canonical_json({"i:1": "x"}) == canonical_json({"i:1": "x"})

    def test_none_and_float_keys_are_distinct(self):
        forms = {
            canonical_json({key: "x"})
            for key in (None, 0, 0.0, False, "0", "None")
        }
        assert len(forms) == 6

    def test_version_was_bumped_for_the_key_change(self):
        # Entries written before the type-tagged canonicalisation are
        # orphaned by the version bump, never replayed under a new key.
        assert ENTRY_VERSION >= 2


class TestResultKey:
    FP = "0" * 32

    def test_equal_inputs_equal_keys(self):
        a = result_key("exp", {"x": (1, 2)}, seed=3, fingerprint=self.FP)
        b = result_key("exp", {"x": [1, 2]}, seed=3, fingerprint=self.FP)
        assert a == b

    def test_any_changed_ingredient_changes_the_key(self):
        base = result_key("exp", {"x": 1}, seed=3, fingerprint=self.FP)
        assert result_key("other", {"x": 1}, seed=3, fingerprint=self.FP) != base
        assert result_key("exp", {"x": 2}, seed=3, fingerprint=self.FP) != base
        assert result_key("exp", {"x": 1}, seed=4, fingerprint=self.FP) != base
        assert result_key("exp", {"x": 1}, seed=3, fingerprint="f" * 32) != base


class TestCodeFingerprint:
    def test_content_change_changes_fingerprint(self, tmp_path):
        (tmp_path / "mod.py").write_text("A = 1\n")
        before = code_fingerprint(tmp_path)
        (tmp_path / "mod.py").write_text("A = 2\n")
        assert code_fingerprint(tmp_path) != before

    def test_new_file_changes_fingerprint(self, tmp_path):
        (tmp_path / "mod.py").write_text("A = 1\n")
        before = code_fingerprint(tmp_path)
        (tmp_path / "extra.py").write_text("B = 1\n")
        assert code_fingerprint(tmp_path) != before

    def test_default_fingerprint_is_memoized(self):
        assert code_fingerprint() == code_fingerprint()


class TestResultCache:
    def test_store_then_fetch_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        cache.store("exp", {"x": 1}, seed=2, payload={"rows": [(1, 2)]})
        fetched = cache.fetch("exp", {"x": 1}, seed=2)
        assert fetched == {"rows": [[1, 2]]}
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_config_seed_and_fingerprint_changes_miss(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        cache.store("exp", {"x": 1}, seed=2, payload=1)
        assert cache.fetch("exp", {"x": 2}, seed=2) is None
        assert cache.fetch("exp", {"x": 1}, seed=3) is None
        other_code = ResultCache(tmp_path, fingerprint="b" * 32)
        assert other_code.fetch("exp", {"x": 1}, seed=2) is None
        assert cache.stats.misses == 2

    def test_corrupted_entry_recomputes_and_overwrites(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        key = cache.store("exp", {"x": 1}, payload={"v": 1})
        cache.path_for_key(key).write_text("{ truncated", encoding="utf-8")
        payload, hit = cache.fetch_or_compute("exp", {"x": 1}, lambda: {"v": 2})
        assert not hit
        assert payload == {"v": 2}
        assert cache.stats.corrupted == 1
        # The recompute replaced the bad entry: the next lookup hits.
        assert cache.fetch("exp", {"x": 1}) == {"v": 2}

    def test_wrong_version_and_wrong_key_count_as_corrupted(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        key = cache.store("exp", {"x": 1}, payload=1)
        path = cache.path_for_key(key)
        entry = json.loads(path.read_text())
        entry["version"] = ENTRY_VERSION + 1
        path.write_text(json.dumps(entry))
        assert cache.fetch("exp", {"x": 1}) is None
        entry["version"] = ENTRY_VERSION
        entry["key"] = "0" * 32
        path.write_text(json.dumps(entry))
        assert cache.fetch("exp", {"x": 1}) is None
        assert cache.stats.corrupted == 2

    def test_fetch_or_compute_cold_equals_warm(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        payload = {"rows": [{"b": 1, "a": (1, 2)}], "report": "text"}
        cold, cold_hit = cache.fetch_or_compute("exp", {"x": 1}, lambda: payload)
        warm, warm_hit = cache.fetch_or_compute("exp", {"x": 1}, lambda: payload)
        assert not cold_hit and warm_hit
        assert json.dumps(cold) == json.dumps(warm)

    def test_stats_accounting(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.hits, stats.misses = 3, 1
        assert stats.lookups == 4
        assert stats.hit_rate == 0.75


class TestStoredNonePayload:
    """A stored ``None`` is a hit, not a permanent miss/recompute."""

    def test_fetch_or_compute_round_trips_none(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        calls = []

        def compute():
            calls.append(1)
            return None

        cold, cold_hit = cache.fetch_or_compute("exp", {"x": 1}, compute)
        warm, warm_hit = cache.fetch_or_compute("exp", {"x": 1}, compute)
        assert cold is None and warm is None
        assert not cold_hit and warm_hit
        # Computed exactly once: the second lookup was served from disk.
        assert calls == [1]
        assert cache.stats.stores == 1

    def test_stored_none_stats_are_consistent(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        cache.fetch_or_compute("exp", {"x": 1}, lambda: None)
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (0, 1, 1)
        cache.fetch_or_compute("exp", {"x": 1}, lambda: None)
        # The hit did not also count a miss or trigger a store.
        assert (cache.stats.hits, cache.stats.misses, cache.stats.stores) == (1, 1, 1)

    def test_contains_distinguishes_stored_none_from_absence(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        assert not cache.contains("exp", {"x": 1})
        cache.store("exp", {"x": 1}, payload=None)
        stats_before = (cache.stats.hits, cache.stats.misses)
        assert cache.contains("exp", {"x": 1})
        # contains() never skews the hit/miss accounting.
        assert (cache.stats.hits, cache.stats.misses) == stats_before


class TestTmpFileHygiene:
    """Atomic writes: unique tmp names, no litter after failures."""

    def test_failed_write_leaves_no_tmp_litter(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        key = cache.key_for("exp", {"x": 1})
        # A directory squatting on the entry path makes os.replace fail
        # after the tmp file was already written.
        cache.path_for_key(key).mkdir()
        with pytest.raises(OSError):
            cache.store("exp", {"x": 1}, payload=1)
        assert not list(tmp_path.glob("*.tmp*"))
        assert cache.stats.stores == 0

    def test_concurrent_same_key_stores_never_collide(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint="a" * 32)
        errors = []

        def hammer(worker_id):
            try:
                for _ in range(20):
                    cache.store("exp", {"x": 1}, payload={"worker": worker_id})
            except Exception as exc:  # noqa: BLE001 — collected for assertion
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert not list(tmp_path.glob("*.tmp*"))
        # Last writer wins with a fully-valid entry either way.
        payload = cache.fetch("exp", {"x": 1})
        assert payload in [{"worker": i} for i in range(4)]

    def test_interleaved_writers_each_produce_valid_entries(self, tmp_path):
        # Two caches (as two "processes") writing the same key: whoever
        # lands last, the entry must validate on read.
        first = ResultCache(tmp_path, fingerprint="a" * 32)
        second = ResultCache(tmp_path, fingerprint="a" * 32)
        first.store("exp", {"x": 1}, payload="first")
        second.store("exp", {"x": 1}, payload="second")
        assert first.fetch("exp", {"x": 1}) == "second"
        assert first.stats.corrupted == 0


class TestRunnerCacheWiring:
    def test_parser_accepts_cache_dir(self, tmp_path):
        args = build_parser().parse_args(["fig6", "--cache-dir", str(tmp_path)])
        assert args.cache_dir == tmp_path
        assert build_parser().parse_args(["fig6"]).cache_dir is None

    def test_repeated_run_is_served_from_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        cold = run_experiments(["safety-bound"], cache=cache)
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        warm = run_experiments(["safety-bound"], cache=cache)
        assert cache.stats.hits == 1
        assert cold == warm

    def test_option_change_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_experiments(["balancing-duration"], cache=cache, trials=1, jobs=1)
        run_experiments(["balancing-duration"], cache=cache, trials=2, jobs=1)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_jobs_is_excluded_from_the_key(self, tmp_path):
        # Results are jobs-invariant by contract, so runs at different
        # parallelism levels must share one cache entry.
        cache = ResultCache(tmp_path)
        serial = run_experiments(["balancing-duration"], cache=cache, trials=1, jobs=1)
        parallel = run_experiments(["balancing-duration"], cache=cache, trials=1, jobs=2)
        assert cache.stats.hits == 1
        assert serial == parallel

    def test_cache_dir_path_constructs_cache(self, tmp_path):
        first = run_experiments(["safety-bound"], cache_dir=tmp_path)
        second = run_experiments(["safety-bound"], cache_dir=tmp_path)
        assert first == second
        assert list(tmp_path.glob("*.json"))

    def test_every_experiment_is_cacheable(self):
        for experiment_id in registry.list_ids():
            assert registry.get(experiment_id).cacheable
