"""Tests for repro.core.ffg and the ``finality_epoch_update`` kernel pair.

The backend-equivalence suite proves the ``"numpy"`` and ``"python"``
finality kernels bit-identical across randomized vote patterns —
conflicting targets, non-justified sources, double votes, zero-stake
voters, empty epochs — both per call (link supports compared as exact
floats) and through multi-epoch drives with evolving justified state.
"""

import numpy as np
import pytest

from repro.core.backend import FinalityEvent, FinalityRules, get_backend
from repro.core.ffg import (
    FinalityTracker,
    FlatVotePool,
    finality_from_ratios,
    justified_at,
)

RULES = FinalityRules(supermajority_fraction=2.0 / 3.0)
BACKENDS = ["numpy", "python"]


# ----------------------------------------------------------------------
# FlatVotePool
# ----------------------------------------------------------------------
class TestFlatVotePool:
    def test_first_vote_counts_second_is_rejected(self):
        pool = FlatVotePool()
        assert pool.add_vote(3, 0, "genesis", 1, "a")
        assert not pool.add_vote(3, 0, "genesis", 1, "b")  # double vote
        assert pool.vote_count(1) == 1
        assert pool.has_vote(1, 3)
        assert not pool.has_vote(1, 4)
        assert pool.link_count(1, 0, "genesis", "a") == 1
        assert pool.link_count(1, 0, "genesis", "b") == 0  # never tallied

    def test_same_validator_different_target_epochs_both_count(self):
        pool = FlatVotePool()
        assert pool.add_vote(0, 0, "g", 1, "a")
        assert pool.add_vote(0, 1, "a", 2, "b")
        assert pool.vote_count(1) == 1
        assert pool.vote_count(2) == 1

    def test_growth_beyond_initial_capacity(self):
        pool = FlatVotePool(initial_capacity=2)
        for validator in range(11):
            assert pool.add_vote(validator, 0, "g", 1, "a")
        assert pool.vote_count(1) == 11
        validators, source_epochs, source_roots, target_roots = pool.vote_arrays(1)
        assert validators.tolist() == list(range(11))
        assert set(source_epochs.tolist()) == {0}
        assert len({int(i) for i in source_roots.tolist()}) == 1
        assert len({int(i) for i in target_roots.tolist()}) == 1

    def test_incremental_stake_tallies_match_recomputation(self):
        rng = np.random.default_rng(5)
        stakes = rng.uniform(0.0, 32.0, 40)
        pool = FlatVotePool(stakes=stakes)
        votes = []
        for validator in range(40):
            target = "a" if rng.random() < 0.6 else "b"
            source = ("g", 0) if rng.random() < 0.8 else ("x", 1)
            pool.add_vote(validator, source[1], source[0], 2, target)
            votes.append((validator, source, target))
        for source_root, source_epoch in (("g", 0), ("x", 1)):
            for target in ("a", "b"):
                expected = sum(
                    stakes[v]
                    for v, source, tgt in votes
                    if source == (source_root, source_epoch) and tgt == target
                )
                got = pool.link_stake(2, source_epoch, source_root, target)
                assert got == pytest.approx(expected)
                assert pool.link_count(2, source_epoch, source_root, target) == sum(
                    1
                    for _, source, tgt in votes
                    if source == (source_root, source_epoch) and tgt == target
                )

    def test_link_stake_requires_stakes(self):
        pool = FlatVotePool()
        pool.add_vote(0, 0, "g", 1, "a")
        with pytest.raises(ValueError):
            pool.link_stake(1, 0, "g", "a")

    def test_clear_before_prunes_strictly_older_epochs(self):
        pool = FlatVotePool()
        for epoch in (1, 2, 3):
            pool.add_vote(0, 0, "g", epoch, f"r{epoch}")
        pool.clear_before(2)
        assert pool.vote_count(1) == 0
        assert pool.vote_arrays(1) is None
        assert pool.vote_count(2) == 1
        assert pool.vote_count(3) == 1
        assert sorted(pool.epochs()) == [2, 3]

    def test_root_interning_is_stable_and_ranks_follow_sort_order(self):
        pool = FlatVotePool()
        id_b = pool.intern_root("b")
        id_a = pool.intern_root("a")
        id_c = pool.intern_root("c")
        assert pool.intern_root("b") == id_b  # stable
        assert pool.lookup_root("a") == id_a
        assert pool.lookup_root("missing") is None
        assert pool.root_of(id_c) == "c"
        ranks = pool.root_ranks()
        assert ranks[id_a] < ranks[id_b] < ranks[id_c]
        # Interning another root invalidates and extends the cache.
        id_0 = pool.intern_root("0")
        assert pool.root_ranks()[id_0] == 0

    def test_target_root_ids_come_from_link_tallies(self):
        pool = FlatVotePool()
        pool.add_vote(0, 0, "g", 1, "a")
        pool.add_vote(1, 0, "g", 1, "b")
        pool.add_vote(2, 0, "wrong", 1, "a")
        targets = {pool.root_of(root_id) for root_id in pool.target_root_ids(1)}
        assert targets == {"a", "b"}
        assert len(list(pool.link_keys(1))) == 3
        assert pool.total_votes() == 3


# ----------------------------------------------------------------------
# Kernel equivalence: numpy vs python, bit for bit
# ----------------------------------------------------------------------
def random_scenario(rng, n_validators=48, force_big_roots=False):
    """One randomized finality_epoch_update input covering the edge cases."""
    stakes = rng.uniform(0.0, 33.0, n_validators)
    stakes[rng.random(n_validators) < 0.15] = 0.0  # zero-stake voters
    eligible = rng.random(n_validators) < 0.85
    epoch = int(rng.integers(1, 6))
    n_roots = 6
    justified_roots = {0: 0}
    for justified_epoch in range(1, epoch):
        if rng.random() < 0.7:
            justified_roots[justified_epoch] = int(rng.integers(0, n_roots))
    n_votes = int(rng.integers(0, n_validators + 1))
    voters = rng.choice(n_validators, size=n_votes, replace=False).astype(np.int64)
    source_epochs = rng.integers(0, epoch + 1, n_votes).astype(np.int64)
    source_roots = rng.integers(0, n_roots, n_votes).astype(np.int64)
    target_roots = rng.integers(0, 4, n_votes).astype(np.int64)
    if n_votes and rng.random() < 0.7:
        # Concentrate most votes on one link from a justified source so
        # supermajorities actually form: scattered votes alone never
        # clear the 2/3 threshold.
        canonical_source = max(e for e in justified_roots if e < epoch)
        canonical = rng.random(n_votes) < 0.9
        source_epochs[canonical] = canonical_source
        source_roots[canonical] = justified_roots[canonical_source]
        target_roots[canonical] = 0
    if force_big_roots and n_votes:
        # Root ids too sparse to pack into one int64 sort key: forces the
        # numpy backend onto its general lexsort path.
        target_roots = target_roots * (2 ** 40) + 2 ** 40
    if force_big_roots or rng.random() < 0.5:
        root_rank = None
    else:
        root_rank = np.asarray(rng.permutation(n_roots + 1), dtype=np.int64)
    return dict(
        vote_validators=voters,
        vote_source_epochs=source_epochs,
        vote_source_roots=source_roots,
        vote_target_roots=target_roots,
        stakes=stakes,
        eligible=eligible,
        rules=RULES,
        epoch=epoch,
        total_stake=float(np.sum(np.where(eligible, stakes, 0.0))),
        justified_roots=justified_roots,
        finalized_epoch=0,
        root_rank=root_rank,
    )


class TestKernelEquivalence:
    def test_randomized_vote_patterns_bit_identical(self):
        rng = np.random.default_rng(11)
        numpy_kernel = get_backend("numpy")
        python_kernel = get_backend("python")
        justified_count = 0
        for _ in range(60):
            scenario = random_scenario(rng)
            update_np = numpy_kernel.finality_epoch_update(**scenario)
            update_py = python_kernel.finality_epoch_update(**scenario)
            # Exact float equality: the supports must be bit-identical.
            assert update_np.link_supports == update_py.link_supports
            assert update_np.events == update_py.events
            justified_count += len(update_np.events)
        assert justified_count > 0  # the patterns actually justify sometimes

    def test_lexsort_fallback_matches_loop_reference(self):
        rng = np.random.default_rng(13)
        numpy_kernel = get_backend("numpy")
        python_kernel = get_backend("python")
        for _ in range(20):
            scenario = random_scenario(rng, force_big_roots=True)
            update_np = numpy_kernel.finality_epoch_update(**scenario)
            update_py = python_kernel.finality_epoch_update(**scenario)
            assert update_np.link_supports == update_py.link_supports
            assert update_np.events == update_py.events

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_epoch_produces_no_events(self, backend):
        kernel = get_backend(backend)
        empty = np.empty(0, dtype=np.int64)
        update = kernel.finality_epoch_update(
            empty,
            empty,
            empty,
            empty,
            np.ones(8),
            np.ones(8, dtype=bool),
            RULES,
            epoch=3,
            total_stake=8.0,
            justified_roots={0: 0},
            finalized_epoch=0,
        )
        assert update.events == []
        assert update.link_supports == {}
        assert update.justified == []
        assert update.finalized == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_supermajority_is_strict_and_sources_must_be_justified(self, backend):
        kernel = get_backend(backend)
        stakes = np.ones(9)
        eligible = np.ones(9, dtype=bool)
        # Exactly 2/3 of the stake: not a supermajority.
        update = kernel.finality_epoch_update(
            np.arange(6),
            np.zeros(6, dtype=np.int64),
            np.zeros(6, dtype=np.int64),
            np.full(6, 1, dtype=np.int64),
            stakes,
            eligible,
            RULES,
            epoch=1,
            total_stake=9.0,
            justified_roots={0: 0},
            finalized_epoch=0,
        )
        assert update.events == []
        assert update.link_supports[(0, 0, 1)] == 6.0
        # 7/9 from an *unjustified* source: still nothing.
        update = kernel.finality_epoch_update(
            np.arange(7),
            np.zeros(7, dtype=np.int64),
            np.full(7, 2, dtype=np.int64),  # root 2 is not the justified root
            np.full(7, 1, dtype=np.int64),
            stakes,
            eligible,
            RULES,
            epoch=1,
            total_stake=9.0,
            justified_roots={0: 0},
            finalized_epoch=0,
        )
        assert update.events == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_consecutive_justification_finalizes_source(self, backend):
        kernel = get_backend(backend)
        stakes = np.ones(9)
        eligible = np.ones(9, dtype=bool)
        update = kernel.finality_epoch_update(
            np.arange(7),
            np.full(7, 1, dtype=np.int64),
            np.full(7, 3, dtype=np.int64),
            np.full(7, 4, dtype=np.int64),
            stakes,
            eligible,
            RULES,
            epoch=2,
            total_stake=9.0,
            justified_roots={0: 0, 1: 3},
            finalized_epoch=0,
        )
        assert update.events == [
            FinalityEvent(
                target_epoch=2,
                target_root=4,
                source_epoch=1,
                source_root=3,
                finalizes_source=True,
            )
        ]
        assert update.justified == [(2, 4)]
        assert update.finalized == [(1, 3)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_justification_cascades_within_one_call(self, backend):
        """A target justified mid-loop can source a later target of the call.

        Root ranks order target 1 before target 2; seven validators justify
        target 1 from genesis, and seven others justify target 2 from the
        *same-epoch* checkpoint 1 — legal only because the first event is
        already visible to the second decision.
        """
        kernel = get_backend(backend)
        stakes = np.ones(21)
        eligible = np.ones(21, dtype=bool)
        update = kernel.finality_epoch_update(
            np.arange(14),
            np.array([0] * 7 + [1] * 7, dtype=np.int64),
            np.array([0] * 7 + [1] * 7, dtype=np.int64),
            np.array([1] * 7 + [2] * 7, dtype=np.int64),
            stakes,
            eligible,
            RULES,
            epoch=1,
            total_stake=9.0,  # 7/9 support clears the threshold for both
            justified_roots={0: 0},
            finalized_epoch=0,
        )
        assert [event.target_root for event in update.events] == [1, 2]
        # The second justification's source is epoch 1 itself — no
        # consecutive-epoch finalization (source epoch == target epoch).
        assert update.finalized == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_total_stake_never_justifies(self, backend):
        kernel = get_backend(backend)
        update = kernel.finality_epoch_update(
            np.arange(4),
            np.zeros(4, dtype=np.int64),
            np.zeros(4, dtype=np.int64),
            np.ones(4, dtype=np.int64),
            np.zeros(4),
            np.zeros(4, dtype=bool),
            RULES,
            epoch=1,
            total_stake=0.0,
            justified_roots={0: 0},
            finalized_epoch=0,
        )
        assert update.events == []

    def test_multi_epoch_drive_trajectories_identical(self):
        """Both kernels agree through evolving justified state over epochs."""
        rng = np.random.default_rng(23)
        n_validators = 64
        stakes = rng.uniform(1.0, 32.0, n_validators)
        eligible = rng.random(n_validators) < 0.9
        total = float(np.sum(np.where(eligible, stakes, 0.0)))
        epochs = []
        last_tip = (0, 0)  # (epoch, root) expected justified tip
        for epoch in range(1, 16):
            if epoch % 6 == 0:
                continue  # drought
            n_votes = int(rng.integers((9 * n_validators) // 10, n_validators + 1))
            voters = rng.choice(n_validators, size=n_votes, replace=False)
            pick = rng.random(n_votes)
            target_roots = np.where(pick < 0.9, 2 * epoch, 2 * epoch + 1)
            source_epochs = np.where(pick < 0.85, last_tip[0], 0)
            source_roots = np.where(pick < 0.85, last_tip[1], 0)
            last_tip = (epoch, 2 * epoch)
            epochs.append(
                (
                    epoch,
                    voters.astype(np.int64),
                    source_epochs.astype(np.int64),
                    source_roots.astype(np.int64),
                    target_roots.astype(np.int64),
                )
            )
        trajectories = {}
        for backend in BACKENDS:
            kernel = get_backend(backend)
            justified_roots = {0: 0}
            finalized_epoch = 0
            trajectory = []
            for epoch, voters, source_epochs, source_roots, target_roots in epochs:
                update = kernel.finality_epoch_update(
                    voters,
                    source_epochs,
                    source_roots,
                    target_roots,
                    stakes,
                    eligible,
                    RULES,
                    epoch=epoch,
                    total_stake=total,
                    justified_roots=justified_roots,
                    finalized_epoch=finalized_epoch,
                )
                for event in update.events:
                    justified_roots[event.target_epoch] = event.target_root
                    if event.finalizes_source:
                        finalized_epoch = event.source_epoch
                trajectory.append(
                    (epoch, update.events, sorted(update.link_supports.items()))
                )
            trajectories[backend] = (trajectory, justified_roots, finalized_epoch)
        assert trajectories["numpy"] == trajectories["python"]
        _, justified_roots, finalized_epoch = trajectories["numpy"]
        assert len(justified_roots) > 5
        assert finalized_epoch > 0


# ----------------------------------------------------------------------
# Ratio-threshold finality: streaming tracker vs vectorized kernel
# ----------------------------------------------------------------------
class TestRatioFinality:
    def test_justified_at_matches_tracker_threshold(self):
        assert justified_at(2.0 / 3.0, 2.0 / 3.0)  # inclusive, unlike links
        assert not justified_at(0.5, 2.0 / 3.0)

    def test_tracker_and_vectorized_agree_on_random_trajectories(self):
        rng = np.random.default_rng(31)
        supermajority = 2.0 / 3.0
        ratios = rng.uniform(0.3, 1.0, size=(50, 30))
        result = finality_from_ratios(ratios, supermajority)
        for trial in range(ratios.shape[0]):
            tracker = FinalityTracker(supermajority=supermajority)
            for epoch in range(ratios.shape[1]):
                tracker.observe(epoch, float(ratios[trial, epoch]))
            expected_threshold = (
                -1 if tracker.threshold_epoch is None else tracker.threshold_epoch
            )
            expected_finalization = (
                -1 if tracker.finalization_epoch is None else tracker.finalization_epoch
            )
            assert result.threshold_epoch[trial] == expected_threshold
            assert result.finalization_epoch[trial] == expected_finalization
            assert result.justified[trial].tolist() == [
                ratio >= supermajority for ratio in ratios[trial]
            ]

    def test_never_justified_reports_minus_one(self):
        result = finality_from_ratios(np.full((3, 10), 0.1), 2.0 / 3.0)
        assert result.threshold_epoch.tolist() == [-1, -1, -1]
        assert result.finalization_epoch.tolist() == [-1, -1, -1]

    def test_single_justified_epoch_does_not_finalize(self):
        result = finality_from_ratios([0.1, 0.9, 0.1, 0.9, 0.9], 2.0 / 3.0)
        assert result.threshold_epoch == 1
        assert result.finalization_epoch == 4

    def test_empty_trajectory(self):
        result = finality_from_ratios(np.empty((4, 0)), 2.0 / 3.0)
        assert result.threshold_epoch.tolist() == [-1] * 4
        assert result.finalization_epoch.tolist() == [-1] * 4
