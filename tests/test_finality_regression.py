"""Regression: justification/finalization is byte-identical pre/post the port.

``spec/finality.py`` used to accumulate votes in per-validator dicts and
re-scan them once per target inside ``process_justification``; it now
adapts the flat-array ``finality_epoch_update`` kernels of
:mod:`repro.core.backend`.  Mirroring
``tests/test_epoch_processing_regression.py``, this suite pins the port:

* the pre-refactor dict-based pool and per-checkpoint loop (embedded
  below, verbatim) must produce *byte-identical* justification and
  finalization trajectories on seeded multi-epoch simulations,
* the ``"numpy"`` and ``"python"`` backends must agree byte-for-byte
  through multi-epoch ``process_epoch`` runs — where justification
  outcomes feed back into the leak flag and hence into every stake, so a
  single diverging decision would corrupt the whole trajectory.
"""

from collections import defaultdict

import numpy as np
import pytest

from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.finality import FFGVotePool, JustificationResult, process_justification
from repro.spec.inactivity import process_inactivity_epoch
from repro.spec.rewards import process_attestation_rewards
from repro.spec.slashing import apply_slashing
from repro.spec.state import BeaconState
from repro.spec.types import Root
from repro.spec.validator import make_registry


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"c{epoch}"))


# ----------------------------------------------------------------------
# The pre-refactor implementation, verbatim: per-validator vote dicts,
# one full rescan (and one whole-dict copy) per target checkpoint.
# ----------------------------------------------------------------------
class LegacyFFGVotePool:
    def __init__(self):
        self._votes = defaultdict(dict)

    def add_vote(self, validator_index, vote):
        per_validator = self._votes[vote.target.epoch]
        if validator_index in per_validator:
            return False
        per_validator[validator_index] = vote
        return True

    def votes_for_target_epoch(self, epoch):
        return dict(self._votes.get(epoch, {}))

    def voters_for_link(self, source, target):
        return {
            index
            for index, vote in self._votes.get(target.epoch, {}).items()
            if vote.source == source and vote.target == target
        }

    def targets_at_epoch(self, epoch):
        return {vote.target for vote in self._votes.get(epoch, {}).values()}

    def clear_before(self, epoch):
        for target_epoch in [e for e in self._votes if e < epoch]:
            del self._votes[target_epoch]


def legacy_link_support(state, pool, source, target, epoch=None):
    voters = pool.voters_for_link(source, target)
    return state.stake_of(sorted(voters), epoch=epoch)


def legacy_is_supermajority(state, stake, epoch=None):
    total = state.total_active_stake(epoch)
    if total <= 0:
        return False
    return stake / total > state.config.supermajority_fraction


def legacy_process_justification(state, pool, epoch):
    result = JustificationResult()
    for target in sorted(pool.targets_at_epoch(epoch)):
        if state.is_justified(target.epoch) and state.justified_checkpoints.get(
            target.epoch
        ) == target:
            continue
        votes = pool.votes_for_target_epoch(epoch)
        sources = {vote.source for vote in votes.values() if vote.target == target}
        for source in sorted(sources):
            if not state.is_justified(source.epoch):
                continue
            if state.justified_checkpoints.get(source.epoch) != source:
                continue
            support = legacy_link_support(state, pool, source, target, epoch=epoch)
            if not legacy_is_supermajority(state, support, epoch=epoch):
                continue
            state.record_justification(target)
            result.newly_justified.append(target)
            if (
                target.epoch == source.epoch + 1
                and source.epoch > state.finalized_checkpoint.epoch
            ):
                state.record_finalization(source)
                result.newly_finalized.append(source)
            break
    return result


# ----------------------------------------------------------------------
# Seeded vote streams exercising every decision branch
# ----------------------------------------------------------------------
def make_state(seed, n_validators=32):
    rng = np.random.default_rng(seed)
    state = BeaconState.genesis(make_registry(n_validators), SpecConfig.minimal())
    for validator in state.validators:
        validator.stake = float(rng.uniform(0.0, 33.0))
    state.validators[0].stake = 0.0  # zero-stake voter edge case
    state.validators[1].exit(3)  # exits mid-run: eligibility filtering
    state.validators[2].exit(0)
    return state


def make_vote_stream(seed, n_validators=32, epochs=40):
    """Per-epoch ``(validator, FFGVote)`` lists, a pure function of the seed.

    Conflicting targets, stale and never-justified sources, double votes
    and vote droughts are all represented; the canonical branch follows a
    deterministic tip so justification and finalization genuinely happen.
    """
    rng = np.random.default_rng(seed + 1000)
    stream = []
    tip = GENESIS_CHECKPOINT
    for epoch in range(1, epochs + 1):
        votes = []
        if epoch % 9 in (4, 5):  # drought: finality gap, leak pressure
            stream.append((epoch, votes))
            continue
        canonical = cp(epoch)
        for validator in range(n_validators):
            roll = rng.random()
            if roll < 0.8:
                vote = FFGVote(source=tip, target=canonical)
            elif roll < 0.88:
                vote = FFGVote(source=tip, target=cp(epoch, f"fork{epoch}"))
            elif roll < 0.94:
                vote = FFGVote(source=cp(max(0, epoch - 2), "bogus"), target=canonical)
            else:
                continue  # abstains
            votes.append((validator, vote))
            if rng.random() < 0.1:  # attempted double vote, must not count
                votes.append(
                    (validator, FFGVote(source=tip, target=cp(epoch, f"dv{epoch}")))
                )
        stream.append((epoch, votes))
        tip = canonical
    return stream


def finality_snapshot(state):
    """Every piece of justification/finalization bookkeeping, exact."""
    return (
        state.current_justified_checkpoint,
        state.previous_justified_checkpoint,
        state.finalized_checkpoint,
        sorted(state.justified_epochs),
        sorted(state.justified_checkpoints.items()),
        sorted(state.finalized_checkpoints.items()),
        state.last_finalized_epoch,
    )


def drive_justification(process, pool, state, stream):
    trajectory = []
    for epoch, votes in stream:
        state.current_epoch = epoch
        for validator, vote in votes:
            pool.add_vote(validator, vote)
        result = process(state, pool, epoch)
        trajectory.append(
            (
                epoch,
                list(result.newly_justified),
                list(result.newly_finalized),
                finality_snapshot(state),
            )
        )
    return trajectory


class TestJustificationTrajectoryRegression:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bit_identical_with_legacy_loop(self, backend, seed):
        stream = make_vote_stream(seed)
        legacy = drive_justification(
            legacy_process_justification, LegacyFFGVotePool(), make_state(seed), stream
        )
        ported = drive_justification(
            lambda state, pool, epoch: process_justification(
                state, pool, epoch, backend=backend
            ),
            FFGVotePool(),
            make_state(seed),
            stream,
        )
        assert ported == legacy

    def test_trajectory_exercises_finality(self):
        stream = make_vote_stream(0)
        trajectory = drive_justification(
            legacy_process_justification, LegacyFFGVotePool(), make_state(0), stream
        )
        assert any(justified for _, justified, _, _ in trajectory)
        assert any(finalized for _, _, finalized, _ in trajectory)
        # The droughts leave some epochs unjustified.
        final_justified = trajectory[-1][3][4]
        assert len(final_justified) < len(stream) + 1

    def test_pool_views_match_legacy_pool(self):
        stream = make_vote_stream(3)
        legacy_pool = LegacyFFGVotePool()
        ported_pool = FFGVotePool()
        for epoch, votes in stream:
            for validator, vote in votes:
                assert ported_pool.add_vote(validator, vote) == legacy_pool.add_vote(
                    validator, vote
                )
            assert ported_pool.votes_for_target_epoch(
                epoch
            ) == legacy_pool.votes_for_target_epoch(epoch)
            assert ported_pool.targets_at_epoch(epoch) == legacy_pool.targets_at_epoch(
                epoch
            )
            for target in ported_pool.targets_at_epoch(epoch):
                source = next(
                    vote.source
                    for _, vote in votes
                    if vote.target == target
                )
                assert ported_pool.voters_for_link(
                    source, target
                ) == legacy_pool.voters_for_link(source, target)


# ----------------------------------------------------------------------
# Whole-pipeline regression: justification decisions feed the leak flag,
# so one diverging bit would skew every stake downstream.
# ----------------------------------------------------------------------
def legacy_process_epoch(state, pool, active_indices, epoch, backend="numpy"):
    """``process_epoch`` with the pre-port justification stage swapped in."""
    state.current_epoch = epoch
    active_set = set(active_indices)
    in_leak = state.is_in_inactivity_leak()
    legacy_process_justification(state, pool, epoch)
    process_attestation_rewards(state, active_set, in_leak=in_leak, backend=backend)
    process_inactivity_epoch(state, active_set, in_leak=in_leak, backend=backend)
    apply_slashing(state, (), backend=backend)


def registry_snapshot(state):
    return [
        (v.index, v.stake, v.inactivity_score, v.slashed, v.exit_epoch)
        for v in state.validators
    ]


def drive_process_epoch(state, pool, stream, seed, process):
    rng = np.random.default_rng(seed + 5000)
    snapshots = []
    for epoch, votes in stream:
        for validator, vote in votes:
            pool.add_vote(validator, vote)
        active = set(int(i) for i in np.flatnonzero(rng.random(len(state.validators)) < 0.6))
        process(state, pool, active, epoch)
        snapshots.append(
            (
                epoch,
                registry_snapshot(state),
                finality_snapshot(state),
                state.is_in_inactivity_leak(),
            )
        )
    return snapshots


class TestProcessEpochRegression:
    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_full_pipeline_bit_identical_with_legacy_justification(self, backend):
        from repro.spec.state_transition import process_epoch

        seed = 7
        stream = make_vote_stream(seed, epochs=35)
        legacy_snapshots = drive_process_epoch(
            make_state(seed),
            LegacyFFGVotePool(),
            stream,
            seed,
            lambda state, pool, active, epoch: legacy_process_epoch(
                state, pool, active, epoch, backend="numpy"
            ),
        )
        ported_snapshots = drive_process_epoch(
            make_state(seed),
            FFGVotePool(),
            stream,
            seed,
            lambda state, pool, active, epoch: process_epoch(
                state, pool, active_indices=active, epoch=epoch, backend=backend
            ),
        )
        assert ported_snapshots == legacy_snapshots

    def test_pipeline_exercises_leak_and_finality(self):
        seed = 7
        stream = make_vote_stream(seed, epochs=35)
        snapshots = drive_process_epoch(
            make_state(seed),
            LegacyFFGVotePool(),
            stream,
            seed,
            lambda state, pool, active, epoch: legacy_process_epoch(
                state, pool, active, epoch
            ),
        )
        assert any(in_leak for _, _, _, in_leak in snapshots)
        assert snapshots[-1][2][6] > 0  # something finalized
