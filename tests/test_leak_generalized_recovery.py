"""Tests for the generalized penalty mechanism and the post-leak recovery model."""

import math

import pytest

from repro import constants
from repro.analysis.finalization_time import threshold_epoch_honest_only
from repro.leak.generalized import PenaltyMechanism
from repro.leak.recovery import (
    epochs_to_clear_score,
    leak_exit_score,
    recovery_tail_epochs,
    simulate_recovery,
)
from repro.leak.stake import Behavior, continuous_ejection_epoch, inactive_stake, semi_active_stake
from repro.spec.config import SpecConfig


class TestPenaltyMechanismEthereum:
    def test_ethereum_preset_matches_paper_formulas(self):
        mechanism = PenaltyMechanism.ethereum()
        for t in (500.0, 2000.0, 4000.0):
            assert mechanism.inactive_stake(t) == pytest.approx(inactive_stake(t))
            assert mechanism.semi_active_stake(t) == pytest.approx(semi_active_stake(t))

    def test_ejection_epochs_match_continuous_model(self):
        mechanism = PenaltyMechanism.ethereum()
        assert mechanism.ejection_epoch_inactive() == pytest.approx(
            continuous_ejection_epoch(Behavior.INACTIVE)
        )
        assert mechanism.ejection_epoch_semi_active() == pytest.approx(
            continuous_ejection_epoch(Behavior.SEMI_ACTIVE)
        )

    def test_honest_threshold_epoch_matches_equation6_below_cap(self):
        mechanism = PenaltyMechanism.ethereum()
        # Below the ejection cap the two formulas coincide (the library's
        # Equation 6 uses the paper's 4685 cap; p0=0.6 crosses well before).
        assert mechanism.honest_threshold_epoch(0.6) == pytest.approx(
            threshold_epoch_honest_only(0.6), rel=1e-9
        )

    def test_safety_bound_shape(self):
        mechanism = PenaltyMechanism.ethereum()
        assert mechanism.safety_bound_epochs(0.5) == pytest.approx(
            mechanism.ejection_epoch_inactive() + 1.0
        )

    def test_critical_beta0_close_to_paper(self):
        mechanism = PenaltyMechanism.ethereum()
        # Using the derived ejection epoch (4661) instead of the paper's 4685
        # moves the critical proportion by well under 1%.
        assert mechanism.critical_beta0(0.5) == pytest.approx(0.2421, abs=2e-3)

    def test_max_byzantine_proportion_monotone(self):
        mechanism = PenaltyMechanism.ethereum()
        values = [mechanism.max_byzantine_proportion(0.5, b) for b in (0.1, 0.2, 0.3)]
        assert values == sorted(values)


class TestPenaltyMechanismVariants:
    def test_faster_leak_shortens_every_timescale(self):
        ethereum = PenaltyMechanism.ethereum()
        aggressive = PenaltyMechanism.aggressive()
        assert aggressive.ejection_epoch_inactive() < ethereum.ejection_epoch_inactive()
        assert aggressive.safety_bound_epochs(0.5) < ethereum.safety_bound_epochs(0.5)
        assert aggressive.honest_threshold_epoch(0.6) < ethereum.honest_threshold_epoch(0.6)

    def test_quotient_scaling_is_sqrt(self):
        # The ejection epoch scales as sqrt(quotient): four times the quotient
        # doubles the time scale.
        base = PenaltyMechanism.with_quotient(float(2 ** 24))
        slower = PenaltyMechanism.with_quotient(float(2 ** 26))
        assert slower.ejection_epoch_inactive() == pytest.approx(
            2.0 * base.ejection_epoch_inactive()
        )

    def test_critical_beta0_insensitive_to_quotient(self):
        # The critical proportion depends on the *ratio* of semi-active to
        # inactive decay at the ejection time, which is quotient-independent.
        fast = PenaltyMechanism.with_quotient(float(2 ** 20)).critical_beta0(0.5)
        slow = PenaltyMechanism.with_quotient(float(2 ** 28)).critical_beta0(0.5)
        assert fast == pytest.approx(slow, rel=1e-9)

    def test_lenient_mechanism_semi_active_decays_slower(self):
        lenient = PenaltyMechanism.lenient()
        ethereum = PenaltyMechanism.ethereum()
        assert lenient.semi_active_stake(4000.0) > ethereum.semi_active_stake(4000.0)

    def test_supermajority_parameter(self):
        half = PenaltyMechanism(supermajority=0.5)
        ethereum = PenaltyMechanism.ethereum()
        # A lower quorum is regained earlier.
        assert half.honest_threshold_epoch(0.4) < ethereum.honest_threshold_epoch(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PenaltyMechanism(score_bias=0.0)
        with pytest.raises(ValueError):
            PenaltyMechanism(ejection_fraction=1.5)
        with pytest.raises(ValueError):
            PenaltyMechanism(supermajority=0.3)
        with pytest.raises(ValueError):
            PenaltyMechanism.ethereum().honest_threshold_epoch(1.5)


class TestRecovery:
    def test_leak_exit_score(self):
        assert leak_exit_score(100) == 400.0
        with pytest.raises(ValueError):
            leak_exit_score(-1)

    def test_epochs_to_clear_score(self):
        # Outside the leak an active validator clears 17 points per epoch.
        assert epochs_to_clear_score(170.0) == 10
        assert epochs_to_clear_score(0.0) == 0

    def test_epochs_to_clear_score_inactive_still_clears_outside_leak(self):
        # Outside the leak even an inactive validator's score decays (by
        # 16 - 4 = 12 per epoch), just slower than an active one's.
        assert epochs_to_clear_score(120.0, active=False) == 10
        assert epochs_to_clear_score(120.0, active=True) < 10

    def test_epochs_to_clear_score_raises_when_score_cannot_decay(self):
        config = SpecConfig.mainnet().with_overrides(inactivity_score_recovery_no_leak=2)
        with pytest.raises(ValueError):
            epochs_to_clear_score(100.0, config=config, active=False)

    def test_recovery_tail_epochs(self):
        # A validator inactive for a 1000-epoch leak exits with score 4000 and
        # clears it in ceil(4000/17) = 236 epochs.
        assert recovery_tail_epochs(1000) == math.ceil(4000 / 17)

    def test_simulate_recovery_score_reaches_zero_without_further_loss(self):
        trajectory = simulate_recovery(initial_score=800.0, initial_stake=20.0)
        assert trajectory.scores[-1] == 0.0
        # Outside the leak there are no inactivity penalties: no extra loss.
        assert trajectory.residual_loss == pytest.approx(0.0)
        assert trajectory.epochs_to_zero_score == math.ceil(800 / 17)

    def test_simulate_recovery_with_leak_still_running_keeps_charging(self):
        trajectory = simulate_recovery(
            initial_score=800.0, initial_stake=20.0, leak_still_running=True
        )
        assert trajectory.residual_loss > 0.0
        assert trajectory.final_stake < 20.0
        # The score only decays by 1 per epoch while the leak is running.
        assert trajectory.epochs_to_zero_score == 800

    def test_simulate_recovery_validation(self):
        with pytest.raises(ValueError):
            simulate_recovery(initial_score=-1.0, initial_stake=10.0)

    def test_recovery_explains_figure3_tail(self):
        # Figure 3 (p0 = 0.6): the ratio keeps rising for a while after the
        # 2/3 crossing because the ex-inactive validators still carry a score.
        crossing = threshold_epoch_honest_only(0.6)
        tail = recovery_tail_epochs(int(crossing))
        assert tail > 100  # several hundred epochs of residual penalties
        assert tail < crossing  # but far shorter than the leak itself
