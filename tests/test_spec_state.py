"""Tests for repro.spec.state."""

import pytest

from repro.spec.checkpoint import Checkpoint, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.state import BeaconState
from repro.spec.types import Root
from repro.spec.validator import make_registry


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"c{epoch}"))


@pytest.fixture
def state():
    return BeaconState.genesis(make_registry(10, byzantine_fraction=0.2), SpecConfig.mainnet())


class TestStateBasics:
    def test_genesis_state(self, state):
        assert state.current_epoch == 0
        assert state.finalized_checkpoint == GENESIS_CHECKPOINT
        assert state.current_justified_checkpoint == GENESIS_CHECKPOINT
        assert state.is_justified(0)
        assert state.is_finalized(0)

    def test_requires_validators(self):
        with pytest.raises(ValueError):
            BeaconState(config=SpecConfig.mainnet(), validators=[])

    def test_total_active_stake(self, state):
        assert state.total_active_stake() == pytest.approx(320.0)

    def test_active_validators_excludes_exited(self, state):
        state.validators[0].exit(1)
        state.current_epoch = 1
        assert len(state.active_validators()) == 9
        assert state.total_active_stake() == pytest.approx(288.0)

    def test_stake_of_indices(self, state):
        assert state.stake_of([0, 1, 2]) == pytest.approx(96.0)

    def test_byzantine_stake_proportion(self, state):
        assert state.byzantine_stake_proportion() == pytest.approx(0.2)

    def test_byzantine_proportion_grows_when_honest_exit(self, state):
        for validator in state.validators[:4]:
            if validator.label == "honest":
                validator.exit(1)
        state.current_epoch = 1
        assert state.byzantine_stake_proportion() > 0.2


class TestLeakBookkeeping:
    def test_not_in_leak_initially(self, state):
        assert not state.is_in_inactivity_leak()

    def test_leak_starts_after_four_epochs_without_finality(self, state):
        state.current_epoch = 4
        assert not state.is_in_inactivity_leak()
        state.current_epoch = 5
        assert state.is_in_inactivity_leak()

    def test_finalization_resets_leak(self, state):
        state.current_epoch = 10
        assert state.is_in_inactivity_leak()
        state.record_finalization(cp(9))
        assert state.epochs_since_finality == 1
        assert not state.is_in_inactivity_leak()

    def test_epochs_since_finality_never_negative(self, state):
        state.record_finalization(cp(5))
        state.current_epoch = 3
        assert state.epochs_since_finality == 0


class TestCheckpointRecording:
    def test_record_justification_updates_current_and_previous(self, state):
        state.record_justification(cp(1))
        assert state.current_justified_checkpoint == cp(1)
        assert state.previous_justified_checkpoint == GENESIS_CHECKPOINT
        state.record_justification(cp(2))
        assert state.previous_justified_checkpoint == cp(1)

    def test_record_finalization_updates_latest(self, state):
        state.record_finalization(cp(2))
        assert state.finalized_checkpoint == cp(2)
        assert state.last_finalized_epoch == 2
        # Older finalizations do not regress the pointer.
        state.record_finalization(cp(1))
        assert state.finalized_checkpoint == cp(2)

    def test_is_justified_and_finalized(self, state):
        state.record_justification(cp(3))
        state.record_finalization(cp(3))
        assert state.is_justified(3)
        assert state.is_finalized(3)
        assert not state.is_finalized(4)


class TestFork:
    def test_fork_is_independent(self, state):
        forked = state.fork()
        forked.validators[0].stake = 1.0
        forked.record_finalization(cp(7))
        assert state.validators[0].stake == pytest.approx(32.0)
        assert not state.is_finalized(7)

    def test_fork_preserves_bookkeeping(self, state):
        state.record_justification(cp(1))
        state.record_finalization(cp(1))
        forked = state.fork()
        assert forked.current_justified_checkpoint == cp(1)
        assert forked.finalized_checkpoint == cp(1)
        assert forked.is_justified(1)

    def test_copy_registry_preserves_labels(self, state):
        copy = state.copy_registry()
        assert [v.label for v in copy] == [v.label for v in state.validators]
        copy[0].stake = 0.0
        assert state.validators[0].stake == pytest.approx(32.0)
