"""Integration tests: attack mechanisms demonstrated on the slot-level simulator.

These runs use the scaled-down ``minimal`` configuration so that leak
dynamics unfold within a handful of epochs, while exercising the exact
protocol code paths (fork choice, FFG, inactivity penalties, slashing
detection, partitioned transport, adversarial withholding).
"""

import pytest

from repro.sim.scenarios import (
    build_honest_simulation,
    build_offline_fraction_simulation,
    build_partitioned_simulation,
)
from repro.spec.config import SpecConfig


class TestBaselineLiveness:
    def test_finalized_chain_grows_every_epoch_after_warmup(self):
        engine = build_honest_simulation(n_validators=12)
        result = engine.run(8)
        # After the two-epoch FFG pipeline warm-up, finality tracks the head.
        assert result.max_finalized_epoch() >= 8 - 2
        assert not result.safety_violated()

    def test_availability_chain_grows_despite_partition(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        engine.run(5)
        for index in engine.honest_indices():
            node = engine.nodes[index]
            # The candidate chain keeps growing on both sides (Availability)
            # even though finalization is stuck.
            assert node.store.tree.highest_slot() >= 4 * 4  # 4 epochs of 4 slots


class TestLeakMechanism:
    def test_leak_starts_after_four_epochs_without_finality(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        result = engine.run(8)
        leak_epochs = result.leak_epochs()
        assert leak_epochs
        assert min(leak_epochs) >= 4

    def test_inactive_side_leaks_stake_on_the_other_sides_chain(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        result = engine.run(10)
        side_1 = engine.honest_indices()[0]
        state = engine.nodes[side_1].state
        members_1 = engine.schedule.members_of("branch-1")
        stakes_own = [v.stake for v in state.validators if v.index in members_1]
        stakes_other = [v.stake for v in state.validators if v.index not in members_1]
        assert min(stakes_own) > max(stakes_other)

    def test_leak_ends_once_finality_returns(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5, gst_epoch=6)
        result = engine.run(12)
        assert result.max_finalized_epoch() > 0
        final_snapshot = result.snapshots[-1]
        assert not final_snapshot.any_in_leak


class TestConflictingFinalizationWithScaledLeak:
    def test_long_partition_finalizes_two_branches(self):
        # Aggressively scaled-down leak so both sides regain a supermajority
        # within the test horizon: quotient 2**7 drains inactive validators
        # in a few epochs.
        config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)
        engine = build_partitioned_simulation(n_validators=12, p0=0.5, config=config)
        result = engine.run(14)
        assert result.safety_violated()
        assert result.first_safety_violation_epoch() is not None

    def test_byzantine_double_voters_accelerate_conflicting_finalization(self):
        config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)
        honest_engine = build_partitioned_simulation(n_validators=12, p0=0.5, config=config)
        honest_result = honest_engine.run(14)
        attacked_engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="double-voting",
            config=config,
        )
        attacked_result = attacked_engine.run(14)
        assert attacked_result.safety_violated()
        honest_epoch = honest_result.first_safety_violation_epoch()
        attacked_epoch = attacked_result.first_safety_violation_epoch()
        assert attacked_epoch is not None and honest_epoch is not None
        assert attacked_epoch <= honest_epoch


class TestSlashingAfterHeal:
    def test_evidence_included_after_gst_and_attackers_ejected(self):
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="double-voting",
            gst_epoch=3,
        )
        result = engine.run(9)
        assert result.slashed_indices == set(result.byzantine_indices)
        # Slashed validators are ejected from the active set on honest views.
        state = result.final_states[result.honest_indices[0]]
        for index in result.byzantine_indices:
            assert state.validators[index].slashed
            assert not state.validators[index].is_active(result.epochs_run + 1)
            assert state.validators[index].stake < 32.0


class TestAlternatingAttack:
    def test_semi_active_byzantine_never_slashed(self):
        # The paper's scenario: during the leak neither branch can justify on
        # its own (honest-active + Byzantine < 2/3 on both sides), so the
        # alternating votes always share the same (genesis) source and are
        # neither double votes nor surround votes.
        engine = build_partitioned_simulation(
            n_validators=16,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="alternating",
            gst_epoch=4,
        )
        result = engine.run(10)
        assert not result.slashed_indices

    def test_byzantine_proportion_grows_during_leak(self):
        config = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 8)
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="alternating",
            config=config,
        )
        result = engine.run(12)
        series = result.byzantine_proportion_series()
        assert series[-1] > series[0]
