"""Tests for repro.spec.finality (FFG justification/finalization)."""

import pytest

from repro.spec.attestation import Attestation
from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.finality import (
    FFGVotePool,
    conflicting_finalized_checkpoints,
    is_supermajority,
    link_support,
    process_justification,
    safety_violated,
)
from repro.spec.state import BeaconState
from repro.spec.types import Root
from repro.spec.validator import make_registry


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"checkpoint-{epoch}"))


@pytest.fixture
def state():
    return BeaconState.genesis(make_registry(9), SpecConfig.mainnet())


def vote_for(pool: FFGVotePool, validators, source: Checkpoint, target: Checkpoint):
    for validator in validators:
        pool.add_vote(validator, FFGVote(source=source, target=target))


class TestFFGVotePool:
    def test_first_vote_counts(self):
        pool = FFGVotePool()
        assert pool.add_vote(0, FFGVote(source=GENESIS_CHECKPOINT, target=cp(1)))

    def test_second_vote_same_target_epoch_ignored(self):
        pool = FFGVotePool()
        pool.add_vote(0, FFGVote(source=GENESIS_CHECKPOINT, target=cp(1, "a")))
        assert not pool.add_vote(0, FFGVote(source=GENESIS_CHECKPOINT, target=cp(1, "b")))
        assert pool.voters_for_link(GENESIS_CHECKPOINT, cp(1, "a")) == {0}
        assert pool.voters_for_link(GENESIS_CHECKPOINT, cp(1, "b")) == set()

    def test_add_attestation(self):
        pool = FFGVotePool()
        attestation = Attestation(
            validator_index=4,
            slot=33,
            head_root=Root.from_label("head"),
            ffg=FFGVote(source=GENESIS_CHECKPOINT, target=cp(1)),
        )
        assert pool.add_attestation(attestation)
        assert 4 in pool.voters_for_link(GENESIS_CHECKPOINT, cp(1))

    def test_targets_at_epoch(self):
        pool = FFGVotePool()
        vote_for(pool, range(3), GENESIS_CHECKPOINT, cp(1, "a"))
        vote_for(pool, range(3, 5), GENESIS_CHECKPOINT, cp(1, "b"))
        assert pool.targets_at_epoch(1) == {cp(1, "a"), cp(1, "b")}

    def test_clear_before_prunes(self):
        pool = FFGVotePool()
        vote_for(pool, range(3), GENESIS_CHECKPOINT, cp(1))
        vote_for(pool, range(3), cp(1), cp(2))
        pool.clear_before(2)
        assert pool.votes_for_target_epoch(1) == {}
        assert len(pool.votes_for_target_epoch(2)) == 3


class TestSupermajority:
    def test_link_support_sums_stake(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(4), GENESIS_CHECKPOINT, cp(1))
        assert link_support(state, pool, GENESIS_CHECKPOINT, cp(1)) == pytest.approx(4 * 32.0)

    def test_is_supermajority_boundary(self, state):
        total = state.total_active_stake()
        assert not is_supermajority(state, total * 2 / 3)
        assert is_supermajority(state, total * 2 / 3 + 1.0)

    def test_is_supermajority_zero_stake(self, state):
        for validator in state.validators:
            validator.exit(0)
        assert not is_supermajority(state, 100.0)


class TestJustificationFinalization:
    def test_supermajority_justifies_target(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))  # 7/9 > 2/3
        result = process_justification(state, pool, 1)
        assert result.justified_any
        assert state.is_justified(1)

    def test_minority_does_not_justify(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(6), GENESIS_CHECKPOINT, cp(1))  # 6/9 == 2/3, not strictly more
        result = process_justification(state, pool, 1)
        assert not result.justified_any
        assert not state.is_justified(1)

    def test_consecutive_justification_finalizes_source(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))
        process_justification(state, pool, 1)
        vote_for(pool, range(7), cp(1), cp(2))
        result = process_justification(state, pool, 2)
        assert result.finalized_any
        assert state.is_finalized(1)
        assert state.finalized_checkpoint == cp(1)

    def test_gap_justification_does_not_finalize(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))
        process_justification(state, pool, 1)
        # Skip epoch 2: justify epoch 3 directly from epoch 1.
        vote_for(pool, range(7), cp(1), cp(3))
        result = process_justification(state, pool, 3)
        assert result.justified_any
        assert not result.finalized_any
        assert not state.is_finalized(1) or state.finalized_checkpoint.epoch == 0

    def test_votes_from_unjustified_source_ignored(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), cp(1), cp(2))  # source epoch 1 was never justified
        result = process_justification(state, pool, 2)
        assert not result.justified_any

    def test_exited_validators_do_not_count(self, state):
        pool = FFGVotePool()
        for index in range(7):
            state.validators[index].exit(0)
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))
        result = process_justification(state, pool, 1)
        assert not result.justified_any

    def test_split_vote_justifies_neither(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(5), GENESIS_CHECKPOINT, cp(1, "a"))
        vote_for(pool, range(5, 9), GENESIS_CHECKPOINT, cp(1, "b"))
        result = process_justification(state, pool, 1)
        assert not result.justified_any


class TestSafetyDetector:
    def test_no_conflict_for_prefix_chains(self, state):
        other = state.fork()
        state.record_finalization(cp(1, "shared"))
        other.record_finalization(cp(1, "shared"))
        other.record_finalization(cp(2, "further"))
        assert not safety_violated([state, other])

    def test_conflict_detected_same_epoch_different_root(self, state):
        other = state.fork()
        state.record_finalization(cp(3, "branch-a"))
        other.record_finalization(cp(3, "branch-b"))
        conflicts = conflicting_finalized_checkpoints([state, other])
        assert conflicts
        assert safety_violated([state, other])

    def test_single_state_never_conflicts(self, state):
        state.record_finalization(cp(5, "x"))
        assert not safety_violated([state])
