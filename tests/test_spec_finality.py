"""Tests for repro.spec.finality (FFG justification/finalization)."""

import itertools

import numpy as np
import pytest

from repro.spec.attestation import Attestation
from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.finality import (
    FFGVotePool,
    conflicting_finalized_checkpoints,
    is_supermajority,
    link_support,
    process_justification,
    safety_violated,
)
from repro.spec.state import BeaconState
from repro.spec.types import Root
from repro.spec.validator import make_registry


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"checkpoint-{epoch}"))


@pytest.fixture
def state():
    return BeaconState.genesis(make_registry(9), SpecConfig.mainnet())


def vote_for(pool: FFGVotePool, validators, source: Checkpoint, target: Checkpoint):
    for validator in validators:
        pool.add_vote(validator, FFGVote(source=source, target=target))


class TestFFGVotePool:
    def test_first_vote_counts(self):
        pool = FFGVotePool()
        assert pool.add_vote(0, FFGVote(source=GENESIS_CHECKPOINT, target=cp(1)))

    def test_second_vote_same_target_epoch_ignored(self):
        pool = FFGVotePool()
        pool.add_vote(0, FFGVote(source=GENESIS_CHECKPOINT, target=cp(1, "a")))
        assert not pool.add_vote(0, FFGVote(source=GENESIS_CHECKPOINT, target=cp(1, "b")))
        assert pool.voters_for_link(GENESIS_CHECKPOINT, cp(1, "a")) == {0}
        assert pool.voters_for_link(GENESIS_CHECKPOINT, cp(1, "b")) == set()

    def test_add_attestation(self):
        pool = FFGVotePool()
        attestation = Attestation(
            validator_index=4,
            slot=33,
            head_root=Root.from_label("head"),
            ffg=FFGVote(source=GENESIS_CHECKPOINT, target=cp(1)),
        )
        assert pool.add_attestation(attestation)
        assert 4 in pool.voters_for_link(GENESIS_CHECKPOINT, cp(1))

    def test_targets_at_epoch(self):
        pool = FFGVotePool()
        vote_for(pool, range(3), GENESIS_CHECKPOINT, cp(1, "a"))
        vote_for(pool, range(3, 5), GENESIS_CHECKPOINT, cp(1, "b"))
        assert pool.targets_at_epoch(1) == {cp(1, "a"), cp(1, "b")}

    def test_clear_before_prunes(self):
        pool = FFGVotePool()
        vote_for(pool, range(3), GENESIS_CHECKPOINT, cp(1))
        vote_for(pool, range(3), cp(1), cp(2))
        pool.clear_before(2)
        assert pool.votes_for_target_epoch(1) == {}
        assert len(pool.votes_for_target_epoch(2)) == 3


class TestSupermajority:
    def test_link_support_sums_stake(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(4), GENESIS_CHECKPOINT, cp(1))
        assert link_support(state, pool, GENESIS_CHECKPOINT, cp(1)) == pytest.approx(4 * 32.0)

    def test_is_supermajority_boundary(self, state):
        total = state.total_active_stake()
        assert not is_supermajority(state, total * 2 / 3)
        assert is_supermajority(state, total * 2 / 3 + 1.0)

    def test_is_supermajority_zero_stake(self, state):
        for validator in state.validators:
            validator.exit(0)
        assert not is_supermajority(state, 100.0)


class TestJustificationFinalization:
    def test_supermajority_justifies_target(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))  # 7/9 > 2/3
        result = process_justification(state, pool, 1)
        assert result.justified_any
        assert state.is_justified(1)

    def test_minority_does_not_justify(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(6), GENESIS_CHECKPOINT, cp(1))  # 6/9 == 2/3, not strictly more
        result = process_justification(state, pool, 1)
        assert not result.justified_any
        assert not state.is_justified(1)

    def test_consecutive_justification_finalizes_source(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))
        process_justification(state, pool, 1)
        vote_for(pool, range(7), cp(1), cp(2))
        result = process_justification(state, pool, 2)
        assert result.finalized_any
        assert state.is_finalized(1)
        assert state.finalized_checkpoint == cp(1)

    def test_gap_justification_does_not_finalize(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))
        process_justification(state, pool, 1)
        # Skip epoch 2: justify epoch 3 directly from epoch 1.
        vote_for(pool, range(7), cp(1), cp(3))
        result = process_justification(state, pool, 3)
        assert result.justified_any
        assert not result.finalized_any
        assert not state.is_finalized(1) or state.finalized_checkpoint.epoch == 0

    def test_votes_from_unjustified_source_ignored(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(7), cp(1), cp(2))  # source epoch 1 was never justified
        result = process_justification(state, pool, 2)
        assert not result.justified_any

    def test_exited_validators_do_not_count(self, state):
        pool = FFGVotePool()
        for index in range(7):
            state.validators[index].exit(0)
        vote_for(pool, range(7), GENESIS_CHECKPOINT, cp(1))
        result = process_justification(state, pool, 1)
        assert not result.justified_any

    def test_split_vote_justifies_neither(self, state):
        pool = FFGVotePool()
        vote_for(pool, range(5), GENESIS_CHECKPOINT, cp(1, "a"))
        vote_for(pool, range(5, 9), GENESIS_CHECKPOINT, cp(1, "b"))
        result = process_justification(state, pool, 1)
        assert not result.justified_any

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_registry_order_independent_of_validator_index(self, backend):
        """Votes are matched to stakes by ``Validator.index``, not by the
        validator's position in the registry."""
        from repro.spec.validator import Validator

        # Registry stored in reverse index order; indices 3..8 hold all
        # the meaningful stake.
        registry = [
            Validator(index=8 - position, stake=32.0 if 8 - position >= 3 else 0.1)
            for position in range(9)
        ]
        state = BeaconState.genesis(registry, SpecConfig.mainnet())
        pool = FFGVotePool()
        vote_for(pool, range(3, 9), GENESIS_CHECKPOINT, cp(1))
        result = process_justification(state, pool, 1, backend=backend)
        # 6 * 32 of 192.3 total: a supermajority — but only if the vote
        # indices were resolved to the right registry entries.
        assert result.justified_any
        assert state.is_justified(1)


class TestFinalityProperties:
    """Seeded property-based checks over randomized vote patterns."""

    def test_double_votes_never_double_count_stake(self):
        """A pool fed conflicting re-votes behaves exactly like one that
        only ever saw each validator's first vote."""
        rng = np.random.default_rng(41)
        for trial in range(15):
            registry_size = int(rng.integers(6, 16))
            state = BeaconState.genesis(
                make_registry(registry_size), SpecConfig.mainnet()
            )
            for validator in state.validators:
                validator.stake = float(rng.uniform(0.0, 33.0))
            other = state.fork()
            pool_first, pool_all = FFGVotePool(), FFGVotePool()
            targets = [cp(1, "a"), cp(1, "b")]
            for validator in range(registry_size):
                first = FFGVote(
                    source=GENESIS_CHECKPOINT,
                    target=targets[int(rng.random() < 0.3)],
                )
                assert pool_first.add_vote(validator, first)
                assert pool_all.add_vote(validator, first)
                for _ in range(int(rng.integers(0, 3))):  # conflicting re-votes
                    double = FFGVote(
                        source=GENESIS_CHECKPOINT,
                        target=targets[int(rng.random() < 0.5)],
                    )
                    assert not pool_all.add_vote(validator, double)
            for target in targets:
                assert link_support(
                    state, pool_all, GENESIS_CHECKPOINT, target
                ) == link_support(state, pool_first, GENESIS_CHECKPOINT, target)
            result_all = process_justification(state, pool_all, 1)
            result_first = process_justification(other, pool_first, 1)
            assert result_all.newly_justified == result_first.newly_justified
            assert result_all.newly_finalized == result_first.newly_finalized
            # Total counted stake never exceeds one vote per validator.
            total_counted = sum(
                link_support(state, pool_all, GENESIS_CHECKPOINT, target)
                for target in targets
            )
            assert total_counted <= state.total_active_stake(1) + 1e-9

    def test_clear_before_never_changes_subsequent_justification(self):
        """Pruning strictly-older target epochs is invisible to every later
        ``process_justification`` outcome."""
        rng = np.random.default_rng(43)
        state_pruned = BeaconState.genesis(make_registry(10), SpecConfig.mainnet())
        state_kept = state_pruned.fork()
        pool_pruned, pool_kept = FFGVotePool(), FFGVotePool()
        tip = GENESIS_CHECKPOINT
        for epoch in range(1, 25):
            target = cp(epoch)
            votes = []
            for validator in range(10):
                roll = rng.random()
                if roll < 0.75:
                    votes.append((validator, FFGVote(source=tip, target=target)))
                elif roll < 0.85:
                    votes.append(
                        (validator, FFGVote(source=tip, target=cp(epoch, "fork")))
                    )
            for validator, vote in votes:
                pool_pruned.add_vote(validator, vote)
                pool_kept.add_vote(validator, vote)
            pool_pruned.clear_before(epoch)  # prune everything older
            result_pruned = process_justification(state_pruned, pool_pruned, epoch)
            result_kept = process_justification(state_kept, pool_kept, epoch)
            assert result_pruned.newly_justified == result_kept.newly_justified
            assert result_pruned.newly_finalized == result_kept.newly_finalized
            if result_kept.justified_any:
                tip = result_kept.newly_justified[-1]
        assert state_pruned.justified_checkpoints == state_kept.justified_checkpoints
        assert state_pruned.finalized_checkpoints == state_kept.finalized_checkpoints
        assert state_kept.last_finalized_epoch > 0  # the run finalized for real

    def test_safety_violated_is_symmetric_and_order_independent(self):
        rng = np.random.default_rng(47)
        for trial in range(10):
            base = BeaconState.genesis(make_registry(4), SpecConfig.mainnet())
            states = []
            for branch in range(4):
                forked = base.fork()
                for epoch in range(1, int(rng.integers(2, 6))):
                    # Shared prefix with occasional per-branch divergence.
                    label = (
                        f"shared-{epoch}"
                        if rng.random() < 0.6
                        else f"branch{branch}-{epoch}"
                    )
                    forked.record_finalization(cp(epoch, label))
                states.append(forked)
            verdict = safety_violated(states)
            for permutation in itertools.permutations(states):
                assert safety_violated(list(permutation)) == verdict
            for state_a, state_b in itertools.combinations(states, 2):
                assert safety_violated([state_a, state_b]) == safety_violated(
                    [state_b, state_a]
                )
                conflicts_ab = conflicting_finalized_checkpoints([state_a, state_b])
                conflicts_ba = conflicting_finalized_checkpoints([state_b, state_a])
                assert {frozenset(pair) for pair in conflicts_ab} == {
                    frozenset(pair) for pair in conflicts_ba
                }


class TestSafetyDetector:
    def test_no_conflict_for_prefix_chains(self, state):
        other = state.fork()
        state.record_finalization(cp(1, "shared"))
        other.record_finalization(cp(1, "shared"))
        other.record_finalization(cp(2, "further"))
        assert not safety_violated([state, other])

    def test_conflict_detected_same_epoch_different_root(self, state):
        other = state.fork()
        state.record_finalization(cp(3, "branch-a"))
        other.record_finalization(cp(3, "branch-b"))
        conflicts = conflicting_finalized_checkpoints([state, other])
        assert conflicts
        assert safety_violated([state, other])

    def test_single_state_never_conflicts(self, state):
        state.record_finalization(cp(5, "x"))
        assert not safety_violated([state])
