"""Tests for repro.analysis.finalization_time (Equations 6, 9, 10; Tables 2-3)."""

import math

import pytest

from repro.analysis.finalization_time import (
    ByzantineStrategy,
    conflicting_finalization_time,
    epochs_to_conflicting_finalization,
    speedup_over_honest_baseline,
    threshold_epoch_honest_only,
    threshold_epoch_non_slashing,
    threshold_epoch_slashing,
)
from repro.leak.ratios import (
    active_ratio_with_semi_active_byzantine,
    active_ratio_with_slashing_byzantine,
)


class TestEquation6:
    def test_even_split_capped_at_ejection(self):
        assert threshold_epoch_honest_only(0.5) == pytest.approx(4685.0)

    def test_closed_form_for_p06(self):
        expected = math.sqrt(2 ** 25 * (math.log(2 * 0.4) - math.log(0.6)))
        assert threshold_epoch_honest_only(0.6) == pytest.approx(expected)

    def test_supermajority_split_needs_zero_epochs(self):
        assert threshold_epoch_honest_only(0.7) == 0.0

    def test_smaller_p0_is_slower(self):
        # Below the ejection cap, fewer active validators means a later crossing.
        assert threshold_epoch_honest_only(0.62) < threshold_epoch_honest_only(0.58)
        assert threshold_epoch_honest_only(0.58) < threshold_epoch_honest_only(0.55)

    def test_zero_p0_hits_the_cap(self):
        assert threshold_epoch_honest_only(0.0) == pytest.approx(4685.0)

    def test_invalid_p0(self):
        with pytest.raises(ValueError):
            threshold_epoch_honest_only(1.5)


class TestEquation9Table2:
    PAPER = {0.0: 4685, 0.1: 4066, 0.15: 3622, 0.2: 3107, 0.33: 502}

    @pytest.mark.parametrize("beta0,expected", sorted(PAPER.items()))
    def test_table2_rows_exact(self, beta0, expected):
        assert (
            epochs_to_conflicting_finalization(ByzantineStrategy.SLASHING, 0.5, beta0)
            == expected
        )

    def test_crossing_time_solves_equation8(self):
        t = threshold_epoch_slashing(0.5, 0.2)
        assert active_ratio_with_slashing_byzantine(t, 0.5, 0.2) == pytest.approx(2 / 3, abs=1e-9)

    def test_beta_close_to_third_is_fast(self):
        # The closer beta0 is to 1/3, the faster the crossing (approaches 0).
        assert threshold_epoch_slashing(0.5, 0.333) < 200
        assert threshold_epoch_slashing(0.5, 0.3333) < 60
        assert threshold_epoch_slashing(0.5, 0.33333) < 20

    def test_monotone_in_beta0(self):
        values = [threshold_epoch_slashing(0.5, b) for b in (0.05, 0.1, 0.2, 0.3)]
        assert all(b < a for a, b in zip(values, values[1:]))

    def test_supermajority_from_start_returns_zero(self):
        assert threshold_epoch_slashing(0.5, 1 / 3) == pytest.approx(0.0, abs=2.0)


class TestEquation10Table3:
    PAPER = {0.0: 4685, 0.33: 556}
    PAPER_APPROXIMATE = {0.1: 4221, 0.15: 3819, 0.2: 3328}

    @pytest.mark.parametrize("beta0,expected", sorted(PAPER.items()))
    def test_table3_exact_rows(self, beta0, expected):
        assert (
            epochs_to_conflicting_finalization(ByzantineStrategy.NON_SLASHING, 0.5, beta0)
            == expected
        )

    @pytest.mark.parametrize("beta0,expected", sorted(PAPER_APPROXIMATE.items()))
    def test_table3_rows_within_one_percent(self, beta0, expected):
        measured = epochs_to_conflicting_finalization(
            ByzantineStrategy.NON_SLASHING, 0.5, beta0
        )
        assert abs(measured - expected) / expected < 0.01

    def test_crossing_time_solves_equation10(self):
        t = threshold_epoch_non_slashing(0.5, 0.2)
        assert active_ratio_with_semi_active_byzantine(t, 0.5, 0.2) == pytest.approx(
            2 / 3, abs=1e-7
        )

    def test_paper_value_555_65(self):
        assert threshold_epoch_non_slashing(0.5, 0.33) == pytest.approx(555.65, abs=0.5)

    def test_non_slashing_never_faster_than_slashing(self):
        for beta0 in (0.05, 0.1, 0.2, 0.3, 0.33):
            assert threshold_epoch_non_slashing(0.5, beta0) >= threshold_epoch_slashing(
                0.5, beta0
            )


class TestConflictingFinalization:
    def test_slower_branch_dominates(self):
        result = conflicting_finalization_time(ByzantineStrategy.SLASHING, p0=0.3, beta0=0.1)
        assert result.threshold_epoch == max(result.branch_1_epoch, result.branch_2_epoch)
        assert result.branch_1_epoch != result.branch_2_epoch

    def test_finalization_is_one_epoch_after_threshold(self):
        result = conflicting_finalization_time(ByzantineStrategy.NONE, p0=0.5)
        assert result.finalization_epoch == result.threshold_epoch + 1
        assert result.finalization_epoch == pytest.approx(4686.0)

    def test_honest_strategy_requires_zero_beta(self):
        with pytest.raises(ValueError):
            conflicting_finalization_time(ByzantineStrategy.NONE, p0=0.5, beta0=0.1)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            conflicting_finalization_time("bribing", p0=0.5)

    def test_speedup_factors_match_paper_quotes(self):
        # Paper: ~10x faster with slashing, ~8x faster without, at beta0=0.33.
        slashing = speedup_over_honest_baseline(ByzantineStrategy.SLASHING, 0.33)
        non_slashing = speedup_over_honest_baseline(ByzantineStrategy.NON_SLASHING, 0.33)
        assert 8.5 <= slashing <= 10.5
        assert 7.5 <= non_slashing <= 9.0
