"""Property tests for the pluggable latency models (repro.network.latency).

The latency layer's contract has four load-bearing properties:

* **seed determinism** — a model is a pure function of its seed: the same
  seed yields byte-identical delivery schedules, a different seed a
  different one;
* **chunking invariance** — samples are counter-based (hashed per
  recipient), so delivery times do not depend on how an audience is
  chunked into queries — the property that makes per-view-group sampling
  equal per-validator sampling;
* **partition gating** — the availability rule of the legacy transport
  (held to GST across a partition, delta-bounded within one) survives
  under every model;
* **statistical sanity** — the stochastic models match their closed
  forms (LogNormal mean/quantiles, jitter bounds, gossip hop structure).
"""

import math

import numpy as np
import pytest

from repro.network.latency import (
    LATENCY_MODEL_NAMES,
    FixedJitter,
    GossipPropagation,
    LatencyModel,
    LogNormalLatency,
    UniformDelay,
    hashed_uniform,
    make_latency_model,
    quantize_to_phase,
    resolve_latency_model,
)
from repro.network.message import Message, MessageKind
from repro.network.partition import Partition, PartitionSchedule
from repro.spec.block import BeaconBlock

N = 40
INDICES = tuple(range(N))
T = 12.0  # seconds per slot used by the phase-grid tests


def flat_schedule(delta: float = 1.0) -> PartitionSchedule:
    return PartitionSchedule.fully_connected(delta=delta)


def split_schedule(gst: float = 1000.0, delta: float = 2.0) -> PartitionSchedule:
    """0-17 in branch-1, 18-35 in branch-2, 36-39 bridges."""
    return PartitionSchedule(
        partitions=(
            Partition("branch-1", frozenset(range(0, 18))),
            Partition("branch-2", frozenset(range(18, 36))),
        ),
        gst=gst,
        delta=delta,
    )


def block_message(sender: int = 0, sent_at: float = 0.0) -> Message:
    return Message.block(BeaconBlock.genesis(), sender=sender, sent_at=sent_at)


def attestation_message(sender: int, sent_at: float = 4.0) -> Message:
    # The latency layer keys on the message *kind* and sender only, so a
    # payload-free wrapper is enough for sampling tests.
    return Message(MessageKind.ATTESTATION, None, sender, sent_at)


def batch_message(sender: int, sent_at: float = 4.0) -> Message:
    return Message(MessageKind.ATTESTATION_BATCH, None, sender, sent_at)


ALL_MODELS = [
    pytest.param(lambda: UniformDelay(), id="uniform"),
    pytest.param(lambda: FixedJitter(base=0.2, jitter=0.4, seed=7), id="jitter"),
    pytest.param(lambda: LogNormalLatency(median=0.25, sigma=0.5, seed=7), id="lognormal"),
    pytest.param(lambda: GossipPropagation(degree=6, seed=7), id="gossip"),
]


class TestHashedStream:
    def test_uniforms_lie_in_unit_interval(self):
        u = hashed_uniform(12345, np.arange(10_000))
        assert np.all(u >= 0.0) and np.all(u < 1.0)

    def test_same_key_is_deterministic(self):
        ids = np.arange(256)
        assert hashed_uniform(99, ids).tobytes() == hashed_uniform(99, ids).tobytes()

    def test_different_keys_decorrelate(self):
        ids = np.arange(256)
        assert hashed_uniform(1, ids).tobytes() != hashed_uniform(2, ids).tobytes()

    def test_chunking_invariance(self):
        ids = np.arange(1000)
        whole = hashed_uniform(7, ids)
        parts = np.concatenate(
            [hashed_uniform(7, chunk) for chunk in np.array_split(ids, 13)]
        )
        assert whole.tobytes() == parts.tobytes()

    def test_order_invariance(self):
        ids = np.arange(100)
        shuffled = ids[::-1].copy()
        assert np.array_equal(hashed_uniform(7, ids)[::-1], hashed_uniform(7, shuffled))

    def test_small_consecutive_ids_are_well_spread(self):
        # The classic single-round splitmix weakness: nearby inputs give
        # correlated upper bits.  The two-round finalizer must not.
        u = hashed_uniform(0, np.arange(4096))
        assert abs(float(u.mean()) - 0.5) < 0.02
        assert float(np.corrcoef(u[:-1], u[1:])[0, 1]) < 0.05


class TestPhaseGrid:
    def test_grid_points_are_fixed(self):
        grid = np.array([0.0, T / 3, T, T + T / 3, 5 * T])
        assert np.allclose(quantize_to_phase(grid, T), grid)

    def test_rounds_up_within_slot(self):
        times = np.array([0.1, T / 3 - 1e-9, T / 3 + 0.1, T - 0.1])
        expected = np.array([T / 3, T / 3, T, T])
        assert np.allclose(quantize_to_phase(times, T), expected)

    def test_never_rounds_down(self):
        times = np.linspace(0.0, 10 * T, 997)
        quantized = quantize_to_phase(times, T)
        assert np.all(quantized >= times - 1e-12)
        assert np.all(quantized - times < T)


class TestAvailabilityGating:
    @pytest.mark.parametrize("build", ALL_MODELS)
    def test_cross_partition_held_to_gst(self, build):
        schedule = split_schedule()
        model = build().bind(schedule, INDICES)
        recipients = np.arange(N)
        avail = model.availability(0, recipients, available_at=10.0)
        # Same side + bridges travel immediately; the far side waits.
        assert np.all(avail[:18] == 10.0)
        assert np.all(avail[18:36] == schedule.gst)
        assert np.all(avail[36:] == 10.0)

    @pytest.mark.parametrize("build", ALL_MODELS)
    def test_bridge_sender_reaches_everyone(self, build):
        model = build().bind(split_schedule(), INDICES)
        avail = model.availability(36, np.arange(N), available_at=10.0)
        assert np.all(avail == 10.0)

    @pytest.mark.parametrize("build", ALL_MODELS)
    def test_after_gst_everyone_available(self, build):
        schedule = split_schedule(gst=100.0)
        model = build().bind(schedule, INDICES)
        avail = model.availability(0, np.arange(N), available_at=100.0)
        assert np.all(avail == 100.0)

    @pytest.mark.parametrize("build", ALL_MODELS)
    def test_delivery_never_precedes_availability(self, build):
        model = build().bind(split_schedule(), INDICES, seconds_per_slot=T)
        times, avail = model.delivery_times(
            block_message(sender=0), np.arange(N), available_at=10.0
        )
        assert np.all(times >= avail)

    def test_unbound_model_refuses_to_sample(self):
        with pytest.raises(RuntimeError, match="bound"):
            FixedJitter().delivery_times(block_message(), [0, 1], 0.0)


class TestSeedDeterminism:
    @pytest.mark.parametrize(
        "build",
        [
            pytest.param(lambda s: FixedJitter(seed=s), id="jitter"),
            pytest.param(lambda s: LogNormalLatency(seed=s), id="lognormal"),
            pytest.param(lambda s: GossipPropagation(seed=s), id="gossip"),
        ],
    )
    def test_same_seed_byte_identical_different_seed_not(self, build):
        message = block_message(sender=3, sent_at=24.0)
        recipients = np.arange(N)

        def schedule_bytes(seed: int) -> bytes:
            # No phase grid: quantization would collapse nearby seeds into
            # the same bucket; the raw schedule is the seeded object.
            model = build(seed).bind(flat_schedule(), INDICES)
            times, _ = model.delivery_times(message, recipients, available_at=24.0)
            return times.tobytes()

        assert schedule_bytes(11) == schedule_bytes(11)
        assert schedule_bytes(11) != schedule_bytes(12)

    @pytest.mark.parametrize("build", ALL_MODELS)
    def test_chunked_queries_match_whole_audience(self, build):
        model = build().bind(flat_schedule(), INDICES, seconds_per_slot=T)
        message = block_message(sender=0, sent_at=12.0)
        recipients = np.arange(N)
        whole, _ = model.delivery_times(message, recipients, available_at=12.0)
        parts = np.concatenate(
            [
                model.delivery_times(message, chunk, available_at=12.0)[0]
                for chunk in np.array_split(recipients, 7)
            ]
        )
        assert whole.tobytes() == parts.tobytes()

    def test_attestation_and_batch_share_the_sampling_class(self):
        # A committee's votes travel as one batch under view sharding but
        # as per-validator attestations per-node; both packagings (and any
        # sender attribution) must sample identical delivery times.
        model = FixedJitter(seed=5).bind(flat_schedule(), INDICES, seconds_per_slot=T)
        recipients = np.arange(N)
        single, _ = model.delivery_times(
            attestation_message(sender=2, sent_at=4.0), recipients, available_at=4.0
        )
        batched, _ = model.delivery_times(
            batch_message(sender=9, sent_at=4.0), recipients, available_at=4.0
        )
        assert single.tobytes() == batched.tobytes()


class TestUniformDelay:
    def test_flags_the_legacy_path(self):
        assert UniformDelay().is_uniform
        assert not FixedJitter().is_uniform

    def test_default_delta_comes_from_schedule(self):
        schedule = split_schedule(delta=2.0)
        model = UniformDelay().bind(schedule, INDICES)
        assert model.effective_delta(schedule) == 2.0
        times, avail = model.delivery_times(
            block_message(sender=0), np.arange(18), available_at=10.0
        )
        assert np.allclose(times, avail + 2.0)

    def test_custom_delta_overrides_schedule(self):
        schedule = split_schedule(delta=2.0)
        model = UniformDelay(delta=0.5)
        assert model.effective_delta(schedule) == 0.5

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            UniformDelay(delta=0.0)


class TestFixedJitter:
    def test_latency_bounds(self):
        model = FixedJitter(base=0.2, jitter=0.4, seed=3).bind(flat_schedule(), INDICES)
        times, avail = model.delivery_times(
            block_message(sender=0), np.arange(N), available_at=5.0
        )
        latency = times - avail
        assert np.all(latency >= 0.2) and np.all(latency < 0.6)

    def test_zero_jitter_degenerates_to_constant(self):
        model = FixedJitter(base=0.3, jitter=0.0, seed=3).bind(flat_schedule(), INDICES)
        times, avail = model.delivery_times(
            block_message(sender=0), np.arange(N), available_at=5.0
        )
        assert np.allclose(times - avail, 0.3)

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            FixedJitter(base=-0.1)
        with pytest.raises(ValueError):
            FixedJitter(jitter=-0.1)


class TestLogNormalClosedForms:
    def _samples(self, model: LogNormalLatency, n: int = 20_000) -> np.ndarray:
        model.bind(flat_schedule(), range(n))
        times, avail = model.delivery_times(
            block_message(sender=0), np.arange(n), available_at=0.0
        )
        return times - avail

    def test_empirical_mean_matches_closed_form(self):
        model = LogNormalLatency(median=0.25, sigma=0.5, seed=9)
        samples = self._samples(model)
        # mean = median * exp(sigma^2 / 2); SE of the mean ~ 0.001 here.
        assert model.mean == pytest.approx(0.25 * math.exp(0.125))
        assert float(samples.mean()) == pytest.approx(model.mean, rel=0.02)

    def test_empirical_quantiles_match_closed_form(self):
        model = LogNormalLatency(median=0.25, sigma=0.5, seed=9)
        samples = self._samples(model)
        assert model.quantile(0.5) == pytest.approx(model.median)
        for q in (0.1, 0.5, 0.9):
            assert float(np.quantile(samples, q)) == pytest.approx(
                model.quantile(q), rel=0.05
            )

    def test_log_of_samples_is_gaussian(self):
        model = LogNormalLatency(median=0.25, sigma=0.5, seed=9)
        logs = np.log(self._samples(model))
        assert float(logs.mean()) == pytest.approx(math.log(0.25), abs=0.02)
        assert float(logs.std()) == pytest.approx(0.5, rel=0.05)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(sigma=-1.0)
        with pytest.raises(ValueError):
            LogNormalLatency().quantile(1.0)


class TestGossipPropagation:
    def test_topology_is_seed_deterministic(self):
        first = GossipPropagation(seed=4).bind(flat_schedule(), INDICES)
        second = GossipPropagation(seed=4).bind(flat_schedule(), INDICES)
        assert first._neighbors.tobytes() == second._neighbors.tobytes()
        third = GossipPropagation(seed=5).bind(flat_schedule(), INDICES)
        assert first._neighbors.tobytes() != third._neighbors.tobytes()

    def test_overlay_is_connected(self):
        model = GossipPropagation(degree=6, seed=4).bind(flat_schedule(), INDICES)
        for origin in (0, 17, N - 1):
            hops = model.hops_from(origin)
            assert np.all(hops >= 0), "ring edges must keep the overlay connected"
            assert hops[model._position[origin]] == 0

    def test_everyone_pays_at_least_one_hop(self):
        # Including the origin: a zero-latency self-delivery would split
        # the origin out of its view group on every message.
        model = GossipPropagation(degree=6, seed=4).bind(flat_schedule(), INDICES)
        times, avail = model.delivery_times(
            block_message(sender=5), np.arange(N), available_at=0.0
        )
        lo, _hi = model.hop_delay
        assert np.all(times - avail >= lo)

    def test_latency_bounded_by_hop_count(self):
        model = GossipPropagation(degree=6, hop_delay=(0.05, 0.2), seed=4).bind(
            flat_schedule(), INDICES
        )
        hops = np.maximum(model.hops_from(5)[model._position[np.arange(N)]], 1)
        times, avail = model.delivery_times(
            block_message(sender=5), np.arange(N), available_at=0.0
        )
        latency = times - avail
        assert np.all(latency >= hops * 0.05 - 1e-12)
        assert np.all(latency <= hops * 0.2 + 1e-12)

    def test_block_origin_is_the_sender(self):
        # The sender's neighbours (1 hop) must see strictly less worst-case
        # latency than the overlay's most distant validators.
        model = GossipPropagation(degree=4, hop_delay=(0.1, 0.1), seed=4).bind(
            flat_schedule(), tuple(range(200))
        )
        times, avail = model.delivery_times(
            block_message(sender=0), np.arange(200), available_at=0.0
        )
        latency = times - avail
        hops = np.maximum(model.hops_from(0)[model._position[np.arange(200)]], 1)
        assert np.allclose(latency, hops * 0.1)
        assert latency.max() > latency.min()

    def test_attestations_share_a_virtual_origin_across_senders(self):
        model = GossipPropagation(seed=4).bind(flat_schedule(), INDICES)
        recipients = np.arange(N)
        first, _ = model.delivery_times(
            attestation_message(sender=1, sent_at=4.0), recipients, available_at=4.0
        )
        second, _ = model.delivery_times(
            attestation_message(sender=30, sent_at=4.0), recipients, available_at=4.0
        )
        assert first.tobytes() == second.tobytes()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GossipPropagation(degree=1)
        with pytest.raises(ValueError):
            GossipPropagation(hop_delay=(0.5, 0.1))


class TestFactory:
    def test_every_published_name_constructs(self):
        for name in LATENCY_MODEL_NAMES:
            assert isinstance(make_latency_model(name, seed=1), LatencyModel)

    def test_aliases_and_parameters_forward(self):
        assert isinstance(make_latency_model("fixed-jitter"), FixedJitter)
        assert isinstance(make_latency_model("log_normal"), LogNormalLatency)
        assert make_latency_model("gossip", degree=12).degree == 12
        assert make_latency_model("lognormal", sigma=0.9).sigma == 0.9

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown latency model"):
            make_latency_model("carrier-pigeon")

    def test_resolve_passthrough(self):
        assert resolve_latency_model(None) is None
        instance = FixedJitter()
        assert resolve_latency_model(instance) is instance
        assert isinstance(resolve_latency_model("gossip", seed=2), GossipPropagation)
        assert resolve_latency_model("gossip", seed=2).seed == 2
