"""Integration tests: the paper's headline numbers, end to end.

These tests go through the public API (the ``repro`` top-level package and
the experiment runners) and check every quantitative claim of the paper
that the reproduction targets:

* Table 2 and Table 3 rows,
* the 4685/4686-epoch Safety bound of Section 5.1,
* the 0.2421 critical Byzantine proportion of Section 5.2.3,
* the ejection epochs of Figure 2,
* the bouncing-attack numbers of Section 5.3 (probability 0.5 at
  beta0 = 1/3, the 1e-121 duration estimate, ejection at ~7653),
* the ~10x / ~8x acceleration factors quoted in Sections 5.2.1 / 5.2.2.
"""

import pytest

import repro
from repro import constants
from repro.analysis import speedup_over_honest_baseline
from repro.analysis.finalization_time import ByzantineStrategy


class TestHeadlineTables:
    def test_table2(self):
        expected = {0.0: 4685, 0.1: 4066, 0.15: 3622, 0.2: 3107, 0.33: 502}
        for beta0, epochs in expected.items():
            assert (
                repro.epochs_to_conflicting_finalization(
                    ByzantineStrategy.SLASHING, 0.5, beta0
                )
                == epochs
            )

    def test_table3(self):
        expected = {0.0: 4685, 0.1: 4221, 0.15: 3819, 0.2: 3328, 0.33: 556}
        for beta0, epochs in expected.items():
            measured = repro.epochs_to_conflicting_finalization(
                ByzantineStrategy.NON_SLASHING, 0.5, beta0
            )
            assert abs(measured - epochs) / epochs < 0.01

    def test_acceleration_factors(self):
        assert speedup_over_honest_baseline(ByzantineStrategy.SLASHING, 0.33) == pytest.approx(
            9.3, abs=1.0
        )
        assert speedup_over_honest_baseline(
            ByzantineStrategy.NON_SLASHING, 0.33
        ) == pytest.approx(8.4, abs=1.0)


class TestSafetyBound:
    def test_conflicting_finalization_bound_is_4686(self):
        result = repro.conflicting_finalization_time(ByzantineStrategy.NONE, p0=0.5)
        assert result.threshold_epoch == pytest.approx(4685.0)
        assert result.finalization_epoch == pytest.approx(4686.0)

    def test_even_split_is_the_fastest_honest_configuration(self):
        even = repro.conflicting_finalization_time(ByzantineStrategy.NONE, p0=0.5)
        for p0 in (0.3, 0.4, 0.45, 0.6):
            other = repro.conflicting_finalization_time(ByzantineStrategy.NONE, p0=p0)
            assert other.threshold_epoch >= even.threshold_epoch - 1e-9


class TestThresholdAndEjections:
    def test_critical_beta0(self):
        assert repro.critical_beta0(0.5) == pytest.approx(0.2421, abs=5e-4)

    def test_figure2_ejection_epochs(self):
        from repro.spec.inactivity import discrete_ejection_epoch

        assert discrete_ejection_epoch("inactive") == pytest.approx(
            constants.PAPER_INACTIVE_EJECTION_EPOCH, rel=0.01
        )
        assert discrete_ejection_epoch("semi-active") == pytest.approx(
            constants.PAPER_SEMI_ACTIVE_EJECTION_EPOCH, rel=0.01
        )


class TestBouncingAttackNumbers:
    def test_probability_half_at_one_third(self):
        model = repro.BouncingAttackModel(beta0=1 / 3, p0=0.5)
        assert model.exceed_threshold_probability(4000.0) == pytest.approx(0.5, abs=1e-3)

    def test_duration_estimate(self):
        model = repro.BouncingAttackModel(beta0=1 / 3, p0=0.5)
        assert model.log10_duration_probability(7000) == pytest.approx(-121.0, abs=0.5)

    def test_byzantine_ejection_epoch(self):
        model = repro.BouncingAttackModel(beta0=0.33, p0=0.5)
        assert model.byzantine_ejection_epoch() == pytest.approx(
            constants.PAPER_BOUNCING_BYZANTINE_EJECTION_EPOCH, rel=0.01
        )

    def test_equation14_window_at_one_third(self):
        model = repro.BouncingAttackModel(beta0=1 / 3, p0=0.55)
        lower, upper = model.feasible_p0_window()
        assert lower == pytest.approx(0.5)
        assert upper == pytest.approx(1.0)


class TestTable1EndToEnd:
    def test_all_scenarios_reproduce_their_outcomes(self):
        outcomes = repro.run_all_scenarios(beta0=0.33, threshold_beta0=0.25, max_epochs=5000)
        by_id = {outcome.scenario_id: outcome for outcome in outcomes}
        assert by_id["5.1"].conflicting_finalization_epoch is not None
        assert by_id["5.2.1"].conflicting_finalization_epoch is not None
        assert (
            by_id["5.2.1"].conflicting_finalization_epoch
            < by_id["5.1"].conflicting_finalization_epoch
        )
        assert by_id["5.2.2"].conflicting_finalization_epoch is not None
        assert (
            by_id["5.2.2"].conflicting_finalization_epoch
            >= by_id["5.2.1"].conflicting_finalization_epoch
        )
        assert by_id["5.2.3"].threshold_exceeded
        assert by_id["5.3"].outcome == "beta > 1/3 probably"


class TestPublicApiSurface:
    def test_version(self):
        assert repro.__version__

    def test_key_symbols_exported(self):
        for name in (
            "SpecConfig",
            "BeaconState",
            "Store",
            "LeakSimulation",
            "BouncingAttackModel",
            "SimulationEngine",
            "build_partitioned_simulation",
            "conflicting_finalization_time",
        ):
            assert hasattr(repro, name), name
