"""Tests for repro.analysis.distributions (Equations 18-22)."""

import math

import numpy as np
import pytest

from repro.analysis.distributions import BouncingStakeDistribution
from repro.leak.stake import semi_active_stake


@pytest.fixture
def distribution():
    return BouncingStakeDistribution(p0=0.5)


class TestConstruction:
    def test_defaults(self, distribution):
        assert distribution.s0 == 32.0
        assert distribution.ejection_balance == pytest.approx(16.75)
        assert distribution.diffusion == pytest.approx(6.25)
        assert distribution.drift == pytest.approx(1.5)

    def test_invalid_p0(self):
        with pytest.raises(ValueError):
            BouncingStakeDistribution(p0=0.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            BouncingStakeDistribution(p0=0.5, ejection_balance=40.0)


class TestUncappedLaw:
    def test_cdf_monotone_in_stake(self, distribution):
        t = 2000.0
        values = [distribution.cdf(s, t) for s in (5.0, 15.0, 25.0, 31.0, 40.0)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_cdf_limits(self, distribution):
        t = 2000.0
        assert distribution.cdf(1e-9, t) == pytest.approx(0.0, abs=1e-6)
        assert distribution.cdf(1e6, t) == pytest.approx(1.0, abs=1e-6)

    def test_median_is_semi_active_trajectory(self, distribution):
        # The median stake equals the deterministic semi-active trajectory
        # (the paper's observation about the log-normal mean).
        for t in (500.0, 2000.0, 4000.0):
            median = distribution.mean_stake(t)
            assert median == pytest.approx(semi_active_stake(t), rel=1e-9)
            assert distribution.cdf(median, t) == pytest.approx(0.5, abs=1e-9)

    def test_pdf_integrates_to_cdf_difference(self, distribution):
        t = 3000.0
        grid = np.linspace(10.0, 30.0, 4001)
        integral = np.trapezoid([distribution.pdf(float(s), t) for s in grid], grid)
        assert integral == pytest.approx(
            distribution.cdf(30.0, t) - distribution.cdf(10.0, t), abs=1e-4
        )

    def test_pdf_zero_for_nonpositive_stake(self, distribution):
        assert distribution.pdf(0.0, 100.0) == 0.0
        assert distribution.pdf(-1.0, 100.0) == 0.0

    def test_rejects_nonpositive_time(self, distribution):
        with pytest.raises(ValueError):
            distribution.cdf(10.0, 0.0)
        with pytest.raises(ValueError):
            distribution.pdf(10.0, -1.0)

    def test_quantile_inverts_cdf(self, distribution):
        t = 2500.0
        for q in (0.1, 0.5, 0.9):
            s = distribution.quantile(q, t)
            assert distribution.cdf(s, t) == pytest.approx(q, abs=1e-6)


class TestCappedLaw:
    def test_point_masses_between_zero_and_one(self, distribution):
        t = 4024.0
        assert 0.0 <= distribution.ejection_mass(t) <= 1.0
        assert 0.0 <= distribution.cap_mass(t) <= 1.0

    def test_total_mass_is_one(self, distribution):
        for t in (1000.0, 4024.0, 7000.0):
            assert distribution.total_mass(t) == pytest.approx(1.0, abs=5e-3)

    def test_capped_pdf_zero_outside_support(self, distribution):
        t = 4024.0
        assert distribution.capped_pdf(10.0, t) == 0.0
        assert distribution.capped_pdf(33.0, t) == 0.0
        assert distribution.capped_pdf(20.0, t) > 0.0

    def test_capped_cdf_limits(self, distribution):
        t = 4024.0
        assert distribution.capped_cdf(0.0, t) == pytest.approx(distribution.ejection_mass(t))
        assert distribution.capped_cdf(32.0, t) == pytest.approx(1.0)
        assert distribution.capped_cdf(-1.0, t) == 0.0

    def test_capped_cdf_monotone(self, distribution):
        t = 4024.0
        grid = np.linspace(0.0, 32.0, 200)
        values = [distribution.capped_cdf(float(x), t) for x in grid]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_ejection_mass_grows_over_time(self, distribution):
        assert distribution.ejection_mass(7000.0) > distribution.ejection_mass(3000.0)

    def test_cap_mass_shrinks_over_time(self, distribution):
        # Right after the attack starts some validators have not leaked yet
        # (mass at the 32-ETH cap); that mass vanishes as the leak progresses.
        assert distribution.cap_mass(10.0) > 0.01
        assert distribution.cap_mass(1000.0) < distribution.cap_mass(10.0)
        assert distribution.cap_mass(1000.0) == pytest.approx(0.0, abs=1e-6)

    def test_density_series_shapes(self, distribution):
        grid, density = distribution.density_series(4024.0, grid_points=101)
        assert len(grid) == len(density) == 101
        assert grid[0] == pytest.approx(16.75)
        assert grid[-1] == pytest.approx(32.0)
