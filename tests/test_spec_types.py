"""Tests for repro.spec.types."""

import pytest

from repro.spec.types import (
    GENESIS_ROOT,
    Root,
    compute_epoch_at_slot,
    compute_start_slot_at_epoch,
    is_epoch_boundary_slot,
)


class TestRoot:
    def test_from_label_is_deterministic(self):
        assert Root.from_label("a") == Root.from_label("a")

    def test_different_labels_give_different_roots(self):
        assert Root.from_label("a") != Root.from_label("b")

    def test_roots_are_hashable(self):
        roots = {Root.from_label("a"), Root.from_label("a"), Root.from_label("b")}
        assert len(roots) == 2

    def test_roots_are_orderable(self):
        values = sorted([Root.from_label("x"), Root.from_label("y")])
        assert values == sorted(values)

    def test_genesis_root_is_stable(self):
        assert GENESIS_ROOT == Root.from_label("genesis")

    def test_str_is_hex(self):
        root = Root.from_label("a")
        assert str(root) == root.hex


class TestSlotEpochConversions:
    def test_epoch_at_slot_zero(self):
        assert compute_epoch_at_slot(0, 32) == 0

    def test_epoch_at_slot_boundary(self):
        assert compute_epoch_at_slot(32, 32) == 1
        assert compute_epoch_at_slot(31, 32) == 0

    def test_epoch_at_slot_large(self):
        assert compute_epoch_at_slot(32 * 100 + 5, 32) == 100

    def test_start_slot_of_epoch(self):
        assert compute_start_slot_at_epoch(0, 32) == 0
        assert compute_start_slot_at_epoch(3, 32) == 96

    def test_epoch_boundary_detection(self):
        assert is_epoch_boundary_slot(0, 32)
        assert is_epoch_boundary_slot(64, 32)
        assert not is_epoch_boundary_slot(65, 32)

    def test_negative_slot_rejected(self):
        with pytest.raises(ValueError):
            compute_epoch_at_slot(-1, 32)

    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            compute_start_slot_at_epoch(-1, 32)

    def test_roundtrip(self):
        for epoch in (0, 1, 7, 123):
            slot = compute_start_slot_at_epoch(epoch, 32)
            assert compute_epoch_at_slot(slot, 32) == epoch
