"""Tests for repro.spec.config."""

import pytest

from repro import constants
from repro.spec.config import DEFAULT_CONFIG, SpecConfig


class TestSpecConfigDefaults:
    def test_mainnet_matches_paper_constants(self):
        cfg = SpecConfig.mainnet()
        assert cfg.slots_per_epoch == 32
        assert cfg.seconds_per_slot == 12
        assert cfg.max_effective_balance == 32.0
        assert cfg.ejection_balance == pytest.approx(16.75)
        assert cfg.inactivity_penalty_quotient == 2 ** 26
        assert cfg.inactivity_score_bias == 4
        assert cfg.min_epochs_to_inactivity_penalty == 4

    def test_seconds_per_epoch(self):
        cfg = SpecConfig.mainnet()
        assert cfg.seconds_per_epoch == 12 * 32 == constants.SECONDS_PER_EPOCH

    def test_supermajority_fraction(self):
        assert SpecConfig.mainnet().supermajority_fraction == pytest.approx(2 / 3)

    def test_default_config_is_mainnet(self):
        assert DEFAULT_CONFIG == SpecConfig.mainnet()

    def test_minimal_preserves_rule_structure(self):
        cfg = SpecConfig.minimal()
        assert cfg.inactivity_score_bias == 4
        assert cfg.slots_per_epoch == 4
        assert cfg.inactivity_penalty_quotient < SpecConfig.mainnet().inactivity_penalty_quotient


class TestSpecConfigHelpers:
    def test_epoch_of_slot(self):
        cfg = SpecConfig.mainnet()
        assert cfg.epoch_of_slot(0) == 0
        assert cfg.epoch_of_slot(31) == 0
        assert cfg.epoch_of_slot(32) == 1

    def test_start_slot_of_epoch(self):
        cfg = SpecConfig.mainnet()
        assert cfg.start_slot_of_epoch(2) == 64

    def test_with_overrides(self):
        cfg = SpecConfig.mainnet().with_overrides(slots_per_epoch=8)
        assert cfg.slots_per_epoch == 8
        # original untouched (frozen dataclass)
        assert SpecConfig.mainnet().slots_per_epoch == 32

    def test_to_dict_round_trips_key_fields(self):
        cfg = SpecConfig.mainnet()
        data = cfg.to_dict()
        assert data["slots_per_epoch"] == 32
        assert data["inactivity_penalty_quotient"] == 2 ** 26


class TestSpecConfigValidation:
    def test_rejects_nonpositive_slots_per_epoch(self):
        with pytest.raises(ValueError):
            SpecConfig(slots_per_epoch=0)

    def test_rejects_bad_ejection_balance(self):
        with pytest.raises(ValueError):
            SpecConfig(ejection_balance=40.0)
        with pytest.raises(ValueError):
            SpecConfig(ejection_balance=0.0)

    def test_rejects_nonpositive_quotient(self):
        with pytest.raises(ValueError):
            SpecConfig(inactivity_penalty_quotient=0)

    def test_rejects_zero_leak_delay(self):
        with pytest.raises(ValueError):
            SpecConfig(min_epochs_to_inactivity_penalty=0)
