"""Tests for repro.leak.ratios (Equations 5, 8, 10, 11, 13)."""

import math

import pytest

from repro import constants
from repro.leak.ratios import (
    active_ratio_honest_only,
    active_ratio_with_semi_active_byzantine,
    active_ratio_with_slashing_byzantine,
    byzantine_proportion,
    max_byzantine_proportion,
    min_beta0_to_exceed_threshold,
)


class TestEquation5:
    def test_initial_value_is_p0(self):
        assert active_ratio_honest_only(0.0, 0.4) == pytest.approx(0.4)

    def test_monotonically_increasing(self):
        values = [active_ratio_honest_only(t, 0.3) for t in range(0, 5000, 100)]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_tends_to_one(self):
        assert active_ratio_honest_only(30000.0, 0.2) == pytest.approx(1.0, abs=1e-6)

    def test_symmetric_exchange(self):
        # The two branches of an even split have identical ratios.
        assert active_ratio_honest_only(1000.0, 0.5) == pytest.approx(
            active_ratio_honest_only(1000.0, 1 - 0.5)
        )

    def test_p0_at_supermajority_already(self):
        assert active_ratio_honest_only(0.0, 0.7) == pytest.approx(0.7)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            active_ratio_honest_only(-1.0, 0.5)
        with pytest.raises(ValueError):
            active_ratio_honest_only(1.0, 1.5)


class TestEquation8:
    def test_initial_value(self):
        # At t=0 the ratio is p0(1-b)+b.
        assert active_ratio_with_slashing_byzantine(0.0, 0.5, 0.2) == pytest.approx(0.6)

    def test_reduces_to_equation5_without_byzantine(self):
        for t in (0.0, 500.0, 3000.0):
            assert active_ratio_with_slashing_byzantine(t, 0.4, 0.0) == pytest.approx(
                active_ratio_honest_only(t, 0.4)
            )

    def test_byzantine_help_accelerates(self):
        t = 2000.0
        assert active_ratio_with_slashing_byzantine(t, 0.5, 0.2) > active_ratio_honest_only(t, 0.5)

    def test_monotone_in_beta0(self):
        t = 1500.0
        values = [active_ratio_with_slashing_byzantine(t, 0.5, b) for b in (0.0, 0.1, 0.2, 0.3)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_beta_one_third_with_even_split_is_supermajority_at_zero(self):
        assert active_ratio_with_slashing_byzantine(0.0, 0.5, 1 / 3) == pytest.approx(2 / 3)


class TestEquation10:
    def test_initial_value(self):
        assert active_ratio_with_semi_active_byzantine(0.0, 0.5, 0.2) == pytest.approx(0.6)

    def test_slower_than_slashing_strategy(self):
        t = 2000.0
        assert active_ratio_with_semi_active_byzantine(
            t, 0.5, 0.2
        ) < active_ratio_with_slashing_byzantine(t, 0.5, 0.2)

    def test_faster_than_honest_only(self):
        t = 2000.0
        assert active_ratio_with_semi_active_byzantine(t, 0.5, 0.2) > active_ratio_honest_only(
            t, 0.5
        )

    def test_reduces_to_equation5_without_byzantine(self):
        for t in (0.0, 1000.0):
            assert active_ratio_with_semi_active_byzantine(t, 0.3, 0.0) == pytest.approx(
                active_ratio_honest_only(t, 0.3)
            )


class TestEquation11:
    def test_initial_value_is_beta0(self):
        assert byzantine_proportion(0.0, 0.5, 0.25) == pytest.approx(0.25)

    def test_grows_over_time(self):
        values = [byzantine_proportion(t, 0.5, 0.25) for t in range(0, 4600, 200)]
        assert values[-1] > values[0]

    def test_zero_byzantine_stays_zero(self):
        assert byzantine_proportion(3000.0, 0.5, 0.0) == 0.0


class TestEquation13:
    def test_paper_critical_point(self):
        # beta0 = 1 / (1 + 4 exp(-3*4685^2/2^28)) = 0.2421 at p0 = 0.5.
        critical = min_beta0_to_exceed_threshold(0.5)
        assert critical == pytest.approx(0.2421, abs=5e-4)

    def test_beta_max_formula(self):
        decay = math.exp(-3 * 4685 ** 2 / 2 ** 28)
        expected = 0.25 * decay / (0.5 * 0.75 + 0.25 * decay)
        assert max_byzantine_proportion(0.5, 0.25) == pytest.approx(expected)

    def test_beta_max_exceeds_third_above_critical(self):
        critical = min_beta0_to_exceed_threshold(0.5)
        assert max_byzantine_proportion(0.5, critical + 0.01) > 1 / 3
        assert max_byzantine_proportion(0.5, critical - 0.01) < 1 / 3

    def test_beta_max_monotone_in_beta0(self):
        values = [max_byzantine_proportion(0.5, b) for b in (0.1, 0.2, 0.3)]
        assert all(b > a for a, b in zip(values, values[1:]))

    def test_smaller_p0_needs_smaller_beta0(self):
        # With fewer honest active validators on the branch the Byzantine
        # share at ejection is larger, so the critical beta0 decreases.
        assert min_beta0_to_exceed_threshold(0.3) < min_beta0_to_exceed_threshold(0.5)

    def test_beta_max_larger_than_initial(self):
        assert max_byzantine_proportion(0.5, 0.25) > 0.25
