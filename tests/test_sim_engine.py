"""Tests for the slot-level simulation engine and scenario builders."""

import pytest

from repro.agents.honest import HonestAgent
from repro.sim.engine import SimulationEngine
from repro.sim.scenarios import (
    build_honest_simulation,
    build_offline_fraction_simulation,
    build_partitioned_simulation,
)
from repro.spec.config import SpecConfig
from repro.spec.validator import make_registry


class TestEngineConstruction:
    def test_requires_agent_per_validator(self):
        registry = make_registry(4, SpecConfig.minimal())
        agents = {0: HonestAgent(0)}
        with pytest.raises(ValueError):
            SimulationEngine(registry=registry, agents=agents, config=SpecConfig.minimal())

    def test_rejects_nonpositive_epochs(self):
        engine = build_honest_simulation(n_validators=6)
        with pytest.raises(ValueError):
            engine.run(0)

    def test_honest_and_byzantine_indices(self):
        engine = build_partitioned_simulation(
            n_validators=10, byzantine_fraction=0.2, byzantine_strategy="double-voting"
        )
        assert len(engine.byzantine_indices()) == 2
        assert len(engine.honest_indices()) == 8


class TestHealthyNetwork:
    def test_liveness_finalized_chain_grows(self):
        engine = build_honest_simulation(n_validators=10)
        result = engine.run(6)
        assert result.liveness_held(min_progress=2)
        assert not result.safety_violated()

    def test_all_honest_nodes_agree_on_finalized_chain(self):
        engine = build_honest_simulation(n_validators=8)
        result = engine.run(5)
        finalized = {state.finalized_checkpoint for state in result.honest_states()}
        assert len(finalized) == 1

    def test_no_leak_in_healthy_network(self):
        engine = build_honest_simulation(n_validators=8)
        result = engine.run(7)
        assert result.leak_epochs() == []

    def test_stakes_do_not_collapse(self):
        engine = build_honest_simulation(n_validators=8)
        result = engine.run(5)
        representative = result.honest_states()[0]
        assert all(v.stake > 31.0 for v in representative.validators)

    def test_snapshots_recorded_each_epoch(self):
        engine = build_honest_simulation(n_validators=8)
        result = engine.run(4)
        assert [s.epoch for s in result.snapshots] == [0, 1, 2, 3]


class TestOfflineValidators:
    def test_large_offline_fraction_stalls_finality_and_starts_leak(self):
        engine = build_offline_fraction_simulation(n_validators=10, offline_fraction=0.4)
        result = engine.run(8)
        # Finality cannot progress with only 60% of the stake attesting...
        assert result.max_finalized_epoch() == 0
        # ...so the inactivity leak eventually starts.
        assert result.leak_epochs()

    def test_small_offline_fraction_keeps_liveness(self):
        engine = build_offline_fraction_simulation(n_validators=10, offline_fraction=0.2)
        result = engine.run(6)
        assert result.liveness_held(min_progress=1)

    def test_offline_validators_leak_stake(self):
        engine = build_offline_fraction_simulation(n_validators=10, offline_fraction=0.4)
        result = engine.run(10)
        state = result.honest_states()[0]
        offline_stakes = [v.stake for v in state.validators[6:]]
        online_stakes = [v.stake for v in state.validators[:6]]
        assert max(offline_stakes) < min(online_stakes)


class TestPartitionedNetwork:
    def test_partition_halts_finalization(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        result = engine.run(6)
        assert result.max_finalized_epoch() == 0
        assert result.leak_epochs()

    def test_each_side_builds_its_own_branch(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        engine.run(4)
        node_side_1 = engine.nodes[engine.honest_indices()[0]]
        node_side_2 = engine.nodes[engine.honest_indices()[-1]]
        assert node_side_1.head() != node_side_2.head()

    def test_gst_heals_partition_and_finality_resumes(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5, gst_epoch=2)
        result = engine.run(8)
        assert result.max_finalized_epoch() > 0
        assert not result.safety_violated()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            build_partitioned_simulation(byzantine_strategy="teleporting")

    def test_strategy_without_byzantine_rejected(self):
        with pytest.raises(ValueError):
            build_partitioned_simulation(byzantine_fraction=0.0, byzantine_strategy="bouncing")


class TestDoubleVotingAttack:
    def test_double_voters_get_slashed_after_gst(self):
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="double-voting",
            gst_epoch=3,
        )
        result = engine.run(8)
        # After the partition heals, honest nodes see the conflicting
        # attestations and slash the equivocating validators.
        assert result.slashed_indices
        assert result.slashed_indices <= set(result.byzantine_indices)

    def test_double_voters_not_slashed_before_gst(self):
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="double-voting",
            gst_epoch=10 ** 6,
        )
        result = engine.run(4)
        assert not result.slashed_indices


class TestBouncingAttack:
    def test_withheld_votes_flow_through_adversary(self):
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="bouncing",
            gst_epoch=1,
        )
        result = engine.run(5)
        assert result.transport_stats.withheld > 0
