"""Tests for the (p0, beta0) sweep-grid extension experiment."""

import pytest

from repro.experiments import registry, sweep_grid
from repro.analysis.finalization_time import ByzantineStrategy


class TestSweepGrid:
    def test_grid_shapes_and_rows(self):
        result = sweep_grid.run(p0_values=(0.4, 0.5), beta0_values=(0.0, 0.2))
        assert result.slashing_grid.shape == (2, 2)
        assert len(result.rows()) == 4
        assert "sweep" in result.format_text()

    def test_even_split_is_worst_case_for_every_beta(self):
        result = sweep_grid.run()
        for beta0 in result.beta0_values:
            assert result.worst_case_split(beta0) == pytest.approx(0.5)
            assert result.worst_case_split(
                beta0, strategy=ByzantineStrategy.NON_SLASHING
            ) == pytest.approx(0.5)

    def test_symmetric_in_p0(self):
        result = sweep_grid.run(p0_values=(0.3, 0.7), beta0_values=(0.1,))
        assert result.slashing_grid[0, 0] == pytest.approx(result.slashing_grid[1, 0])
        assert result.non_slashing_grid[0, 0] == pytest.approx(result.non_slashing_grid[1, 0])

    def test_monotone_in_beta0(self):
        result = sweep_grid.run(p0_values=(0.5,), beta0_values=(0.0, 0.1, 0.2, 0.3))
        row = result.slashing_grid[0]
        assert all(b <= a + 1e-9 for a, b in zip(row, row[1:]))

    def test_paper_corner_values(self):
        result = sweep_grid.run(p0_values=(0.5,), beta0_values=(0.0, 0.2, 0.33))
        assert result.slashing_grid[0, 0] == pytest.approx(4685.0)
        assert result.slashing_grid[0, 1] == pytest.approx(3107, abs=1)
        assert result.slashing_grid[0, 2] == pytest.approx(502, abs=1)

    def test_registered(self):
        assert "sweep-grid" in registry.list_ids()
        assert hasattr(registry.run("sweep-grid"), "rows")


class TestEmpiricalGapMode:
    """The Monte-Carlo validation layer of the sweep (``n_trials``)."""

    KWARGS = dict(
        p0_values=(0.4, 0.5),
        beta0_values=(0.3, 0.33),
        n_trials=6,
        horizon=15,
        n_honest=8,
        seed=1,
    )

    def test_gap_grids_present_and_bounded(self):
        from repro.spec.config import SpecConfig

        result = sweep_grid.run(**self.KWARGS)
        assert result.has_empirical
        assert result.exceed_closed_form.shape == (2, 2)
        assert result.exceed_empirical.shape == (2, 2)
        assert ((result.exceed_empirical >= 0) & (result.exceed_empirical <= 1)).all()
        assert 0.0 <= result.max_exceed_gap() <= 1.0
        rows = result.rows()
        assert {"exceed_closed_form", "exceed_empirical", "exceed_gap"} <= set(rows[0])
        assert "closed-form vs empirical" in result.format_text()

    def test_serial_equals_parallel(self):
        serial = sweep_grid.run(jobs=1, **self.KWARGS)
        parallel = sweep_grid.run(jobs=2, **self.KWARGS)
        assert (serial.exceed_empirical == parallel.exceed_empirical).all()
        assert (serial.exceed_closed_form == parallel.exceed_closed_form).all()

    def test_default_run_has_no_empirical_layer(self):
        result = sweep_grid.run(p0_values=(0.5,), beta0_values=(0.3,))
        assert not result.has_empirical
        assert result.exceed_gap is None
        with pytest.raises(ValueError):
            result.max_exceed_gap()
        assert "exceed_gap" not in result.rows()[0]

    def test_invalid_trials_rejected(self):
        with pytest.raises(ValueError):
            sweep_grid.run(p0_values=(0.5,), beta0_values=(0.3,), n_trials=0)

    def test_registry_reports_batched_options(self):
        accepted = registry.get("sweep-grid").accepted_options()
        assert {"jobs", "seed", "n_trials", "batch", "backend"} <= accepted
        accepted_fig10 = registry.get("fig10-montecarlo").accepted_options()
        assert {"batch", "backend"} <= accepted_fig10
