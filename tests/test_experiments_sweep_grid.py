"""Tests for the (p0, beta0) sweep-grid extension experiment."""

import pytest

from repro.experiments import registry, sweep_grid
from repro.analysis.finalization_time import ByzantineStrategy


class TestSweepGrid:
    def test_grid_shapes_and_rows(self):
        result = sweep_grid.run(p0_values=(0.4, 0.5), beta0_values=(0.0, 0.2))
        assert result.slashing_grid.shape == (2, 2)
        assert len(result.rows()) == 4
        assert "sweep" in result.format_text()

    def test_even_split_is_worst_case_for_every_beta(self):
        result = sweep_grid.run()
        for beta0 in result.beta0_values:
            assert result.worst_case_split(beta0) == pytest.approx(0.5)
            assert result.worst_case_split(
                beta0, strategy=ByzantineStrategy.NON_SLASHING
            ) == pytest.approx(0.5)

    def test_symmetric_in_p0(self):
        result = sweep_grid.run(p0_values=(0.3, 0.7), beta0_values=(0.1,))
        assert result.slashing_grid[0, 0] == pytest.approx(result.slashing_grid[1, 0])
        assert result.non_slashing_grid[0, 0] == pytest.approx(result.non_slashing_grid[1, 0])

    def test_monotone_in_beta0(self):
        result = sweep_grid.run(p0_values=(0.5,), beta0_values=(0.0, 0.1, 0.2, 0.3))
        row = result.slashing_grid[0]
        assert all(b <= a + 1e-9 for a, b in zip(row, row[1:]))

    def test_paper_corner_values(self):
        result = sweep_grid.run(p0_values=(0.5,), beta0_values=(0.0, 0.2, 0.33))
        assert result.slashing_grid[0, 0] == pytest.approx(4685.0)
        assert result.slashing_grid[0, 1] == pytest.approx(3107, abs=1)
        assert result.slashing_grid[0, 2] == pytest.approx(502, abs=1)

    def test_registered(self):
        assert "sweep-grid" in registry.list_ids()
        assert hasattr(registry.run("sweep-grid"), "rows")
