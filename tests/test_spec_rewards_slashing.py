"""Tests for repro.spec.rewards and repro.spec.slashing."""

import pytest

from repro.spec.attestation import Attestation
from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.rewards import attestation_penalty, base_reward, process_attestation_rewards
from repro.spec.slashing import (
    SlashingDetector,
    SlashingEvidence,
    apply_slashing,
    detect_and_slash,
)
from repro.spec.state import BeaconState
from repro.spec.types import Root
from repro.spec.validator import make_registry


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"c{epoch}"))


def att(validator: int, target_label: str, target_epoch: int = 1, source_epoch: int = 0) -> Attestation:
    return Attestation(
        validator_index=validator,
        slot=target_epoch * 32 + 1,
        head_root=Root.from_label(target_label),
        ffg=FFGVote(source=cp(source_epoch, "genesis") if source_epoch else GENESIS_CHECKPOINT,
                    target=cp(target_epoch, target_label)),
    )


@pytest.fixture
def state():
    return BeaconState.genesis(make_registry(8), SpecConfig.mainnet())


class TestRewards:
    def test_base_reward_proportional_to_stake(self, state):
        assert base_reward(state, 0) == pytest.approx(32.0 / 2 ** 21)
        state.validators[0].stake = 16.0
        assert base_reward(state, 0) == pytest.approx(16.0 / 2 ** 21)

    def test_active_rewarded_outside_leak_up_to_cap(self, state):
        # A validator whose stake dropped below the cap earns it back...
        state.validators[0].stake = 31.0
        summary = process_attestation_rewards(state, active_indices={0, 1}, in_leak=False)
        assert summary.total_rewards > 0
        assert summary.rewarded_indices == [0]
        assert state.validators[0].stake > 31.0
        # ...while a validator already at the 32-ETH cap stays there.
        assert state.validators[1].stake == pytest.approx(32.0)

    def test_no_rewards_during_leak(self, state):
        state.validators[0].stake = 31.0
        summary = process_attestation_rewards(state, active_indices={0, 1}, in_leak=True)
        assert summary.total_rewards == 0.0
        assert state.validators[0].stake == pytest.approx(31.0)

    def test_inactive_penalized(self, state):
        summary = process_attestation_rewards(state, active_indices=set(), in_leak=False)
        assert summary.total_penalties > 0
        assert all(v.stake < 32.0 for v in state.validators)

    def test_attestation_penalty_much_smaller_than_inactivity_penalty(self, state):
        # With a large inactivity score the leak penalty dominates, matching
        # the paper's remark that attestation penalties are negligible then.
        state.validators[0].inactivity_score = 100
        leak_penalty = 100 * 32.0 / 2 ** 26
        assert attestation_penalty(state, 0) < leak_penalty

    def test_exited_validators_ignored(self, state):
        state.validators[0].exit(0)
        summary = process_attestation_rewards(state, active_indices=set(), in_leak=False)
        assert 0 not in summary.penalized_indices

    def test_zero_stake_validator_not_recorded_as_penalized(self, state):
        # Regression: a zero-stake validator has nothing to deduct, so it
        # must not appear in penalized_indices (mirroring rewarded_indices,
        # which only ever recorded non-zero credits).
        state.validators[0].stake = 0.0
        summary = process_attestation_rewards(state, active_indices=set(), in_leak=False)
        assert 0 not in summary.penalized_indices
        assert sorted(summary.penalized_indices) == list(range(1, 8))
        assert state.validators[0].stake == 0.0

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_backends_agree_on_summary(self, state, backend):
        state.validators[0].stake = 31.0
        summary = process_attestation_rewards(
            state, active_indices={0, 1}, in_leak=False, backend=backend
        )
        assert summary.rewarded_indices == [0]
        assert sorted(summary.penalized_indices) == list(range(2, 8))


class TestSlashingDetector:
    def test_detects_double_vote(self):
        detector = SlashingDetector()
        assert detector.observe(att(1, "branch-a")) is None
        evidence = detector.observe(att(1, "branch-b"))
        assert evidence is not None
        assert evidence.is_double_vote
        assert evidence.validator_index == 1

    def test_ignores_duplicate_attestation(self):
        detector = SlashingDetector()
        detector.observe(att(1, "branch-a"))
        assert detector.observe(att(1, "branch-a")) is None

    def test_no_evidence_across_validators(self):
        detector = SlashingDetector()
        detector.observe(att(1, "branch-a"))
        assert detector.observe(att(2, "branch-b")) is None

    def test_only_first_evidence_kept(self):
        detector = SlashingDetector()
        detector.observe(att(1, "a"))
        first = detector.observe(att(1, "b"))
        second = detector.observe(att(1, "c"))
        assert first is not None
        assert second is None
        assert len(detector.pending_evidence()) == 1

    def test_detects_surround_vote(self):
        detector = SlashingDetector()
        outer = Attestation(
            validator_index=3,
            slot=200,
            head_root=Root.from_label("x"),
            ffg=FFGVote(source=cp(1), target=cp(6)),
        )
        inner = Attestation(
            validator_index=3,
            slot=150,
            head_root=Root.from_label("y"),
            ffg=FFGVote(source=cp(2), target=cp(4)),
        )
        detector.observe(inner)
        evidence = detector.observe(outer)
        assert evidence is not None
        assert evidence.is_surround_vote

    def test_honest_votes_never_trigger(self):
        detector = SlashingDetector()
        for epoch in range(1, 6):
            attestation = Attestation(
                validator_index=5,
                slot=epoch * 32 + 1,
                head_root=Root.from_label(f"h{epoch}"),
                ffg=FFGVote(source=cp(epoch - 1, f"c{epoch-1}"), target=cp(epoch, f"c{epoch}")),
            )
            assert detector.observe(attestation) is None


class TestSlashingEvidence:
    def test_rejects_non_slashable_pair(self):
        with pytest.raises(ValueError):
            SlashingEvidence(validator_index=1, first=att(1, "a", 1), second=att(1, "b", 2))

    def test_rejects_wrong_validator(self):
        with pytest.raises(ValueError):
            SlashingEvidence(validator_index=2, first=att(1, "a"), second=att(1, "b"))


class TestApplySlashing:
    def test_slashing_penalizes_and_ejects(self, state):
        outcome = apply_slashing(state, [3])
        assert outcome.slashed_indices == [3]
        assert state.validators[3].slashed
        assert state.validators[3].stake == pytest.approx(32.0 * (1 - 1 / 32))
        assert not state.validators[3].is_active(state.current_epoch + 1)

    def test_double_slashing_is_noop(self, state):
        apply_slashing(state, [3])
        outcome = apply_slashing(state, [3])
        assert outcome.slashed_indices == []
        assert state.validators[3].stake == pytest.approx(32.0 * (1 - 1 / 32))

    def test_detect_and_slash_end_to_end(self, state):
        attestations = [att(2, "branch-a"), att(2, "branch-b"), att(4, "branch-a")]
        outcome, evidence = detect_and_slash(state, attestations)
        assert [e.validator_index for e in evidence] == [2]
        assert outcome.slashed_indices == [2]
        assert not state.validators[4].slashed

    def test_ejected_validator_cannot_be_slashed(self, state):
        # Regression: a validator already ejected via the 16.75-ETH rule has
        # left the active set — slashing evidence arriving afterwards must
        # not charge it a penalty (nor flag it slashed).
        state.validators[3].stake = 16.0
        state.validators[3].exit(state.current_epoch)  # ejected, not slashed
        outcome = apply_slashing(state, [3, 5])
        assert outcome.slashed_indices == [5]
        assert not state.validators[3].slashed
        assert state.validators[3].stake == 16.0
        assert outcome.total_penalty == pytest.approx(32.0 / 32)

    def test_duplicate_indices_charged_once(self, state):
        outcome = apply_slashing(state, [6, 6, 6])
        assert outcome.slashed_indices == [6]
        assert state.validators[6].stake == pytest.approx(32.0 * (1 - 1 / 32))

    @pytest.mark.parametrize("backend", ["numpy", "python"])
    def test_backends_agree(self, state, backend):
        outcome = apply_slashing(state, [1, 4], backend=backend)
        assert outcome.slashed_indices == [1, 4]
        assert state.validators[1].slashed and state.validators[4].slashed
        assert not state.validators[1].is_active(state.current_epoch + 1)
