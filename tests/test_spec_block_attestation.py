"""Tests for repro.spec.block and repro.spec.attestation."""

import pytest

from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.checkpoint import Checkpoint, FFGVote
from repro.spec.types import GENESIS_ROOT, Root


def cp(epoch: int, label: str = "") -> Checkpoint:
    return Checkpoint(epoch=epoch, root=Root.from_label(label or f"block-{epoch}"))


def att(validator: int, slot: int, head: str, src: int, tgt: int, tgt_label: str = "") -> Attestation:
    return Attestation(
        validator_index=validator,
        slot=slot,
        head_root=Root.from_label(head),
        ffg=FFGVote(source=cp(src), target=cp(tgt, tgt_label or f"block-{tgt}")),
    )


class TestBeaconBlock:
    def test_genesis_block(self):
        genesis = BeaconBlock.genesis()
        assert genesis.is_genesis()
        assert genesis.root == GENESIS_ROOT
        assert genesis.slot == 0

    def test_create_derives_root_from_content(self):
        a = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT)
        b = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT)
        assert a.root == b.root

    def test_branch_tag_forces_distinct_roots(self):
        a = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT, branch_tag="x")
        b = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT, branch_tag="y")
        assert a.root != b.root

    def test_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            BeaconBlock(slot=-1, proposer_index=0, parent_root=GENESIS_ROOT, root=GENESIS_ROOT)

    def test_rejects_negative_proposer(self):
        with pytest.raises(ValueError):
            BeaconBlock(slot=1, proposer_index=-1, parent_root=GENESIS_ROOT, root=GENESIS_ROOT)

    def test_block_carries_attestations_and_evidence(self):
        attestation = att(3, 1, "head", 0, 1)
        block = BeaconBlock.create(
            slot=2,
            proposer_index=1,
            parent_root=GENESIS_ROOT,
            attestations=(attestation,),
            slashing_evidence=(7,),
        )
        assert block.attestations == (attestation,)
        assert block.slashing_evidence == (7,)


class TestAttestation:
    def test_fields(self):
        attestation = att(1, 5, "head", 0, 1)
        assert attestation.target_epoch == 1
        assert attestation.source.epoch == 0

    def test_rejects_negative_validator(self):
        with pytest.raises(ValueError):
            att(-1, 0, "h", 0, 0)

    def test_rejects_negative_slot(self):
        with pytest.raises(ValueError):
            att(0, -1, "h", 0, 0)

    def test_double_vote_detection(self):
        a = att(1, 33, "head-a", 0, 1, "branch-a")
        b = att(1, 34, "head-b", 0, 1, "branch-b")
        assert a.is_double_vote_with(b)
        assert a.is_slashable_with(b)

    def test_double_vote_requires_same_validator(self):
        a = att(1, 33, "head-a", 0, 1, "branch-a")
        b = att(2, 34, "head-b", 0, 1, "branch-b")
        assert not a.is_double_vote_with(b)
        assert not a.is_slashable_with(b)

    def test_surround_vote_detection(self):
        outer = Attestation(
            validator_index=1,
            slot=160,
            head_root=Root.from_label("h1"),
            ffg=FFGVote(source=cp(1), target=cp(5)),
        )
        inner = Attestation(
            validator_index=1,
            slot=128,
            head_root=Root.from_label("h2"),
            ffg=FFGVote(source=cp(2), target=cp(4)),
        )
        assert outer.is_surround_vote_with(inner)
        assert inner.is_surround_vote_with(outer)
        assert outer.is_slashable_with(inner)

    def test_honest_consecutive_votes_not_slashable(self):
        first = att(1, 33, "head", 0, 1)
        second = Attestation(
            validator_index=1,
            slot=65,
            head_root=Root.from_label("head2"),
            ffg=FFGVote(source=cp(1), target=cp(2)),
        )
        assert not first.is_slashable_with(second)
