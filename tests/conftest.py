"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.spec.config import SpecConfig
from repro.spec.validator import make_registry


@pytest.fixture
def mainnet_config() -> SpecConfig:
    """The mainnet-like configuration used by the paper."""
    return SpecConfig.mainnet()


@pytest.fixture
def minimal_config() -> SpecConfig:
    """The scaled-down configuration for fast protocol-level tests."""
    return SpecConfig.minimal()


@pytest.fixture
def small_registry(mainnet_config: SpecConfig):
    """Ten honest validators at 32 ETH."""
    return make_registry(10, mainnet_config)


@pytest.fixture
def mixed_registry(mainnet_config: SpecConfig):
    """Ten validators, three of which are Byzantine."""
    return make_registry(10, mainnet_config, byzantine_fraction=0.3)
