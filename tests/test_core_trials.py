"""Tests for the seeded parallel trial runner and its consumers.

The headline property: a seeded run's results are bit-identical whatever
``jobs`` is — chunking and per-chunk/per-trial seeds depend only on the
trial count, the chunk size and the root seed.
"""

import numpy as np
import pytest

from repro.analysis.montecarlo import BouncingMonteCarlo
from repro.core.trials import (
    DispatchCancelled,
    TaskChunk,
    TrialChunk,
    group_chunks,
    parallel_map,
    plan_chunks,
    plan_task_chunks,
    resolve_jobs,
    run_chunk_groups,
    run_chunked,
    run_task_chunks,
    run_trials,
)
from repro.experiments import registry
from repro.experiments.runner import build_parser, run_experiments
from repro.spec.config import SpecConfig


def draw_sum(trial_index, rng):
    """Picklable per-trial worker: a few draws folded into one float."""
    return trial_index, float(np.sum(rng.random(5)))


def chunk_lengths(chunk: TrialChunk) -> list:
    return [chunk.start + offset for offset in range(chunk.size)]


def square_chunk(chunk: TaskChunk, offset: int = 0) -> list:
    """Picklable task-chunk worker: one squared value per task."""
    return [task * task + offset for task in chunk.tasks]


def short_chunk(chunk: TaskChunk) -> list:
    """Defective worker: drops the last task's result."""
    return [task for task in chunk.tasks[:-1]]


class TestChunkPlanning:
    def test_chunks_cover_all_trials(self):
        chunks = plan_chunks(10, seed=0, chunk_size=4)
        assert [(c.start, c.size) for c in chunks] == [(0, 4), (4, 4), (8, 2)]

    def test_plan_is_deterministic(self):
        first = plan_chunks(7, seed=3, chunk_size=2)
        second = plan_chunks(7, seed=3, chunk_size=2)
        for a, b in zip(first, second):
            assert np.array_equal(
                a.rng().random(4), b.rng().random(4)
            )

    def test_different_seeds_differ(self):
        a = plan_chunks(1, seed=0)[0].rng().random(4)
        b = plan_chunks(1, seed=1)[0].rng().random(4)
        assert not np.array_equal(a, b)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_chunks(0)
        with pytest.raises(ValueError):
            plan_chunks(5, chunk_size=0)

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestChunkPlanningEdgeCases:
    def test_zero_trials_rejected(self):
        # A zero-trial run is an error, not an empty plan: every consumer
        # (run_chunked, run_chunk_groups, the Monte-Carlo layers) validates
        # its trial count before planning.
        with pytest.raises(ValueError):
            plan_chunks(0, seed=3)
        with pytest.raises(ValueError):
            run_chunked(lambda chunk: [], 0, seed=3)
        with pytest.raises(ValueError):
            run_chunk_groups(lambda group: [], 0, seed=3)

    def test_single_trial_chunks(self):
        chunks = plan_chunks(5, seed=1, chunk_size=1)
        assert [(c.start, c.size) for c in chunks] == [
            (0, 1), (1, 1), (2, 1), (3, 1), (4, 1)
        ]

    @pytest.mark.parametrize(
        "n_trials,chunk_size", [(10, 3), (7, 7), (1, 64), (13, 5), (64, 63)]
    )
    def test_uneven_splits_cover_every_trial_exactly_once(self, n_trials, chunk_size):
        chunks = plan_chunks(n_trials, seed=0, chunk_size=chunk_size)
        covered = [
            index for chunk in chunks for index in range(chunk.start, chunk.stop)
        ]
        assert covered == list(range(n_trials))
        assert all(chunk.size >= 1 for chunk in chunks)

    def test_jobs_exceeding_trials(self):
        # More workers than trials must not duplicate or drop results.
        few = run_trials(draw_sum, 3, seed=11, jobs=8, chunk_size=1)
        serial = run_trials(draw_sum, 3, seed=11, jobs=1, chunk_size=1)
        assert few == serial
        assert [index for index, _ in few] == [0, 1, 2]


def group_draw_worker(group):
    """Picklable group worker: per-chunk generators drawn in chunk order."""
    results = []
    for chunk in group:
        rng = chunk.rng()
        results.extend(float(value) for value in rng.random(chunk.size))
    return results


class TestChunkGrouping:
    def test_grouping_preserves_order_and_coverage(self):
        chunks = plan_chunks(50, seed=2, chunk_size=7)
        for batch in (1, 7, 10, 14, 49, 100):
            groups = group_chunks(chunks, batch)
            assert [c for group in groups for c in group] == chunks

    def test_groups_respect_batch_budget(self):
        chunks = plan_chunks(60, seed=0, chunk_size=8)
        for group in group_chunks(chunks, 20):
            assert sum(c.size for c in group) <= 20

    def test_oversized_chunk_forms_its_own_group(self):
        chunks = plan_chunks(10, seed=0, chunk_size=10)
        groups = group_chunks(chunks, 3)
        assert len(groups) == 1 and groups[0] == chunks

    def test_invalid_batch_rejected(self):
        chunks = plan_chunks(4, seed=0, chunk_size=2)
        with pytest.raises(ValueError):
            group_chunks(chunks, 0)


class TestRunChunkGroups:
    def test_results_independent_of_batch(self):
        baseline = run_chunk_groups(
            group_draw_worker, 33, seed=9, chunk_size=5, batch=1
        )
        assert len(baseline) == 33
        for batch in (5, 12, 33, None):
            assert (
                run_chunk_groups(
                    group_draw_worker, 33, seed=9, chunk_size=5, batch=batch
                )
                == baseline
            )

    def test_results_independent_of_jobs(self):
        serial = run_chunk_groups(
            group_draw_worker, 24, seed=4, chunk_size=4, batch=8, jobs=1
        )
        parallel = run_chunk_groups(
            group_draw_worker, 24, seed=4, chunk_size=4, batch=8, jobs=3
        )
        assert serial == parallel

    def test_matches_per_chunk_runner_streams(self):
        # The grouped runner must consume exactly the per-chunk streams of
        # run_chunked: same plan, same seeds, same draws.
        def chunk_worker(chunk):
            rng = chunk.rng()
            return [float(value) for value in rng.random(chunk.size)]

        chunked = run_chunked(chunk_worker, 21, seed=6, chunk_size=4)
        grouped = run_chunk_groups(
            group_draw_worker, 21, seed=6, chunk_size=4, batch=16
        )
        assert chunked == grouped

    def test_group_worker_must_return_one_result_per_trial(self):
        def bad_worker(group):
            return [0] * (sum(chunk.size for chunk in group) + 1)

        with pytest.raises(ValueError):
            run_chunk_groups(bad_worker, 6, seed=0, chunk_size=2, batch=4)


class TestRunTrials:
    def test_serial_equals_parallel(self):
        serial = run_trials(draw_sum, 9, seed=42, jobs=1, chunk_size=3)
        parallel = run_trials(draw_sum, 9, seed=42, jobs=3, chunk_size=3)
        assert serial == parallel

    def test_results_ordered_by_trial(self):
        results = run_trials(draw_sum, 6, seed=0, chunk_size=2)
        assert [index for index, _ in results] == list(range(6))

    def test_chunk_size_does_not_change_per_trial_streams(self):
        coarse = run_trials(draw_sum, 8, seed=5, chunk_size=8)
        fine = run_trials(draw_sum, 8, seed=5, chunk_size=1)
        assert coarse == fine

    def test_chunk_worker_must_return_one_result_per_trial(self):
        def bad_worker(chunk):
            return [0] * (chunk.size + 1)

        with pytest.raises(ValueError):
            run_chunked(bad_worker, 4, seed=0, chunk_size=2)


class TestParallelMap:
    def test_order_preserved(self):
        items = list(range(20))
        assert parallel_map(square, items, jobs=1) == [i * i for i in items]

    def test_parallel_matches_serial(self):
        items = list(range(10))
        assert parallel_map(square, items, jobs=2) == parallel_map(
            square, items, jobs=1
        )


def square(x):
    return x * x


class TestTaskChunks:
    """The task-generic chunked runner behind the slot-sim sweep engine."""

    def test_plan_covers_all_tasks_in_order(self):
        chunks = plan_task_chunks(list("abcdefg"), chunk_size=3)
        assert [(c.start, c.tasks) for c in chunks] == [
            (0, ("a", "b", "c")),
            (3, ("d", "e", "f")),
            (6, ("g",)),
        ]
        assert [c.stop for c in chunks] == [3, 6, 7]

    def test_plan_of_no_tasks_is_empty(self):
        assert plan_task_chunks([]) == []
        assert run_task_chunks(square_chunk, []) == []

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            plan_task_chunks([1], chunk_size=0)

    def test_results_in_task_order(self):
        tasks = list(range(11))
        assert run_task_chunks(square_chunk, tasks, chunk_size=4) == [
            t * t for t in tasks
        ]

    def test_jobs_and_chunk_size_invariant(self):
        tasks = list(range(10))
        serial = run_task_chunks(square_chunk, tasks, jobs=1, chunk_size=4)
        parallel = run_task_chunks(square_chunk, tasks, jobs=2, chunk_size=2)
        fine = run_task_chunks(square_chunk, tasks, jobs=3, chunk_size=1)
        assert serial == parallel == fine

    def test_worker_args_forwarded(self):
        assert run_task_chunks(
            square_chunk, [1, 2], chunk_size=1, worker_args=(10,)
        ) == [11, 14]

    def test_result_count_validated(self):
        with pytest.raises(ValueError):
            run_task_chunks(short_chunk, [1, 2, 3], chunk_size=3)


class TestObservableCancellableDispatch:
    """The service-facing dispatch hooks: per-chunk observation + cancel."""

    def test_on_chunk_done_fires_in_plan_order(self):
        observed = []
        results = run_task_chunks(
            square_chunk,
            list(range(7)),
            jobs=1,
            chunk_size=3,
            on_chunk_done=lambda chunk, rows: observed.append(
                (chunk.start, tuple(rows))
            ),
        )
        assert results == [t * t for t in range(7)]
        assert observed == [(0, (0, 1, 4)), (3, (9, 16, 25)), (6, (36,))]

    def test_on_chunk_done_fires_under_process_pool(self):
        observed = []
        results = run_task_chunks(
            square_chunk,
            list(range(6)),
            jobs=2,
            chunk_size=2,
            on_chunk_done=lambda chunk, rows: observed.append(chunk.start),
        )
        assert results == [t * t for t in range(6)]
        assert observed == [0, 2, 4]

    def test_cancel_raises_after_observed_chunks(self):
        observed = []

        def on_chunk(chunk, rows):
            observed.append(chunk.start)

        with pytest.raises(DispatchCancelled):
            run_task_chunks(
                square_chunk,
                list(range(6)),
                jobs=1,
                chunk_size=2,
                on_chunk_done=on_chunk,
                cancel=lambda: len(observed) >= 2,
            )
        # Chunks observed before the cancellation are final.
        assert observed == [0, 2]

    def test_cancel_before_start_runs_nothing(self):
        observed = []
        with pytest.raises(DispatchCancelled):
            run_task_chunks(
                square_chunk,
                [1, 2],
                jobs=1,
                chunk_size=1,
                on_chunk_done=lambda chunk, rows: observed.append(chunk.start),
                cancel=lambda: True,
            )
        assert observed == []

    def test_cancel_under_process_pool(self):
        observed = []
        with pytest.raises(DispatchCancelled):
            run_task_chunks(
                square_chunk,
                list(range(8)),
                jobs=2,
                chunk_size=2,
                on_chunk_done=lambda chunk, rows: observed.append(chunk.start),
                cancel=lambda: len(observed) >= 1,
            )
        assert observed[0] == 0

    def test_no_hooks_is_the_legacy_path(self):
        tasks = list(range(9))
        plain = run_task_chunks(square_chunk, tasks, jobs=1, chunk_size=4)
        hooked = run_task_chunks(
            square_chunk,
            tasks,
            jobs=1,
            chunk_size=4,
            on_chunk_done=lambda chunk, rows: None,
            cancel=lambda: False,
        )
        assert plain == hooked


class TestMonteCarloParallelism:
    """Regression: seeded Monte-Carlo runs are identical serial vs parallel."""

    FAST = SpecConfig.mainnet().with_overrides(inactivity_penalty_quotient=2 ** 16)

    def _trials_equal(self, first, second):
        assert len(first.trials) == len(second.trials)
        for a, b in zip(first.trials, second.trials):
            assert a.stop_epoch == b.stop_epoch
            assert a.survived == b.survived
            assert a.byzantine_proportion_branch_a == b.byzantine_proportion_branch_a
            assert a.byzantine_proportion_branch_b == b.byzantine_proportion_branch_b

    def test_serial_equals_parallel_with_stopping(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=20, config=self.FAST, seed=9)
        serial = mc.run(n_trials=30, horizon=40, record_epochs=[20, 40], jobs=1, chunk_size=8)
        parallel = mc.run(n_trials=30, horizon=40, record_epochs=[20, 40], jobs=3, chunk_size=8)
        self._trials_equal(serial, parallel)

    def test_serial_equals_parallel_without_stopping(self):
        mc = BouncingMonteCarlo(
            beta0=1 / 3, n_honest=15, config=self.FAST, enforce_stopping=False, seed=4
        )
        serial = mc.run(n_trials=20, horizon=30, jobs=1, chunk_size=6)
        parallel = mc.run(n_trials=20, horizon=30, jobs=2, chunk_size=6)
        self._trials_equal(serial, parallel)

    def test_backends_agree_on_seeded_run(self):
        results = {}
        for backend in ("numpy", "python"):
            mc = BouncingMonteCarlo(
                beta0=0.3,
                n_honest=10,
                config=self.FAST,
                enforce_stopping=False,
                seed=2,
                backend=backend,
            )
            results[backend] = mc.run(n_trials=5, horizon=25)
        self._trials_equal(results["numpy"], results["python"])


class TestRunnerCLI:
    def test_parser_accepts_jobs_and_seed(self):
        args = build_parser().parse_args(["fig10-montecarlo", "--jobs", "2", "--seed", "7"])
        assert args.jobs == 2
        assert args.seed == 7
        assert args.experiments == ["fig10-montecarlo"]

    def test_registry_reports_parallel_experiments(self):
        assert registry.get("fig10-montecarlo").parallelizable
        assert registry.get("sweep-grid").parallelizable
        assert "seed" in registry.get("fig10-montecarlo").accepted_options()
        assert not registry.get("fig2").parallelizable

    def test_run_experiments_forwards_options(self):
        # The run must not fail when extra options are supplied, and
        # parallel output must match serial output.
        serial = run_experiments(["sweep-grid"], jobs=1, seed=3)
        parallel = run_experiments(["sweep-grid"], jobs=2, seed=3)
        assert serial == parallel

    def test_parser_accepts_batch_and_backend(self):
        args = build_parser().parse_args(
            ["fig10-montecarlo", "--batch", "256", "--backend", "python"]
        )
        assert args.batch == 256
        assert args.backend == "python"
        # Defaults leave each experiment's own choices untouched.
        defaults = build_parser().parse_args(["fig10-montecarlo"])
        assert defaults.batch is None
        assert defaults.backend is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig10-montecarlo", "--batch", "0"])

    def test_registry_reports_batched_experiments(self):
        assert "batch" in registry.get("fig10-montecarlo").accepted_options()
        assert "backend" in registry.get("fig10-montecarlo").accepted_options()
        assert "batch" not in registry.get("fig2").accepted_options()

    def test_run_experiments_forwards_batch_and_backend(self):
        default = run_experiments(["sweep-grid"], jobs=1)
        pinned = run_experiments(
            ["sweep-grid"], jobs=1, batch=8, backend="numpy"
        )
        assert default == pinned
