"""Tests for the seeded parallel trial runner and its consumers.

The headline property: a seeded run's results are bit-identical whatever
``jobs`` is — chunking and per-chunk/per-trial seeds depend only on the
trial count, the chunk size and the root seed.
"""

import numpy as np
import pytest

from repro.analysis.montecarlo import BouncingMonteCarlo
from repro.core.trials import (
    TrialChunk,
    parallel_map,
    plan_chunks,
    resolve_jobs,
    run_chunked,
    run_trials,
)
from repro.experiments import registry
from repro.experiments.runner import build_parser, run_experiments
from repro.spec.config import SpecConfig


def draw_sum(trial_index, rng):
    """Picklable per-trial worker: a few draws folded into one float."""
    return trial_index, float(np.sum(rng.random(5)))


def chunk_lengths(chunk: TrialChunk) -> list:
    return [chunk.start + offset for offset in range(chunk.size)]


class TestChunkPlanning:
    def test_chunks_cover_all_trials(self):
        chunks = plan_chunks(10, seed=0, chunk_size=4)
        assert [(c.start, c.size) for c in chunks] == [(0, 4), (4, 4), (8, 2)]

    def test_plan_is_deterministic(self):
        first = plan_chunks(7, seed=3, chunk_size=2)
        second = plan_chunks(7, seed=3, chunk_size=2)
        for a, b in zip(first, second):
            assert np.array_equal(
                a.rng().random(4), b.rng().random(4)
            )

    def test_different_seeds_differ(self):
        a = plan_chunks(1, seed=0)[0].rng().random(4)
        b = plan_chunks(1, seed=1)[0].rng().random(4)
        assert not np.array_equal(a, b)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            plan_chunks(0)
        with pytest.raises(ValueError):
            plan_chunks(5, chunk_size=0)

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(-1) >= 1


class TestRunTrials:
    def test_serial_equals_parallel(self):
        serial = run_trials(draw_sum, 9, seed=42, jobs=1, chunk_size=3)
        parallel = run_trials(draw_sum, 9, seed=42, jobs=3, chunk_size=3)
        assert serial == parallel

    def test_results_ordered_by_trial(self):
        results = run_trials(draw_sum, 6, seed=0, chunk_size=2)
        assert [index for index, _ in results] == list(range(6))

    def test_chunk_size_does_not_change_per_trial_streams(self):
        coarse = run_trials(draw_sum, 8, seed=5, chunk_size=8)
        fine = run_trials(draw_sum, 8, seed=5, chunk_size=1)
        assert coarse == fine

    def test_chunk_worker_must_return_one_result_per_trial(self):
        def bad_worker(chunk):
            return [0] * (chunk.size + 1)

        with pytest.raises(ValueError):
            run_chunked(bad_worker, 4, seed=0, chunk_size=2)


class TestParallelMap:
    def test_order_preserved(self):
        items = list(range(20))
        assert parallel_map(square, items, jobs=1) == [i * i for i in items]

    def test_parallel_matches_serial(self):
        items = list(range(10))
        assert parallel_map(square, items, jobs=2) == parallel_map(
            square, items, jobs=1
        )


def square(x):
    return x * x


class TestMonteCarloParallelism:
    """Regression: seeded Monte-Carlo runs are identical serial vs parallel."""

    FAST = SpecConfig.mainnet().with_overrides(inactivity_penalty_quotient=2 ** 16)

    def _trials_equal(self, first, second):
        assert len(first.trials) == len(second.trials)
        for a, b in zip(first.trials, second.trials):
            assert a.stop_epoch == b.stop_epoch
            assert a.survived == b.survived
            assert a.byzantine_proportion_branch_a == b.byzantine_proportion_branch_a
            assert a.byzantine_proportion_branch_b == b.byzantine_proportion_branch_b

    def test_serial_equals_parallel_with_stopping(self):
        mc = BouncingMonteCarlo(beta0=0.3, n_honest=20, config=self.FAST, seed=9)
        serial = mc.run(n_trials=30, horizon=40, record_epochs=[20, 40], jobs=1, chunk_size=8)
        parallel = mc.run(n_trials=30, horizon=40, record_epochs=[20, 40], jobs=3, chunk_size=8)
        self._trials_equal(serial, parallel)

    def test_serial_equals_parallel_without_stopping(self):
        mc = BouncingMonteCarlo(
            beta0=1 / 3, n_honest=15, config=self.FAST, enforce_stopping=False, seed=4
        )
        serial = mc.run(n_trials=20, horizon=30, jobs=1, chunk_size=6)
        parallel = mc.run(n_trials=20, horizon=30, jobs=2, chunk_size=6)
        self._trials_equal(serial, parallel)

    def test_backends_agree_on_seeded_run(self):
        results = {}
        for backend in ("numpy", "python"):
            mc = BouncingMonteCarlo(
                beta0=0.3,
                n_honest=10,
                config=self.FAST,
                enforce_stopping=False,
                seed=2,
                backend=backend,
            )
            results[backend] = mc.run(n_trials=5, horizon=25)
        self._trials_equal(results["numpy"], results["python"])


class TestRunnerCLI:
    def test_parser_accepts_jobs_and_seed(self):
        args = build_parser().parse_args(["fig10-montecarlo", "--jobs", "2", "--seed", "7"])
        assert args.jobs == 2
        assert args.seed == 7
        assert args.experiments == ["fig10-montecarlo"]

    def test_registry_reports_parallel_experiments(self):
        assert registry.get("fig10-montecarlo").parallelizable
        assert registry.get("sweep-grid").parallelizable
        assert "seed" in registry.get("fig10-montecarlo").accepted_options()
        assert not registry.get("fig2").parallelizable

    def test_run_experiments_forwards_options(self):
        # sweep-grid accepts jobs (not seed); the run must not fail when
        # both are supplied, and parallel output must match serial output.
        serial = run_experiments(["sweep-grid"], jobs=1, seed=3)
        parallel = run_experiments(["sweep-grid"], jobs=2, seed=3)
        assert serial == parallel
