"""Equivalence suite for the optional numba backend.

The whole module is skipped when numba is not installed — the dedicated CI
leg (``requirements-ci-numba.txt``) runs it.  The contract: the ``numba``
backend registers behind the same :func:`get_backend` seam and its epoch
updates are **bit-identical** to the numpy/python paths, so every
consumer (engines, Monte-Carlo) can switch backends without any result
drift.
"""

import numpy as np
import pytest

numba = pytest.importorskip("numba")

from repro.analysis.montecarlo import BouncingMonteCarlo  # noqa: E402
from repro.core.backend import (  # noqa: E402
    StakeRules,
    available_backends,
    get_backend,
)
from repro.core.stake_engine import BatchedStakeEngine, StakeEngine  # noqa: E402
from repro.spec.config import SpecConfig  # noqa: E402

MAINNET = SpecConfig.mainnet()
FAST = MAINNET.with_overrides(inactivity_penalty_quotient=2 ** 14)


class TestRegistration:
    def test_numba_backend_registers(self):
        assert "numba" in available_backends()

    def test_get_backend_returns_instance(self):
        backend = get_backend("numba")
        assert backend.name == "numba"


class TestEpochUpdateEquivalence:
    RULES = StakeRules.from_config(FAST)

    def _random_state(self, seed, trials=5, n=11):
        rng = np.random.default_rng(seed)
        return (
            rng.uniform(16.0, 32.0, (trials, n)),
            rng.uniform(0.0, 60.0, (trials, n)),
            rng.random((trials, n)) < 0.5,
            rng.random((trials, n)) < 0.1,
            rng.random(trials) < 0.5,
        )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("in_leak", [True, False])
    def test_scalar_leak_bit_identical_to_numpy(self, seed, in_leak):
        stakes, scores, active, ejected, _ = self._random_state(seed)
        ours = get_backend("numba").epoch_update(
            stakes, scores, active, ejected, self.RULES, in_leak=in_leak
        )
        reference = get_backend("numpy").epoch_update(
            stakes, scores, active, ejected, self.RULES, in_leak=in_leak
        )
        assert np.array_equal(ours.stakes, reference.stakes)
        assert np.array_equal(ours.scores, reference.scores)
        assert np.array_equal(ours.ejected, reference.ejected)
        assert np.array_equal(ours.newly_ejected, reference.newly_ejected)
        assert ours.total_penalty == reference.total_penalty

    @pytest.mark.parametrize("seed", [4, 5])
    def test_per_trial_leak_bit_identical_to_numpy(self, seed):
        stakes, scores, active, ejected, leaks = self._random_state(seed)
        ours = get_backend("numba").epoch_update(
            stakes, scores, active, ejected, self.RULES, in_leak=leaks
        )
        reference = get_backend("numpy").epoch_update(
            stakes, scores, active, ejected, self.RULES, in_leak=leaks
        )
        assert np.array_equal(ours.stakes, reference.stakes)
        assert np.array_equal(ours.scores, reference.scores)
        assert np.array_equal(ours.ejected, reference.ejected)

    def test_long_trajectory_matches_python_oracle(self):
        n = 7
        state = {}
        for name in ("numba", "python"):
            engine = StakeEngine.uniform(n, config=FAST, backend=name)
            walk = np.random.default_rng(99)
            for _ in range(300):
                engine.step(walk.random(n) < 0.5)
            state[name] = engine
        assert np.array_equal(state["numba"].stakes, state["python"].stakes)
        assert np.array_equal(state["numba"].scores, state["python"].scores)
        assert np.array_equal(state["numba"].ejected, state["python"].ejected)


class TestConsumers:
    def test_batched_engine_on_numba(self):
        rng = np.random.default_rng(12)
        stakes0 = rng.uniform(17.0, 32.0, (4, 6))
        engines = {
            name: BatchedStakeEngine(stakes0, config=FAST, backend=name)
            for name in ("numba", "numpy")
        }
        for _ in range(80):
            active = rng.random((4, 6)) < 0.4
            leaks = rng.random(4) < 0.8
            for engine in engines.values():
                engine.step(active, in_leak=leaks)
        assert np.array_equal(engines["numba"].stakes, engines["numpy"].stakes)
        assert np.array_equal(engines["numba"].scores, engines["numpy"].scores)

    def test_montecarlo_run_matches_numpy(self):
        results = {}
        for name in ("numba", "numpy"):
            mc = BouncingMonteCarlo(
                beta0=0.3,
                n_honest=10,
                config=FAST,
                enforce_stopping=False,
                seed=2,
                backend=name,
            )
            results[name] = mc.run(n_trials=6, horizon=25, record_stakes=True)
        for a, b in zip(results["numba"].trials, results["numpy"].trials):
            assert a.stop_epoch == b.stop_epoch
            assert a.byzantine_proportion_branch_a == b.byzantine_proportion_branch_a
            assert a.byzantine_proportion_branch_b == b.byzantine_proportion_branch_b
            for epoch in a.stake_snapshots:
                assert np.array_equal(
                    a.stake_snapshots[epoch], b.stake_snapshots[epoch]
                )
