"""Tests for the validator agents (honest and Byzantine)."""

import pytest

from repro.agents.base import AgentContext
from repro.agents.byzantine import AlternatingAgent, BouncingAgent, DoubleVotingAgent
from repro.agents.honest import HonestAgent, IntermittentAgent, OfflineAgent
from repro.network.message import Message
from repro.sim.node import Node
from repro.spec.block import BeaconBlock
from repro.spec.committees import DutyScheduler
from repro.spec.config import SpecConfig
from repro.spec.types import GENESIS_ROOT
from repro.spec.validator import make_registry

CONFIG = SpecConfig.minimal()
PARTITIONS = {"branch-1": {0, 1, 2}, "branch-2": {3, 4, 5}}


def make_node(validator_index: int = 7) -> Node:
    return Node(validator_index=validator_index, registry=make_registry(8, CONFIG), config=CONFIG)


def make_context(
    node: Node,
    slot: int = 1,
    is_proposer: bool = True,
    is_attester: bool = True,
) -> AgentContext:
    scheduler = DutyScheduler(CONFIG, seed="agents")
    registry = make_registry(8, CONFIG)
    return AgentContext(
        validator_index=node.validator_index,
        slot=slot,
        epoch=CONFIG.epoch_of_slot(slot),
        time=float(slot) * CONFIG.seconds_per_slot,
        node=node,
        duties=scheduler.duties_for_epoch(CONFIG.epoch_of_slot(slot), registry),
        is_proposer=is_proposer,
        is_attester=is_attester,
        partition_names=list(PARTITIONS),
    )


def feed_fork(node: Node, slot: int = 1):
    """Give the node two branches, one proposed by each partition."""
    a = BeaconBlock.create(slot=slot, proposer_index=0, parent_root=GENESIS_ROOT, branch_tag="p1")
    b = BeaconBlock.create(slot=slot, proposer_index=3, parent_root=GENESIS_ROOT, branch_tag="p2")
    node.receive(Message.block(a, sender=0, sent_at=0.0))
    node.receive(Message.block(b, sender=3, sent_at=0.0))
    return a, b


class TestHonestAgent:
    def test_proposes_only_when_proposer(self):
        node = make_node()
        agent = HonestAgent(node.validator_index)
        assert agent.propose(make_context(node, is_proposer=False)) == []
        actions = agent.propose(make_context(node, is_proposer=True))
        assert len(actions) == 1
        assert actions[0].audience is None

    def test_attests_its_head(self):
        node = make_node()
        a, _ = feed_fork(node)
        agent = HonestAgent(node.validator_index)
        actions = agent.attest(make_context(node, is_attester=True))
        assert len(actions) == 1
        assert actions[0].attestation.head_root == node.head()
        assert not actions[0].withhold

    def test_not_byzantine(self):
        assert not HonestAgent(0).is_byzantine


class TestOfflineAndIntermittent:
    def test_offline_agent_does_nothing(self):
        node = make_node()
        agent = OfflineAgent(node.validator_index)
        ctx = make_context(node)
        assert agent.propose(ctx) == [] and agent.attest(ctx) == []

    def test_intermittent_agent_active_every_other_epoch(self):
        node = make_node()
        agent = IntermittentAgent(node.validator_index, period=2, phase=0)
        epoch0 = make_context(node, slot=1)
        epoch1 = make_context(node, slot=1 + CONFIG.slots_per_epoch)
        assert agent.attest(epoch0)
        assert agent.attest(epoch1) == []

    def test_intermittent_rejects_bad_period(self):
        with pytest.raises(ValueError):
            IntermittentAgent(0, period=0)


class TestDoubleVotingAgent:
    def test_attests_once_per_branch(self):
        node = make_node()
        a, b = feed_fork(node)
        agent = DoubleVotingAgent(node.validator_index, PARTITIONS)
        actions = agent.attest(make_context(node))
        assert len(actions) == 2
        heads = {action.attestation.head_root for action in actions}
        assert heads == {a.root, b.root}
        audiences = {action.audience for action in actions}
        assert audiences == {"branch-1", "branch-2"}

    def test_pair_of_attestations_is_slashable(self):
        # The two branches must differ at an epoch boundary for the two
        # checkpoint votes to conflict: fork at the first slot of epoch 1.
        node = make_node()
        feed_fork(node, slot=CONFIG.slots_per_epoch)
        agent = DoubleVotingAgent(node.validator_index, PARTITIONS)
        first, second = agent.attest(make_context(node, slot=CONFIG.slots_per_epoch + 1))
        assert first.attestation.target != second.attestation.target
        assert first.attestation.is_slashable_with(second.attestation)

    def test_proposes_on_both_branches(self):
        node = make_node()
        a, b = feed_fork(node)
        agent = DoubleVotingAgent(node.validator_index, PARTITIONS)
        actions = agent.propose(make_context(node, slot=2))
        assert len(actions) == 2
        parents = {action.block.parent_root for action in actions}
        assert parents == {a.root, b.root}

    def test_requires_partition_map(self):
        with pytest.raises(ValueError):
            DoubleVotingAgent(0, {})

    def test_is_byzantine(self):
        assert DoubleVotingAgent(0, PARTITIONS).is_byzantine


class TestAlternatingAgent:
    def test_alternates_partitions_by_epoch_parity(self):
        node = make_node()
        feed_fork(node)
        agent = AlternatingAgent(node.validator_index, PARTITIONS)
        epoch0 = make_context(node, slot=1)
        epoch1 = make_context(node, slot=1 + CONFIG.slots_per_epoch)
        action0 = agent.attest(epoch0)[0]
        action1 = agent.attest(epoch1)[0]
        assert action0.audience == "branch-1"
        assert action1.audience == "branch-2"

    def test_single_attestation_per_epoch_is_not_slashable(self):
        node = make_node()
        feed_fork(node)
        agent = AlternatingAgent(node.validator_index, PARTITIONS)
        action0 = agent.attest(make_context(node, slot=1))[0]
        action1 = agent.attest(make_context(node, slot=1 + CONFIG.slots_per_epoch))[0]
        assert not action0.attestation.is_slashable_with(action1.attestation)

    def test_burst_when_finalizer_enabled(self):
        node = make_node()
        feed_fork(node)
        agent = AlternatingAgent(node.validator_index, PARTITIONS, finalize_when_possible=True)
        node.state.record_justification(node.checkpoint_of_epoch(0))
        ctx = make_context(node, slot=1 + CONFIG.slots_per_epoch)
        agent.on_epoch_start(ctx)
        assert agent._burst_partition is not None


class TestBouncingAgent:
    def test_withholds_attestations(self):
        node = make_node()
        feed_fork(node)
        agent = BouncingAgent(node.validator_index, PARTITIONS)
        actions = agent.attest(make_context(node))
        assert len(actions) == 1
        assert actions[0].withhold

    def test_targets_losing_branch(self):
        node = make_node()
        a, b = feed_fork(node)
        # Two honest validators of branch-1 voted for their branch; branch-2
        # has no support, so it is the losing branch the attacker props up.
        for validator in (0, 1):
            attestation = node.attestation_for(slot=1, head=a.root)
            attestation = type(attestation)(
                validator_index=validator,
                slot=attestation.slot,
                head_root=a.root,
                ffg=attestation.ffg,
            )
            node.receive(Message.attestation(attestation, sender=validator, sent_at=1.0))
        agent = BouncingAgent(node.validator_index, PARTITIONS)
        action = agent.attest(make_context(node))[0]
        assert action.attestation.head_root == b.root
