"""Tests for repro.leak.dynamics and repro.leak.groups."""

import pytest

from repro import constants
from repro.leak.dynamics import BranchSimulation, LeakSimulation
from repro.leak.groups import (
    BranchView,
    GroupSpec,
    always_active,
    never_active,
    pattern_from_name,
    semi_active_even,
    semi_active_odd,
)
from repro.spec.config import SpecConfig


def view(epoch: int = 0) -> BranchView:
    return BranchView(
        branch_name="b", epoch=epoch, previous_active_ratio=0.0, in_leak=True, finalized=False
    )


class TestPatterns:
    def test_stock_patterns(self):
        assert always_active(0, view())
        assert not never_active(0, view())
        assert semi_active_even(0, view()) and not semi_active_even(1, view())
        assert semi_active_odd(1, view()) and not semi_active_odd(0, view())

    def test_pattern_from_name(self):
        assert pattern_from_name("active") is always_active
        assert pattern_from_name("inactive") is never_active
        with pytest.raises(ValueError):
            pattern_from_name("sometimes")

    def test_group_spec_validation(self):
        with pytest.raises(ValueError):
            GroupSpec(name="x", weight=-1.0, pattern=always_active)
        with pytest.raises(ValueError):
            GroupSpec(name="x", weight=0.5, pattern=always_active, initial_stake=0.0)


class TestBranchSimulation:
    def test_requires_groups(self):
        with pytest.raises(ValueError):
            BranchSimulation(name="b", groups=())

    def test_rejects_duplicate_group_names(self):
        with pytest.raises(ValueError):
            BranchSimulation(
                name="b",
                groups=(
                    GroupSpec(name="g", weight=0.5, pattern=always_active),
                    GroupSpec(name="g", weight=0.5, pattern=never_active),
                ),
            )

    def test_weights_are_normalised(self):
        branch = BranchSimulation(
            name="b",
            groups=(
                GroupSpec(name="a", weight=2.0, pattern=always_active),
                GroupSpec(name="i", weight=2.0, pattern=never_active),
            ),
        )
        record = branch.step(0)
        assert record.active_ratio == pytest.approx(0.5)

    def test_all_active_branch_finalizes_immediately(self):
        branch = BranchSimulation(
            name="b", groups=(GroupSpec(name="a", weight=1.0, pattern=always_active),)
        )
        result = branch.run(3)
        assert result.threshold_epoch == 0
        assert result.finalization_epoch == 1

    def test_majority_below_supermajority_does_not_finalize_quickly(self):
        branch = BranchSimulation(
            name="b",
            groups=(
                GroupSpec(name="a", weight=0.5, pattern=always_active),
                GroupSpec(name="i", weight=0.5, pattern=never_active),
            ),
        )
        result = branch.run(10)
        assert result.finalization_epoch is None

    def test_inactive_stake_decays_and_ejects(self):
        branch = BranchSimulation(
            name="b",
            groups=(
                GroupSpec(name="a", weight=0.5, pattern=always_active),
                GroupSpec(name="i", weight=0.5, pattern=never_active),
            ),
        )
        result = branch.run(5000)
        inactive_series = result.stake_series("i")
        assert inactive_series[-1] == 0.0  # ejected, no longer counted
        assert result.ejections  # the ejection epoch was recorded
        ejection_epoch = next(iter(result.ejections))
        assert abs(ejection_epoch - constants.PAPER_INACTIVE_EJECTION_EPOCH) < 60

    def test_ratio_reaches_supermajority_at_ejection_for_even_split(self):
        branch = BranchSimulation(
            name="b",
            groups=(
                GroupSpec(name="a", weight=0.5, pattern=always_active),
                GroupSpec(name="i", weight=0.5, pattern=never_active),
            ),
        )
        result = branch.run(5000)
        assert result.threshold_epoch is not None
        # The paper's analytical crossing for p0=0.5 is the ejection epoch.
        assert abs(result.threshold_epoch - constants.PAPER_INACTIVE_EJECTION_EPOCH) < 60
        assert result.finalization_epoch == result.threshold_epoch + 1

    def test_no_leak_before_leak_from_epoch(self):
        branch = BranchSimulation(
            name="b",
            groups=(
                GroupSpec(name="a", weight=0.5, pattern=always_active),
                GroupSpec(name="i", weight=0.5, pattern=never_active),
            ),
            leak_from_epoch=10,
        )
        branch.run(10)
        assert branch.ledgers["i"].stake == pytest.approx(32.0)

    def test_byzantine_proportion_series(self):
        branch = BranchSimulation(
            name="b",
            groups=(
                GroupSpec(name="h", weight=0.75, pattern=always_active),
                GroupSpec(name="b", weight=0.25, pattern=semi_active_even, byzantine=True),
            ),
        )
        result = branch.run(10)
        series = result.byzantine_proportion_series()
        assert series[0] == pytest.approx(0.25, abs=0.01)

    def test_stake_series_lengths(self):
        branch = BranchSimulation(
            name="b", groups=(GroupSpec(name="a", weight=1.0, pattern=always_active),)
        )
        result = branch.run(7)
        assert len(result.records) == 7
        assert len(result.active_ratio_series()) == 7


class TestLeakSimulation:
    def _even_split_spec(self):
        return {
            "branch-1": (
                GroupSpec(name="h1", weight=0.5, pattern=always_active),
                GroupSpec(name="h2", weight=0.5, pattern=never_active),
            ),
            "branch-2": (
                GroupSpec(name="h1", weight=0.5, pattern=never_active),
                GroupSpec(name="h2", weight=0.5, pattern=always_active),
            ),
        }

    def test_conflicting_finalization_requires_both_branches(self):
        simulation = LeakSimulation(branch_specs=self._even_split_spec())
        result = simulation.run(100)
        assert result.conflicting_finalization_epoch() is None
        assert not result.safety_violated()

    def test_long_partition_finalizes_both_branches(self):
        simulation = LeakSimulation(branch_specs=self._even_split_spec())
        result = simulation.run(5200)
        epoch = result.conflicting_finalization_epoch()
        assert epoch is not None
        assert result.safety_violated()
        # Both branches are symmetric: they finalize at the same epoch,
        # within 2% of the paper's 4686-epoch bound.
        assert abs(epoch - 4686) / 4686 < 0.02

    def test_stop_on_all_finalized(self):
        simulation = LeakSimulation(branch_specs=self._even_split_spec())
        result = simulation.run(6000, stop_on_all_finalized=True)
        # The run stops shortly after both branches finalize.
        lengths = [len(branch.records) for branch in result.branches.values()]
        assert max(lengths) < 5000

    def test_branch_accessor(self):
        simulation = LeakSimulation(branch_specs=self._even_split_spec())
        result = simulation.run(10)
        assert result.branch("branch-1").name == "branch-1"
        with pytest.raises(KeyError):
            result.branch("nope")
