"""Property-based tests (hypothesis) for the protocol substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spec.block import BeaconBlock
from repro.spec.blocktree import BlockTree
from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.finality import FFGVotePool, process_justification
from repro.spec.inactivity import process_inactivity_epoch
from repro.spec.state import BeaconState
from repro.spec.types import GENESIS_ROOT, Root
from repro.spec.validator import make_registry


# ----------------------------------------------------------------------
# Block tree properties
# ----------------------------------------------------------------------
@st.composite
def random_trees(draw):
    """Build a random block tree by repeatedly extending random blocks."""
    tree = BlockTree()
    roots = [GENESIS_ROOT]
    n_blocks = draw(st.integers(min_value=1, max_value=30))
    for i in range(n_blocks):
        parent_index = draw(st.integers(min_value=0, max_value=len(roots) - 1))
        parent = roots[parent_index]
        parent_slot = tree.get(parent).slot
        slot = parent_slot + draw(st.integers(min_value=1, max_value=3))
        block = BeaconBlock.create(
            slot=slot, proposer_index=i % 7, parent_root=parent, branch_tag=str(i)
        )
        tree.add_block(block)
        roots.append(block.root)
    return tree, roots


@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_every_block_chains_back_to_genesis(tree_and_roots):
    tree, roots = tree_and_roots
    for root in roots:
        chain = tree.chain_to_genesis(root)
        assert chain[0].is_genesis()
        assert chain[-1].root == root
        # Slots strictly increase along the chain.
        slots = [block.slot for block in chain]
        assert all(b > a for a, b in zip(slots[1:], slots[2:])) or len(slots) <= 2
        # Parent links are consistent.
        for parent, child in zip(chain, chain[1:]):
            assert child.parent_root == parent.root


@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_ancestor_relation_is_consistent_with_chains(tree_and_roots):
    tree, roots = tree_and_roots
    for root in roots[-5:]:
        chain_roots = {block.root for block in tree.chain_to_genesis(root)}
        for candidate in roots:
            assert tree.is_ancestor(candidate, root) == (candidate in chain_roots)


@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_common_ancestor_is_an_ancestor_of_both(tree_and_roots):
    tree, roots = tree_and_roots
    a, b = roots[0], roots[-1]
    ancestor = tree.common_ancestor(a, b)
    assert tree.is_ancestor(ancestor, a)
    assert tree.is_ancestor(ancestor, b)


@given(random_trees())
@settings(max_examples=50, deadline=None)
def test_leaves_partition_descendant_relation(tree_and_roots):
    tree, roots = tree_and_roots
    leaves = tree.leaves()
    assert leaves
    # Every block is an ancestor of at least one leaf.
    for root in roots:
        assert any(tree.is_ancestor(root, leaf) for leaf in leaves)


# ----------------------------------------------------------------------
# Inactivity-leak properties
# ----------------------------------------------------------------------
@given(
    activity=st.lists(
        st.lists(st.booleans(), min_size=6, max_size=6), min_size=1, max_size=40
    )
)
@settings(max_examples=40, deadline=None)
def test_inactivity_scores_never_negative_and_stakes_never_grow_in_leak(activity):
    state = BeaconState.genesis(make_registry(6), SpecConfig.mainnet())
    previous_stakes = [v.stake for v in state.validators]
    for epoch, flags in enumerate(activity):
        state.current_epoch = epoch + 100  # force the leak
        active = {i for i, flag in enumerate(flags) if flag}
        process_inactivity_epoch(state, active, in_leak=True)
        for validator, previous in zip(state.validators, previous_stakes):
            assert validator.inactivity_score >= 0
            assert validator.stake <= previous + 1e-12
            assert validator.stake >= 0
        previous_stakes = [v.stake for v in state.validators]


@given(
    activity=st.lists(
        st.lists(st.booleans(), min_size=5, max_size=5), min_size=1, max_size=30
    )
)
@settings(max_examples=40, deadline=None)
def test_always_active_validator_never_penalized(activity):
    state = BeaconState.genesis(make_registry(5), SpecConfig.mainnet())
    for epoch, flags in enumerate(activity):
        state.current_epoch = epoch + 100
        active = {0} | {i for i, flag in enumerate(flags) if flag}
        process_inactivity_epoch(state, active, in_leak=True)
    assert state.validators[0].stake == 32.0
    assert state.validators[0].inactivity_score == 0


# ----------------------------------------------------------------------
# FFG properties
# ----------------------------------------------------------------------
@given(
    voters=st.sets(st.integers(min_value=0, max_value=9), max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_justification_requires_strict_supermajority(voters):
    state = BeaconState.genesis(make_registry(10), SpecConfig.mainnet())
    pool = FFGVotePool()
    target = Checkpoint(epoch=1, root=Root.from_label("target"))
    for voter in voters:
        pool.add_vote(voter, FFGVote(source=GENESIS_CHECKPOINT, target=target))
    result = process_justification(state, pool, 1)
    expected = len(voters) / 10 > 2 / 3
    assert result.justified_any == expected
    assert state.is_justified(1) == expected


@given(
    split=st.integers(min_value=0, max_value=12),
)
@settings(max_examples=30, deadline=None)
def test_conflicting_targets_cannot_both_be_justified(split):
    state = BeaconState.genesis(make_registry(12), SpecConfig.mainnet())
    pool = FFGVotePool()
    target_a = Checkpoint(epoch=1, root=Root.from_label("a"))
    target_b = Checkpoint(epoch=1, root=Root.from_label("b"))
    for voter in range(split):
        pool.add_vote(voter, FFGVote(source=GENESIS_CHECKPOINT, target=target_a))
    for voter in range(split, 12):
        pool.add_vote(voter, FFGVote(source=GENESIS_CHECKPOINT, target=target_b))
    process_justification(state, pool, 1)
    justified_targets = [
        checkpoint
        for epoch, checkpoint in state.justified_checkpoints.items()
        if epoch == 1
    ]
    assert len(justified_targets) <= 1
