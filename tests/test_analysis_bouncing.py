"""Tests for repro.analysis.bouncing (Section 5.3)."""

import math

import numpy as np
import pytest

from repro import constants
from repro.analysis.bouncing import (
    BouncingAttackModel,
    MarkovBounceModel,
    attack_duration_probability,
    continuation_probability_per_epoch,
    expected_attack_duration,
    is_feasible_split,
    log10_attack_duration_probability,
    p0_feasibility_window,
)


class TestFeasibilityWindow:
    def test_equation14_bounds(self):
        lower, upper = p0_feasibility_window(0.2)
        assert lower == pytest.approx((2 - 0.6) / (3 * 0.8))
        assert upper == pytest.approx(2 / (3 * 0.8))

    def test_window_narrows_as_beta_decreases(self):
        lower_small, upper_small = p0_feasibility_window(0.05)
        lower_large, upper_large = p0_feasibility_window(0.3)
        assert (upper_small - lower_small) < (upper_large - lower_large)

    def test_small_beta_requires_p0_close_to_two_thirds(self):
        lower, _ = p0_feasibility_window(0.01)
        assert lower == pytest.approx(2 / 3, abs=0.01)

    def test_is_feasible_split(self):
        assert is_feasible_split(0.66, 0.2)
        assert not is_feasible_split(0.5, 0.05)

    def test_invalid_beta(self):
        with pytest.raises(ValueError):
            p0_feasibility_window(1.0)


class TestDurationProbability:
    def test_per_epoch_probability(self):
        assert continuation_probability_per_epoch(1 / 3, 8) == pytest.approx(
            1 - (2 / 3) ** 8
        )

    def test_paper_estimate_at_7000_epochs(self):
        log10 = log10_attack_duration_probability(1 / 3, 7000)
        # Paper: 1.01e-121.
        assert log10 == pytest.approx(-121.0, abs=0.5)

    def test_probability_decreases_with_horizon(self):
        assert attack_duration_probability(0.3, 10) > attack_duration_probability(0.3, 100)

    def test_probability_increases_with_beta(self):
        assert attack_duration_probability(0.33, 50) > attack_duration_probability(0.1, 50)

    def test_zero_byzantine_cannot_continue(self):
        assert attack_duration_probability(0.0, 1) == 0.0
        assert attack_duration_probability(0.0, 0) == 1.0

    def test_expected_duration(self):
        per_epoch = continuation_probability_per_epoch(0.2, 8)
        assert expected_attack_duration(0.2) == pytest.approx(per_epoch / (1 - per_epoch))

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            attack_duration_probability(0.3, -1)


class TestMarkovBounceModel:
    def test_transition_matrix_rows_sum_to_one(self):
        matrix = MarkovBounceModel(p0=0.3).transition_matrix()
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_stationary_distribution(self):
        model = MarkovBounceModel(p0=0.3)
        assert np.allclose(model.stationary_distribution(), [0.3, 0.7])

    def test_occupancy_converges_immediately(self):
        model = MarkovBounceModel(p0=0.4)
        assert np.allclose(model.occupancy_after(1), [0.4, 0.6])
        assert np.allclose(model.occupancy_after(10), [0.4, 0.6])

    def test_occupancy_zero_epochs_is_start_state(self):
        model = MarkovBounceModel(p0=0.4)
        assert np.allclose(model.occupancy_after(0, start_on_a=True), [1.0, 0.0])

    def test_two_epoch_paths_sum_to_one(self):
        model = MarkovBounceModel(p0=0.35)
        assert sum(model.two_epoch_path_probabilities().values()) == pytest.approx(1.0)

    def test_two_epoch_score_increments_match_equation15(self):
        model = MarkovBounceModel(p0=0.5)
        increments = model.two_epoch_score_increments()
        assert increments[8] == pytest.approx(0.25)
        assert increments[3] == pytest.approx(0.5)
        assert increments[-2] == pytest.approx(0.25)


class TestBouncingAttackModel:
    def test_exceed_probability_is_half_at_one_third(self):
        model = BouncingAttackModel(beta0=1 / 3, p0=0.5)
        for t in (1000.0, 3000.0, 5000.0):
            assert model.exceed_threshold_probability(t) == pytest.approx(0.5, abs=1e-3)

    def test_exceed_probability_increases_with_beta0(self):
        t = 4000.0
        small = BouncingAttackModel(beta0=0.3).exceed_threshold_probability(t)
        large = BouncingAttackModel(beta0=0.333).exceed_threshold_probability(t)
        assert large >= small

    def test_exceed_probability_rises_before_byzantine_ejection(self):
        model = BouncingAttackModel(beta0=0.33)
        early = model.exceed_threshold_probability(2000.0)
        late = model.exceed_threshold_probability(7200.0)
        assert late > early

    def test_probability_zero_after_byzantine_ejection(self):
        model = BouncingAttackModel(beta0=0.33)
        assert model.exceed_threshold_probability(7700.0) == 0.0

    def test_both_branches_doubles_and_caps(self):
        model = BouncingAttackModel(beta0=1 / 3)
        single = model.exceed_threshold_probability(3000.0)
        double = model.exceed_threshold_probability(3000.0, both_branches=True)
        assert double == pytest.approx(min(1.0, 2 * single))

    def test_series_matches_pointwise(self):
        model = BouncingAttackModel(beta0=0.33)
        series = model.exceed_probability_series([1000, 2000])
        assert series[0] == pytest.approx(model.exceed_threshold_probability(1000.0))
        assert series[1] == pytest.approx(model.exceed_threshold_probability(2000.0))

    def test_byzantine_ejection_epoch_close_to_paper(self):
        model = BouncingAttackModel(beta0=0.33)
        assert abs(
            model.byzantine_ejection_epoch()
            - constants.PAPER_BOUNCING_BYZANTINE_EJECTION_EPOCH
        ) / 7653 < 0.01

    def test_zero_time_probability_zero(self):
        assert BouncingAttackModel(beta0=0.33).exceed_threshold_probability(0.0) == 0.0

    def test_feasibility_helpers(self):
        model = BouncingAttackModel(beta0=0.33, p0=0.6)
        lower, upper = model.feasible_p0_window()
        assert lower < 0.6 < upper
        assert model.is_setup_feasible()

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BouncingAttackModel(beta0=0.7)
        with pytest.raises(ValueError):
            BouncingAttackModel(beta0=0.3, p0=0.0)

    def test_monte_carlo_agrees_with_closed_form_at_one_third(self):
        model = BouncingAttackModel(beta0=1 / 3, p0=0.5)
        estimate = model.simulate_exceed_probability(t=1500, n_samples=4000, seed=7)
        assert estimate == pytest.approx(0.5, abs=0.05)
