"""Tests for the extension experiments (Monte-Carlo validation, generalized
mechanisms, recovery tail) and their registry entries."""

import pytest

from repro.experiments import (
    fig10_montecarlo,
    generalized_mechanism,
    recovery_tail,
    registry,
)
from repro.leak.generalized import PenaltyMechanism


class TestFigure10MonteCarlo:
    def test_small_run_matches_closed_form_at_one_third(self):
        result = fig10_montecarlo.run(
            beta0_values=(1 / 3,), horizon=1500, n_trials=30, n_honest=100, seed=1
        )
        row = result.horizon_rows()[0]
        assert row["closed_form_single_branch"] == pytest.approx(0.5, abs=1e-3)
        assert row["closed_form_both_branches"] == pytest.approx(1.0, abs=1e-3)
        # With two symmetric branches, at least one of them exceeds the
        # threshold in almost every trial.
        assert row["empirical_either_branch"] > 0.8
        assert "Figure 10" in result.format_text()

    def test_lower_beta_gives_lower_probability(self):
        result = fig10_montecarlo.run(
            beta0_values=(1 / 3, 0.31), horizon=1500, n_trials=20, n_honest=80, seed=2
        )
        rows = {row["beta0"]: row for row in result.horizon_rows()}
        assert (
            rows[0.31]["empirical_either_branch"]
            <= rows[1 / 3]["empirical_either_branch"]
        )

    def test_gap_metric(self):
        result = fig10_montecarlo.run(
            beta0_values=(1 / 3,), horizon=1000, n_trials=20, n_honest=80, seed=3
        )
        assert 0.0 <= result.max_gap_to_both_branches_form() <= 1.0

    def test_record_every_produces_full_curve(self):
        result = fig10_montecarlo.run(
            beta0_values=(1 / 3,),
            horizon=1200,
            n_trials=20,
            n_honest=80,
            seed=4,
            record_every=150,
        )
        assert list(result.record_epochs) == [150 * k for k in range(1, 9)]
        curve = result.empirical_series[1 / 3]
        assert set(curve) == set(result.record_epochs)
        assert all(0.0 <= value <= 1.0 for value in curve.values())
        # rows() exports one row per (beta0, epoch) — the full curve.
        assert len(result.rows()) == 8
        assert "exceed-probability curves" in result.format_text()

    def test_plan_record_epochs_includes_horizon(self):
        assert fig10_montecarlo.plan_record_epochs(1000, None) == [1000]
        assert fig10_montecarlo.plan_record_epochs(1000, 400) == [400, 800, 1000]
        with pytest.raises(ValueError):
            fig10_montecarlo.plan_record_epochs(1000, 0)


class TestGeneralizedMechanismExperiment:
    def test_default_run_contains_ethereum(self):
        result = generalized_mechanism.run()
        names = [row["mechanism"] for row in result.rows()]
        assert any("ethereum" in name for name in names)
        assert "Generalized penalty mechanisms" in result.format_text()

    def test_ethereum_row_matches_paper_scale(self):
        result = generalized_mechanism.run()
        ethereum_row = next(row for row in result.rows() if "ethereum" in row["mechanism"])
        assert ethereum_row["safety_bound_epochs"] == pytest.approx(4661, abs=5)
        assert ethereum_row["critical_beta0"] == pytest.approx(0.2421, abs=2e-3)

    def test_faster_leak_has_smaller_bound(self):
        result = generalized_mechanism.run()
        rows = {row["mechanism"]: row for row in result.rows()}
        assert (
            rows["aggressive (2**20)"]["safety_bound_epochs"]
            < rows["ethereum (2**26)"]["safety_bound_epochs"]
            < rows["lenient (2**28)"]["safety_bound_epochs"]
        )

    def test_custom_mechanism_dict(self):
        result = generalized_mechanism.run(
            mechanisms={"custom": PenaltyMechanism.with_quotient(float(2 ** 22))}
        )
        assert len(result.rows()) == 1
        assert result.rows()[0]["penalty_quotient"] == float(2 ** 22)

    def test_stricter_quorum_needs_longer_leak(self):
        result = generalized_mechanism.run()
        rows = {row["mechanism"]: row for row in result.rows()}
        assert (
            rows["strict quorum (3/4)"]["safety_bound_epochs"]
            >= rows["ethereum (2**26)"]["safety_bound_epochs"]
        )


class TestRecoveryTailExperiment:
    def test_rows_and_text(self):
        result = recovery_tail.run(p0_values=(0.6, 0.62))
        assert len(result.rows()) == 2
        assert "recovery tail" in result.format_text().lower()

    def test_tail_is_shorter_than_leak(self):
        result = recovery_tail.run(p0_values=(0.6,))
        row = result.rows()[0]
        assert 0 < row["recovery_tail_epochs"] < row["leak_duration_epochs"]

    def test_longer_leak_longer_tail(self):
        result = recovery_tail.run(p0_values=(0.6, 0.65))
        rows = {row["p0"]: row for row in result.rows()}
        # p0 = 0.6 leaks longer than p0 = 0.65, so its tail is longer too.
        assert rows[0.6]["leak_duration_epochs"] > rows[0.65]["leak_duration_epochs"]
        assert rows[0.6]["recovery_tail_epochs"] >= rows[0.65]["recovery_tail_epochs"]

    def test_exit_stake_above_ejection(self):
        result = recovery_tail.run(p0_values=(0.6,))
        assert result.rows()[0]["stake_at_leak_exit"] > 16.75


class TestRegistryExtensions:
    def test_new_ids_registered(self):
        ids = registry.list_ids()
        for expected in ("fig10-montecarlo", "generalized-mechanism", "recovery-tail"):
            assert expected in ids

    def test_registry_dispatch(self):
        result = registry.run("recovery-tail")
        assert hasattr(result, "rows")
        result = registry.run("generalized-mechanism")
        assert hasattr(result, "format_text")
