"""Tests for repro.spec.forkchoice (LMD-GHOST)."""

import pytest

from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.checkpoint import Checkpoint, FFGVote, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.forkchoice import Store, branch_heads, fork_exists
from repro.spec.state import BeaconState
from repro.spec.types import GENESIS_ROOT, Root
from repro.spec.validator import make_registry


@pytest.fixture
def config():
    return SpecConfig.mainnet()


@pytest.fixture
def state(config):
    return BeaconState.genesis(make_registry(10, config), config)


@pytest.fixture
def store(config):
    return Store(config=config)


def make_attestation(validator: int, head: Root, epoch: int = 0, slot: int = 1) -> Attestation:
    return Attestation(
        validator_index=validator,
        slot=slot,
        head_root=head,
        ffg=FFGVote(
            source=GENESIS_CHECKPOINT,
            target=Checkpoint(epoch=epoch, root=head),
        ),
    )


def add_fork(store: Store):
    """Create two competing blocks at slot 1 and return (block_a, block_b)."""
    a = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT, branch_tag="a")
    b = BeaconBlock.create(slot=1, proposer_index=1, parent_root=GENESIS_ROOT, branch_tag="b")
    store.on_block(a)
    store.on_block(b)
    return a, b


class TestStoreIngestion:
    def test_on_block_inserts(self, store):
        block = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT)
        assert store.on_block(block)
        assert block.root in store.tree

    def test_on_attestation_records_latest_message(self, store):
        block = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT)
        store.on_block(block)
        store.on_attestation(make_attestation(3, block.root))
        assert store.latest_messages[3].root == block.root

    def test_attestation_for_unknown_block_is_dropped(self, store):
        store.on_attestation(make_attestation(3, Root.from_label("unknown")))
        assert 3 not in store.latest_messages

    def test_newer_attestation_overrides(self, store):
        a, b = add_fork(store)
        store.on_attestation(make_attestation(3, a.root, epoch=0))
        store.on_attestation(make_attestation(3, b.root, epoch=1))
        assert store.latest_messages[3].root == b.root

    def test_older_attestation_does_not_override(self, store):
        a, b = add_fork(store)
        store.on_attestation(make_attestation(3, b.root, epoch=2))
        old = make_attestation(3, a.root, epoch=1)
        store.on_attestation(old)
        assert store.latest_messages[3].root == b.root

    def test_update_checkpoints_keeps_newest(self, store):
        newer = Checkpoint(epoch=3, root=Root.from_label("x"))
        store.update_checkpoints(newer, GENESIS_CHECKPOINT)
        assert store.justified_checkpoint == newer
        store.update_checkpoints(Checkpoint(epoch=1, root=Root.from_label("y")), GENESIS_CHECKPOINT)
        assert store.justified_checkpoint == newer


class TestGetHead:
    def test_head_is_genesis_when_empty(self, store, state):
        assert store.get_head(state) == GENESIS_ROOT

    def test_head_follows_single_chain(self, store, state):
        parent = GENESIS_ROOT
        last = None
        for slot in range(1, 4):
            block = BeaconBlock.create(slot=slot, proposer_index=0, parent_root=parent)
            store.on_block(block)
            parent = block.root
            last = block
        assert store.get_head(state) == last.root

    def test_head_follows_majority_votes(self, store, state):
        a, b = add_fork(store)
        for validator in range(6):
            store.on_attestation(make_attestation(validator, a.root))
        for validator in range(6, 10):
            store.on_attestation(make_attestation(validator, b.root))
        assert store.get_head(state) == a.root

    def test_head_flips_when_votes_move(self, store, state):
        a, b = add_fork(store)
        for validator in range(6):
            store.on_attestation(make_attestation(validator, a.root, epoch=0))
        for validator in range(10):
            store.on_attestation(make_attestation(validator, b.root, epoch=1))
        assert store.get_head(state) == b.root

    def test_votes_weighted_by_stake(self, store, state):
        a, b = add_fork(store)
        # One whale on branch b outweighs three small validators on a.
        state.validators[9].stake = 320.0
        for validator in range(3):
            store.on_attestation(make_attestation(validator, a.root))
        store.on_attestation(make_attestation(9, b.root))
        assert store.get_head(state) == b.root

    def test_exited_validator_votes_ignored(self, store, state):
        a, b = add_fork(store)
        for validator in range(3):
            store.on_attestation(make_attestation(validator, a.root))
        store.on_attestation(make_attestation(9, b.root))
        state.validators[9].stake = 320.0
        state.validators[9].exit(0)
        assert store.get_head(state) == a.root

    def test_slashed_validator_votes_ignored(self, store, state):
        a, b = add_fork(store)
        for validator in range(3):
            store.on_attestation(make_attestation(validator, a.root))
        state.validators[9].stake = 320.0
        state.validators[9].slashed = True
        store.on_attestation(make_attestation(9, b.root))
        assert store.get_head(state) == a.root

    def test_ghost_descends_into_heaviest_subtree(self, store, state):
        a, b = add_fork(store)
        # Extend branch a with a child; votes on the child should pull the head there.
        child = BeaconBlock.create(slot=2, proposer_index=2, parent_root=a.root)
        store.on_block(child)
        for validator in range(4):
            store.on_attestation(make_attestation(validator, child.root))
        for validator in range(4, 7):
            store.on_attestation(make_attestation(validator, b.root))
        assert store.get_head(state) == child.root

    def test_candidate_chain_starts_at_genesis(self, store, state):
        a, _ = add_fork(store)
        for validator in range(5):
            store.on_attestation(make_attestation(validator, a.root))
        chain = store.candidate_chain(state)
        assert chain[0].is_genesis()
        assert chain[-1].root == store.get_head(state)


class TestCheckpointHelpers:
    def test_checkpoint_for_epoch_maps_to_boundary_block(self, store, config, state):
        # Build a chain across one epoch boundary.
        parent = GENESIS_ROOT
        boundary_block = None
        for slot in range(1, config.slots_per_epoch + 2):
            block = BeaconBlock.create(slot=slot, proposer_index=0, parent_root=parent)
            store.on_block(block)
            parent = block.root
            if slot == config.slots_per_epoch:
                boundary_block = block
        head = store.get_head(state)
        checkpoint = store.checkpoint_for_epoch(1, head)
        assert checkpoint.epoch == 1
        assert checkpoint.root == boundary_block.root

    def test_checkpoint_for_epoch_zero_is_genesis(self, store, state):
        assert store.checkpoint_for_epoch(0, GENESIS_ROOT).root == GENESIS_ROOT


class TestForkHelpers:
    def test_fork_exists(self, store):
        assert not fork_exists(store)
        add_fork(store)
        assert fork_exists(store)

    def test_branch_heads(self, store):
        a, b = add_fork(store)
        assert set(branch_heads(store)) == {a.root, b.root}
