"""Differential suite: view-sharded runs are bit-identical to per-node runs.

The tentpole claim of the view-sharding refactor is that validators on the
same partition side perceive the identical message stream, so simulating
one ``Node`` per view group loses nothing.  These tests pin that claim by
running every scenario family twice — ``view_sharding=True`` (grouped) and
``view_sharding=False`` (one node per validator) — and comparing

* the per-epoch snapshots (finalized epochs per node, Byzantine
  proportion, leak flags, Safety flags),
* the final :class:`BeaconState` of every validator (stakes, inactivity
  scores, justified/finalized checkpoint maps — full value equality),
* the slashed sets, and
* the Safety verdict,

for bitwise-equal results.  A second axis checks that the ``"python"``
reference backend agrees with ``"numpy"`` inside the grouped engine.
"""

import pytest

from repro.network.latency import FixedJitter
from repro.sim.scenarios import (
    SCENARIO_PRESETS,
    build_balancing_attack_simulation,
    build_behavior_mix_simulation,
    build_honest_simulation,
    build_offline_fraction_simulation,
    build_partitioned_simulation,
    build_preset,
)
from repro.spec.config import SpecConfig

AGGRESSIVE_LEAK = SpecConfig.minimal().with_overrides(inactivity_penalty_quotient=2 ** 7)

#: (id, builder, kwargs, epochs) — every scenario family the repo ships.
SCENARIOS = [
    ("healthy", build_honest_simulation, {"n_validators": 12}, 6),
    (
        "offline",
        build_offline_fraction_simulation,
        {"n_validators": 10, "offline_fraction": 0.4},
        8,
    ),
    ("partition", build_partitioned_simulation, {"n_validators": 12, "p0": 0.5}, 6),
    (
        "partition-heals",
        build_partitioned_simulation,
        {"n_validators": 12, "p0": 0.5, "gst_epoch": 2},
        8,
    ),
    (
        "partition-uneven",
        build_partitioned_simulation,
        {"n_validators": 15, "p0": 0.6},
        6,
    ),
    (
        "safety-violation",
        build_partitioned_simulation,
        {"n_validators": 12, "p0": 0.5, "config": AGGRESSIVE_LEAK},
        14,
    ),
    (
        "double-voting",
        build_partitioned_simulation,
        {
            "n_validators": 12,
            "p0": 0.5,
            "byzantine_fraction": 0.25,
            "byzantine_strategy": "double-voting",
            "gst_epoch": 3,
        },
        8,
    ),
    (
        "double-voting-no-heal",
        build_partitioned_simulation,
        {
            "n_validators": 12,
            "p0": 0.5,
            "byzantine_fraction": 0.25,
            "byzantine_strategy": "double-voting",
        },
        4,
    ),
    (
        "alternating",
        build_partitioned_simulation,
        {
            "n_validators": 16,
            "p0": 0.5,
            "byzantine_fraction": 0.25,
            "byzantine_strategy": "alternating",
            "gst_epoch": 4,
        },
        10,
    ),
    (
        "alternating-finalizer",
        build_partitioned_simulation,
        {
            "n_validators": 16,
            "p0": 0.5,
            "byzantine_fraction": 0.25,
            "byzantine_strategy": "alternating-finalizer",
        },
        8,
    ),
    (
        "bouncing",
        build_partitioned_simulation,
        {
            "n_validators": 12,
            "p0": 0.5,
            "byzantine_fraction": 0.25,
            "byzantine_strategy": "bouncing",
            "gst_epoch": 1,
        },
        5,
    ),
    # Balancing scenarios run over a *healthy* network: the fork exists
    # purely through targeted sends, so the grouped engine must split its
    # single honest view dynamically — the tentpole of the refactor.
    (
        "balancing",
        build_balancing_attack_simulation,
        {"n_validators": 16},
        4,
    ),
    (
        "balancing-sway-delay",
        build_balancing_attack_simulation,
        {"n_validators": 16, "sway_delay": 2.0},
        4,
    ),
    (
        "balancing-uneven",
        build_balancing_attack_simulation,
        {"n_validators": 12, "byzantine_fraction": 0.25},
        4,
    ),
    (
        "balancing-merge",
        build_balancing_attack_simulation,
        {"n_validators": 16, "merge_views": True},
        4,
    ),
    # Latency-model scenarios: per-validator sampled delivery times must
    # not break the grouped==per-node contract.  Default parameters keep
    # every latency inside one phase window (no splits); the wide-jitter
    # entry deliberately scatters deliveries across phase boundaries so
    # equivalence must survive latency-induced view splits.
    (
        "healthy-jitter",
        build_honest_simulation,
        {"n_validators": 12, "latency_model": "jitter"},
        4,
    ),
    (
        "healthy-lognormal",
        build_honest_simulation,
        {"n_validators": 12, "latency_model": "lognormal", "latency_seed": 3},
        4,
    ),
    (
        "healthy-gossip",
        build_honest_simulation,
        {"n_validators": 16, "latency_model": "gossip"},
        4,
    ),
    (
        "partition-gossip",
        build_partitioned_simulation,
        {"n_validators": 12, "p0": 0.5, "latency_model": "gossip"},
        4,
    ),
    (
        "partition-lognormal-heals",
        build_partitioned_simulation,
        {"n_validators": 12, "p0": 0.5, "gst_epoch": 2, "latency_model": "lognormal"},
        6,
    ),
    (
        "wide-jitter-splits",
        build_honest_simulation,
        {
            "n_validators": 12,
            "latency_model": FixedJitter(base=0.5, jitter=6.0, seed=2),
        },
        4,
    ),
    # Behavior profiles: lazy (missed/late attestations) and intermittent
    # (whole epochs offline) honest validators take the per-validator
    # dispatch path; their seeded draws must agree across sharding modes.
    (
        "behavior-mix",
        build_behavior_mix_simulation,
        {"n_validators": 16, "lazy_fraction": 0.25, "intermittent_fraction": 0.25},
        6,
    ),
    (
        "behavior-gossip",
        build_behavior_mix_simulation,
        {
            "n_validators": 16,
            "lazy_fraction": 0.25,
            "intermittent_fraction": 0.25,
            "latency_model": "gossip",
        },
        4,
    ),
]

SCENARIO_IDS = [scenario[0] for scenario in SCENARIOS]

#: Scenarios re-run on the pure-python kernel backend (kept to the
#: families that exercise distinct code paths, for runtime).
PYTHON_BACKEND_IDS = {
    "healthy",
    "partition",
    "double-voting",
    "bouncing",
    "balancing",
    "healthy-gossip",
    "wide-jitter-splits",
    "behavior-mix",
}


def assert_runs_equivalent(grouped, per_node):
    assert grouped.epochs_run == per_node.epochs_run
    assert grouped.honest_indices == per_node.honest_indices
    assert grouped.byzantine_indices == per_node.byzantine_indices
    # Per-epoch global observables, bit-for-bit.
    assert grouped.snapshots == per_node.snapshots
    # Full final-state value equality for every validator's view.
    assert set(grouped.final_states) == set(per_node.final_states)
    for index in grouped.final_states:
        assert grouped.final_states[index] == per_node.final_states[index], (
            f"final state of validator {index} diverged"
        )
    assert grouped.slashed_indices == per_node.slashed_indices
    assert grouped.safety_violated() == per_node.safety_violated()
    assert grouped.first_safety_violation_epoch() == per_node.first_safety_violation_epoch()
    assert grouped.leak_epochs() == per_node.leak_epochs()


class TestGroupedEquivalence:
    @pytest.mark.parametrize(
        "name, builder, kwargs, epochs", SCENARIOS, ids=SCENARIO_IDS
    )
    def test_grouped_matches_per_node(self, name, builder, kwargs, epochs):
        grouped = builder(view_sharding=True, **kwargs).run(epochs)
        per_node = builder(view_sharding=False, **kwargs).run(epochs)
        assert_runs_equivalent(grouped, per_node)

    @pytest.mark.parametrize(
        "name, builder, kwargs, epochs",
        [s for s in SCENARIOS if s[0] in PYTHON_BACKEND_IDS],
        ids=sorted(PYTHON_BACKEND_IDS & set(SCENARIO_IDS), key=SCENARIO_IDS.index),
    )
    def test_python_backend_matches_numpy(self, name, builder, kwargs, epochs):
        numpy_run = builder(view_sharding=True, backend="numpy", **kwargs).run(epochs)
        python_run = builder(view_sharding=True, backend="python", **kwargs).run(epochs)
        assert_runs_equivalent(numpy_run, python_run)

    @pytest.mark.parametrize(
        "name, builder, kwargs, epochs",
        [s for s in SCENARIOS if s[0] in {"partition", "bouncing", "balancing"}],
        ids=["partition", "bouncing", "balancing"],
    )
    def test_per_node_python_backend_matches(self, name, builder, kwargs, epochs):
        # The full 2x2 (sharding x backend) closes on these two families.
        grouped = builder(view_sharding=True, backend="python", **kwargs).run(epochs)
        per_node = builder(view_sharding=False, backend="python", **kwargs).run(epochs)
        assert_runs_equivalent(grouped, per_node)


class TestMixedAgentClusters:
    def _build(self, view_sharding: bool):
        # Honest, intermittent (two phases) and offline agents mixed in one
        # healthy network: a slot committee clusters into several batches
        # per view, exercising the (group, committee key) dispatch.
        from repro.agents.honest import HonestAgent, IntermittentAgent, OfflineAgent
        from repro.network.partition import PartitionSchedule
        from repro.sim.engine import SimulationEngine
        from repro.spec.validator import make_registry

        config = SpecConfig.minimal()
        registry = make_registry(12, config)
        agents = {}
        for validator in registry:
            index = validator.index
            if index < 6:
                agents[index] = HonestAgent(index)
            elif index < 9:
                agents[index] = IntermittentAgent(index, period=2, phase=index % 2)
            elif index < 11:
                agents[index] = OfflineAgent(index)
            else:
                agents[index] = HonestAgent(index)
        return SimulationEngine(
            registry=registry,
            agents=agents,
            schedule=PartitionSchedule.fully_connected(delta=1.0),
            config=config,
            view_sharding=view_sharding,
        )

    def test_mixed_clusters_match_per_node(self):
        grouped = self._build(view_sharding=True).run(6)
        per_node = self._build(view_sharding=False).run(6)
        assert_runs_equivalent(grouped, per_node)


class TestInPartitionByzantine:
    """Byzantine validators *inside* a partition (not bridges).

    The adversary's partition-targeted audiences include every Byzantine
    validator, so a Byzantine partition member receives cross-branch
    traffic its honest partition peers never see — it must get its own
    view group or the honest side would ingest equivocating votes and
    mint slashing evidence that per-node simulation never produces.
    """

    def _build(self, view_sharding: bool):
        from repro.agents.byzantine import DoubleVotingAgent
        from repro.agents.honest import HonestAgent
        from repro.network.partition import PartitionSchedule
        from repro.sim.engine import SimulationEngine
        from repro.spec.validator import make_registry

        config = SpecConfig.minimal()
        registry = make_registry(12, config)
        # Validator 0 is Byzantine but a *member* of branch-1 (no bridges).
        schedule = PartitionSchedule.two_way_split(
            honest_indices=list(range(12)),
            active_fraction=0.5,
            gst=10 ** 9,
            delta=1.0,
            bridge_indices=[],
        )
        partition_members = {
            name: set(schedule.members_of(name)) for name in schedule.partition_names()
        }
        agents = {index: HonestAgent(index) for index in range(12)}
        agents[0] = DoubleVotingAgent(0, partition_members)
        return SimulationEngine(
            registry=registry,
            agents=agents,
            schedule=schedule,
            config=config,
            view_sharding=view_sharding,
        )

    def test_in_partition_byzantine_gets_own_view(self):
        engine = self._build(view_sharding=True)
        assert "branch-1-byzantine" in engine.view_groups
        assert engine.view_groups["branch-1-byzantine"] == (0,)
        assert 0 not in engine.view_groups["branch-1"]

    def test_in_partition_byzantine_matches_per_node(self):
        grouped = self._build(view_sharding=True).run(6)
        per_node = self._build(view_sharding=False).run(6)
        assert_runs_equivalent(grouped, per_node)
        # Before any heal, the honest side must not have slashed anyone.
        assert grouped.slashed_indices == set()


class TestAttestationBatchValue:
    def test_batch_equality_and_hash_are_content_based(self):
        import numpy as np
        from repro.core.attestation_batch import AttestationBatch
        from repro.spec.checkpoint import Checkpoint
        from repro.spec.types import GENESIS_ROOT, Root

        source = Checkpoint(epoch=0, root=GENESIS_ROOT)
        target = Checkpoint(epoch=1, root=Root.from_label("target"))
        first = AttestationBatch(
            slot=5, head_root=target.root, source=source, target=target,
            validators=np.array([1, 2, 3]),
        )
        second = AttestationBatch(
            slot=5, head_root=target.root, source=source, target=target,
            validators=np.array([1, 2, 3]),
        )
        third = AttestationBatch(
            slot=5, head_root=target.root, source=source, target=target,
            validators=np.array([1, 2, 4]),
        )
        assert first == second and hash(first) == hash(second)
        assert first != third
        assert first != "not a batch"
        assert len({first, second, third}) == 2


class TestViewGroupStructure:
    def test_healthy_network_is_one_view(self):
        engine = build_honest_simulation(n_validators=12)
        assert len(engine.views) == 1
        assert set(engine.view_groups["global"]) == set(range(12))

    def test_partition_yields_two_views(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        assert set(engine.view_groups) == {"branch-1", "branch-2"}

    def test_byzantine_bridge_gets_its_own_view(self):
        engine = build_partitioned_simulation(
            n_validators=12,
            p0=0.5,
            byzantine_fraction=0.25,
            byzantine_strategy="double-voting",
        )
        assert set(engine.view_groups) == {"branch-1", "branch-2", "bridge-byzantine"}
        assert set(engine.view_groups["bridge-byzantine"]) == set(
            engine.byzantine_indices()
        )

    def test_partition_named_bridge_does_not_collide(self):
        # A partition literally named "bridge" must not be overwritten by
        # the bridge class's derived group name.
        from repro.agents.honest import HonestAgent
        from repro.network.partition import Partition, PartitionSchedule
        from repro.sim.engine import SimulationEngine
        from repro.spec.validator import make_registry

        config = SpecConfig.minimal()
        registry = make_registry(6, config)
        schedule = PartitionSchedule(
            partitions=(
                Partition(name="bridge", members=frozenset({0, 1})),
                Partition(name="other", members=frozenset({2, 3})),
            ),
            gst=10 ** 9,
            delta=1.0,
        )
        agents = {i: HonestAgent(i) for i in range(6)}
        engine = SimulationEngine(
            registry=registry, agents=agents, schedule=schedule, config=config
        )
        assert set(engine.view_groups["bridge"]) == {0, 1}
        groups = {frozenset(m) for m in engine.view_groups.values()}
        assert frozenset({4, 5}) in groups  # the real bridge class survives
        assert sorted(engine.group_of) == list(range(6))

    def test_sharding_off_gives_one_node_per_validator(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5, view_sharding=False)
        assert len(engine.views) == 12

    def test_group_members_share_state_object(self):
        engine = build_partitioned_simulation(n_validators=12, p0=0.5)
        result = engine.run(4)
        members = engine.view_groups["branch-1"]
        states = {id(result.final_states[index]) for index in members}
        assert len(states) == 1
        assert len(result.distinct_final_states()) == len(engine.views)
        assert result.view_groups == engine.view_groups

    def test_grouped_transport_schedules_fewer_deliveries(self):
        grouped = build_partitioned_simulation(n_validators=16, p0=0.5)
        per_node = build_partitioned_simulation(n_validators=16, p0=0.5, view_sharding=False)
        grouped.run(4)
        per_node.run(4)
        assert grouped.network.stats.delivered < per_node.network.stats.delivered / 4

    def test_member_inclusion_cursors_are_independent(self):
        # Two members of a fresh view build blocks: both include the same
        # seen attestations (independent consumption), and a member's
        # second block starts after its first (cursor advanced).
        from repro.sim.node import Node
        from repro.network.message import Message
        from repro.spec.block import BeaconBlock
        from repro.spec.types import GENESIS_ROOT
        from repro.spec.validator import make_registry

        config = SpecConfig.minimal()
        view = Node(
            validator_index=0,
            registry=make_registry(8, config),
            config=config,
            members=(0, 1, 2, 3),
        )
        block = BeaconBlock.create(slot=1, proposer_index=4, parent_root=GENESIS_ROOT)
        view.receive(Message.block(block, sender=4, sent_at=0.0))
        for validator in (4, 5, 6):
            attestation = view.attestation_for(slot=1, validator_index=validator)
            view.receive(Message.attestation(attestation, sender=validator, sent_at=1.0))
        first = view.build_block(slot=2, proposer=0)
        second = view.build_block(slot=2, proposer=1)
        assert len(first.attestations) == 3
        assert first.attestations == second.attestations
        follow_up = view.build_block(slot=3, proposer=0)
        assert follow_up.attestations == ()


class TestBalancingStructure:
    """The balancing scenario is the canonical dynamic-split exercise."""

    def test_grouped_run_fragments_once_and_stays_bounded(self):
        engine = build_balancing_attack_simulation(n_validators=16)
        # Before slot 1 the healthy network is one honest view (+ the
        # Byzantine coordination group).
        assert len(engine.views) == 2
        result = engine.run(4)
        splits = result.split_events()
        assert len(splits) == 1
        (event,) = splits
        assert event.kind == "split"
        assert event.parent == "global"
        assert event.slot == 1
        # Left honest half + right honest half + Byzantine group: peak
        # live views stay O(branches), never O(N).
        assert result.peak_view_count == 3
        assert set(result.view_groups[event.child]) == set(event.members)

    def test_split_preserves_representative_convention(self):
        engine = build_balancing_attack_simulation(n_validators=16)
        engine.run(2)
        for name, members in engine.view_groups.items():
            assert engine.views[name].validator_index == min(members)
            assert engine.views[name].members == tuple(sorted(members))

    def test_per_node_run_records_no_view_events(self):
        result = build_balancing_attack_simulation(
            n_validators=16, view_sharding=False
        ).run(2)
        assert result.view_events == []


class TestLatencyViewStructure:
    """How sampled latencies interact with view sharding."""

    def test_default_models_do_not_fragment_views(self):
        # Default parameters keep every latency within one phase window:
        # the healthy network must stay a single view (this pins the
        # origin-pays-one-hop rule — a zero-latency self-delivery would
        # split the proposer out of its group on every message).
        for model in ("jitter", "lognormal", "gossip"):
            result = build_honest_simulation(
                n_validators=16, latency_model=model
            ).run(3)
            assert result.peak_view_count == 1, model
            assert result.split_events() == []

    def test_wide_jitter_forces_latency_induced_splits(self):
        result = build_honest_simulation(
            n_validators=12, latency_model=FixedJitter(base=0.5, jitter=6.0, seed=2)
        ).run(4)
        assert result.split_events(), "6s jitter must cross phase boundaries"
        assert result.peak_view_count > 1
        assert result.transport_stats.latency_delayed > 0

    def test_merge_views_refuses_wide_jitter_fragmentation(self):
        fragmented = build_honest_simulation(
            n_validators=12, latency_model=FixedJitter(base=0.5, jitter=6.0, seed=2)
        )
        merged = build_honest_simulation(
            n_validators=12,
            latency_model=FixedJitter(base=0.5, jitter=6.0, seed=2),
            merge_views=True,
        )
        frag_result = fragmented.run(4)
        merge_result = merged.run(4)
        assert any(e.kind == "merge" for e in merge_result.view_events)
        assert merge_result.peak_view_count <= frag_result.peak_view_count
        assert_runs_equivalent(
            merge_result,
            build_honest_simulation(
                n_validators=12,
                latency_model=FixedJitter(base=0.5, jitter=6.0, seed=2),
                view_sharding=False,
            ).run(4),
        )

    def test_behavior_mix_marks_lazy_delays(self):
        result = build_behavior_mix_simulation(
            n_validators=16,
            lazy_fraction=0.5,
            miss_rate=0.0,
            max_delay=4.0,
        ).run(4)
        assert result.transport_stats.lazy_delayed > 0
        assert result.transport_stats.adversary_delayed == 0


class TestMainnetScalePresets:
    def test_presets_are_buildable_small(self):
        # Every preset constructs and runs when shrunk to test size —
        # the full sizes are exercised by benchmarks/bench_slot_sim.py.
        for name in SCENARIO_PRESETS:
            engine = build_preset(name, n_validators=16, config=SpecConfig.minimal())
            result = engine.run(2)
            assert result.epochs_run == 2

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            build_preset("mainnet-does-not-exist")

    def test_preset_at_scale_constructs(self):
        # Construction at 10k validators: impossible per-node (10⁸ registry
        # entries), cheap with view sharding (2 views).
        engine = build_preset("mainnet-partition-10k")
        assert len(engine.registry) == 10_000
        assert len(engine.views) == 2
