"""Tests for repro.spec.blocktree."""

import pytest

from repro.spec.block import BeaconBlock
from repro.spec.blocktree import BlockTree, UnknownBlockError
from repro.spec.types import GENESIS_ROOT, Root


def chain_of(tree: BlockTree, length: int, tag: str = "") -> list:
    """Append a linear chain of ``length`` blocks to genesis; return the blocks."""
    blocks = []
    parent = GENESIS_ROOT
    for i in range(1, length + 1):
        block = BeaconBlock.create(slot=i, proposer_index=i % 4, parent_root=parent, branch_tag=tag)
        tree.add_block(block)
        blocks.append(block)
        parent = block.root
    return blocks


class TestBlockTreeBasics:
    def test_new_tree_contains_genesis(self):
        tree = BlockTree()
        assert len(tree) == 1
        assert GENESIS_ROOT in tree
        assert tree.get(GENESIS_ROOT).is_genesis()

    def test_requires_genesis_root(self):
        non_genesis = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT)
        with pytest.raises(ValueError):
            BlockTree(genesis=non_genesis)

    def test_add_block_and_get(self):
        tree = BlockTree()
        block = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT)
        assert tree.add_block(block)
        assert tree.get(block.root) == block

    def test_add_duplicate_returns_false(self):
        tree = BlockTree()
        block = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT)
        assert tree.add_block(block)
        assert not tree.add_block(block)
        assert len(tree) == 2

    def test_add_block_with_unknown_parent_raises(self):
        tree = BlockTree()
        orphan = BeaconBlock.create(
            slot=2, proposer_index=0, parent_root=Root.from_label("missing")
        )
        with pytest.raises(UnknownBlockError):
            tree.add_block(orphan)

    def test_add_block_with_nonincreasing_slot_raises(self):
        tree = BlockTree()
        first = BeaconBlock.create(slot=5, proposer_index=0, parent_root=GENESIS_ROOT)
        tree.add_block(first)
        bad = BeaconBlock.create(slot=5, proposer_index=1, parent_root=first.root)
        with pytest.raises(ValueError):
            tree.add_block(bad)

    def test_get_unknown_raises(self):
        tree = BlockTree()
        with pytest.raises(UnknownBlockError):
            tree.get(Root.from_label("nope"))

    def test_children_and_leaves(self):
        tree = BlockTree()
        a = BeaconBlock.create(slot=1, proposer_index=0, parent_root=GENESIS_ROOT, branch_tag="a")
        b = BeaconBlock.create(slot=1, proposer_index=1, parent_root=GENESIS_ROOT, branch_tag="b")
        tree.add_block(a)
        tree.add_block(b)
        assert set(tree.children_of(GENESIS_ROOT)) == {a.root, b.root}
        assert set(tree.leaves()) == {a.root, b.root}


class TestBlockTreeAncestry:
    def test_chain_to_genesis_order(self):
        tree = BlockTree()
        blocks = chain_of(tree, 3)
        chain = tree.chain_to_genesis(blocks[-1].root)
        assert [block.slot for block in chain] == [0, 1, 2, 3]

    def test_is_ancestor(self):
        tree = BlockTree()
        blocks = chain_of(tree, 3)
        assert tree.is_ancestor(GENESIS_ROOT, blocks[-1].root)
        assert tree.is_ancestor(blocks[0].root, blocks[2].root)
        assert not tree.is_ancestor(blocks[2].root, blocks[0].root)

    def test_ancestor_at_slot(self):
        tree = BlockTree()
        blocks = chain_of(tree, 5)
        assert tree.ancestor_at_slot(blocks[-1].root, 3) == blocks[2].root
        assert tree.ancestor_at_slot(blocks[-1].root, 0) == GENESIS_ROOT
        # Slot beyond the head returns the head itself.
        assert tree.ancestor_at_slot(blocks[-1].root, 100) == blocks[-1].root

    def test_descendants(self):
        tree = BlockTree()
        blocks = chain_of(tree, 3)
        descendants = tree.descendants(GENESIS_ROOT)
        assert descendants == {block.root for block in blocks}
        assert tree.descendants(blocks[-1].root) == set()

    def test_common_ancestor_of_fork(self):
        tree = BlockTree()
        trunk = chain_of(tree, 2)
        fork_a = BeaconBlock.create(slot=3, proposer_index=0, parent_root=trunk[-1].root, branch_tag="a")
        fork_b = BeaconBlock.create(slot=3, proposer_index=1, parent_root=trunk[-1].root, branch_tag="b")
        tree.add_block(fork_a)
        tree.add_block(fork_b)
        assert tree.common_ancestor(fork_a.root, fork_b.root) == trunk[-1].root

    def test_common_ancestor_linear_chain(self):
        tree = BlockTree()
        blocks = chain_of(tree, 4)
        assert tree.common_ancestor(blocks[1].root, blocks[3].root) == blocks[1].root

    def test_highest_slot(self):
        tree = BlockTree()
        chain_of(tree, 7)
        assert tree.highest_slot() == 7
