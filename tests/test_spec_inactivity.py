"""Tests for repro.spec.inactivity (Equations 1 and 2, ejection)."""

import math

import pytest

from repro import constants
from repro.spec.config import SpecConfig
from repro.spec.inactivity import (
    apply_inactivity_penalties,
    discrete_ejection_epoch,
    discrete_stake_trajectory,
    eject_low_balance_validators,
    process_inactivity_epoch,
    update_inactivity_scores,
)
from repro.spec.state import BeaconState
from repro.spec.validator import make_registry


@pytest.fixture
def state():
    return BeaconState.genesis(make_registry(6), SpecConfig.mainnet())


class TestScoreUpdates:
    def test_inactive_score_increases_by_4(self, state):
        update_inactivity_scores(state, active_indices=set(), in_leak=True)
        assert all(v.inactivity_score == 4 for v in state.validators)

    def test_active_score_decreases_by_1_floored(self, state):
        state.validators[0].inactivity_score = 3
        update_inactivity_scores(state, active_indices={0, 1}, in_leak=True)
        assert state.validators[0].inactivity_score == 2
        assert state.validators[1].inactivity_score == 0  # floored at zero

    def test_out_of_leak_recovery_subtracts_16(self, state):
        for validator in state.validators:
            validator.inactivity_score = 20
        update_inactivity_scores(state, active_indices=set(), in_leak=False)
        # +4 for inactivity, then -16 recovery.
        assert all(v.inactivity_score == 8 for v in state.validators)

    def test_out_of_leak_recovery_floors_at_zero(self, state):
        for validator in state.validators:
            validator.inactivity_score = 2
        update_inactivity_scores(state, active_indices=set(), in_leak=False)
        assert all(v.inactivity_score == 0 for v in state.validators)

    def test_exited_validators_untouched(self, state):
        state.validators[0].exit(0)
        update_inactivity_scores(state, active_indices=set(), in_leak=True)
        assert state.validators[0].inactivity_score == 0


class TestPenalties:
    def test_penalty_formula(self, state):
        state.validators[0].inactivity_score = 100
        before = state.validators[0].stake
        total = apply_inactivity_penalties(state)
        expected = 100 * before / 2 ** 26
        assert state.validators[0].stake == pytest.approx(before - expected)
        assert total == pytest.approx(expected)

    def test_zero_score_no_penalty(self, state):
        total = apply_inactivity_penalties(state)
        assert total == 0.0
        assert all(v.stake == pytest.approx(32.0) for v in state.validators)

    def test_exited_validators_not_penalized(self, state):
        state.validators[0].inactivity_score = 1000
        state.validators[0].exit(0)
        apply_inactivity_penalties(state)
        assert state.validators[0].stake == pytest.approx(32.0)


class TestEjection:
    def test_low_balance_validators_ejected(self, state):
        state.validators[2].stake = 16.75
        ejected = eject_low_balance_validators(state)
        assert ejected == [2]
        assert not state.validators[2].is_active(state.current_epoch + 1)

    def test_healthy_validators_not_ejected(self, state):
        assert eject_low_balance_validators(state) == []

    def test_already_exited_not_reejected(self, state):
        state.validators[2].stake = 1.0
        state.validators[2].exit(0)
        assert eject_low_balance_validators(state) == []


class TestProcessEpoch:
    def test_full_epoch_in_leak(self, state):
        state.current_epoch = 10  # leak active
        for validator in state.validators:
            validator.inactivity_score = 8
        update = process_inactivity_epoch(state, active_indices={0, 1, 2})
        assert update.in_leak
        assert update.total_penalty > 0
        assert set(update.inactive_indices) == {3, 4, 5}
        # Scores: actives 8-1=7, inactives 8+4=12.
        assert state.validators[0].inactivity_score == 7
        assert state.validators[5].inactivity_score == 12

    def test_no_penalty_outside_leak(self, state):
        state.current_epoch = 1
        for validator in state.validators:
            validator.inactivity_score = 8
        update = process_inactivity_epoch(state, active_indices=set())
        assert not update.in_leak
        assert update.total_penalty == 0.0
        assert all(v.stake == pytest.approx(32.0) for v in state.validators)

    def test_forced_leak_flag(self, state):
        state.current_epoch = 0
        for validator in state.validators:
            validator.inactivity_score = 8
        update = process_inactivity_epoch(state, active_indices=set(), in_leak=True)
        assert update.in_leak
        assert update.total_penalty > 0


class TestReferenceTrajectories:
    def test_active_trajectory_constant(self):
        trajectory = discrete_stake_trajectory("active", 100)
        assert trajectory[0] == trajectory[-1] == pytest.approx(32.0)

    def test_inactive_trajectory_decreases(self):
        trajectory = discrete_stake_trajectory("inactive", 100)
        assert trajectory[-1] < trajectory[0]
        assert all(b <= a + 1e-12 for a, b in zip(trajectory, trajectory[1:]))

    def test_semi_active_decays_slower_than_inactive(self):
        semi = discrete_stake_trajectory("semi-active", 2000)
        inactive = discrete_stake_trajectory("inactive", 2000)
        assert semi[-1] > inactive[-1]

    def test_unknown_behavior_rejected(self):
        with pytest.raises(ValueError):
            discrete_stake_trajectory("lazy", 10)

    def test_discrete_ejection_epochs_close_to_paper(self):
        inactive = discrete_ejection_epoch("inactive")
        semi = discrete_ejection_epoch("semi-active")
        # Paper reports 4685 and 7652; the discrete recurrence lands within 1%.
        assert abs(inactive - constants.PAPER_INACTIVE_EJECTION_EPOCH) / 4685 < 0.01
        assert abs(semi - constants.PAPER_SEMI_ACTIVE_EJECTION_EPOCH) / 7652 < 0.01

    def test_active_never_ejected(self):
        assert discrete_ejection_epoch("active", max_epochs=2000) is None

    def test_trajectory_matches_continuous_model_early(self):
        # Before ejection the discrete trajectory should track s0*exp(-t^2/2^25).
        trajectory = discrete_stake_trajectory("inactive", 1000)
        t = 1000
        continuous = 32.0 * math.exp(-(t ** 2) / 2 ** 25)
        assert trajectory[t] == pytest.approx(continuous, rel=0.01)
