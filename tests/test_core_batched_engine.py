"""Tests for the trial-batched engine and finality tracker.

The contract under test: a ``BatchedStakeEngine`` holding ``(trials,
*entry_shape)`` state evolves every trial **bit-identically** to a
standalone :class:`StakeEngine` fed that trial's row — per-element kernel
arithmetic is shape-independent and the weighted reductions use ``np.sum``
over the entry axes, whose pairwise blocking depends only on the entry
count.  Likewise :class:`BatchedFinalityTracker` must match the scalar
streaming tracker element for element.
"""

import numpy as np
import pytest

from repro.core.ffg import BatchedFinalityTracker, FinalityTracker
from repro.core.stake_engine import BatchedStakeEngine, StakeEngine
from repro.spec.config import SpecConfig

MAINNET = SpecConfig.mainnet()
FAST = MAINNET.with_overrides(inactivity_penalty_quotient=2 ** 14)

BACKENDS = ("numpy", "python")


def make_states(seed=0, trials=6, n=8):
    rng = np.random.default_rng(seed)
    stakes = rng.uniform(17.0, 32.0, (trials, n))
    return rng, stakes


class TestBatchedStakeEngineConstruction:
    def test_requires_trial_axis(self):
        with pytest.raises(ValueError):
            BatchedStakeEngine(np.full(5, 32.0))

    def test_requires_entries(self):
        with pytest.raises(ValueError):
            BatchedStakeEngine(np.empty((3, 0)))

    def test_shape_mismatches_rejected(self):
        stakes = np.full((2, 4), 32.0)
        with pytest.raises(ValueError):
            BatchedStakeEngine(stakes, scores=np.zeros((2, 3)))
        with pytest.raises(ValueError):
            BatchedStakeEngine(stakes, ejected=np.zeros((3, 4), dtype=bool))
        engine = BatchedStakeEngine(stakes)
        with pytest.raises(ValueError):
            engine.step(np.ones((2, 5), dtype=bool))

    def test_uniform_constructor(self):
        engine = BatchedStakeEngine.uniform(3, 5, config=FAST)
        assert engine.trials == 3
        assert engine.entry_shape == (5,)
        assert np.all(engine.stakes == FAST.max_effective_balance)
        assert np.all(engine.ejection_epoch == -1)

    def test_weights_broadcast_over_entry_shape(self):
        # A (n,)-shaped weighting broadcasts across a (2, n) entry shape.
        engine = BatchedStakeEngine(
            np.full((4, 2, 3), 32.0), weights=np.array([0.5, 0.25, 0.25])
        )
        assert engine.weights.shape == (2, 3)
        assert np.array_equal(engine.weights[0], engine.weights[1])


class TestBatchedMatchesPerTrialEngine:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_step_trajectories_bit_identical(self, backend):
        rng, stakes0 = make_states(seed=1)
        trials, n = stakes0.shape
        batched = BatchedStakeEngine(stakes0, config=FAST, backend=backend)
        singles = [
            StakeEngine(stakes0[t], config=FAST, backend=backend)
            for t in range(trials)
        ]
        for _ in range(120):
            active = rng.random((trials, n)) < 0.4
            leaks = rng.random(trials) < 0.8
            batched.step(active, in_leak=leaks)
            for t, engine in enumerate(singles):
                engine.step(active[t], in_leak=bool(leaks[t]))
        for t, engine in enumerate(singles):
            assert np.array_equal(batched.stakes[t], engine.stakes)
            assert np.array_equal(batched.scores[t], engine.scores)
            assert np.array_equal(batched.ejected[t], engine.ejected)
            assert batched.total_stake()[t] == engine.total_stake()
            for index, epoch in engine.ejection_epochs.items():
                assert batched.ejection_epoch[t, index] == epoch
            never = [
                i for i in range(n) if i not in engine.ejection_epochs
            ]
            assert np.all(batched.ejection_epoch[t, never] == -1)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_rewards_bit_identical(self, backend):
        rng, stakes0 = make_states(seed=2, trials=4, n=6)
        trials, n = stakes0.shape
        batched = BatchedStakeEngine(stakes0, config=MAINNET, backend=backend)
        singles = [
            StakeEngine(stakes0[t], config=MAINNET, backend=backend)
            for t in range(trials)
        ]
        for _ in range(10):
            active = rng.random((trials, n)) < 0.7
            leaks = rng.random(trials) < 0.3
            batched.apply_attestation_rewards(active, in_leak=leaks)
            for t, engine in enumerate(singles):
                engine.apply_attestation_rewards(active[t], in_leak=bool(leaks[t]))
        for t, engine in enumerate(singles):
            assert np.array_equal(batched.stakes[t], engine.stakes)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_slashings_bit_identical(self, backend):
        rng, stakes0 = make_states(seed=3, trials=4, n=6)
        trials, n = stakes0.shape
        batched = BatchedStakeEngine(stakes0, config=MAINNET, backend=backend)
        singles = [
            StakeEngine(stakes0[t], config=MAINNET, backend=backend)
            for t in range(trials)
        ]
        slashable = rng.random((trials, n)) < 0.3
        batched.apply_slashings(slashable)
        for t, engine in enumerate(singles):
            engine.apply_slashings(slashable[t])
            assert np.array_equal(batched.stakes[t], engine.stakes)
            assert np.array_equal(batched.slashed[t], engine.slashed)
            assert np.array_equal(batched.ejected[t], engine.ejected)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reductions_match_per_trial_engine(self, backend):
        rng, stakes0 = make_states(seed=4, trials=5, n=7)
        trials, n = stakes0.shape
        weights = rng.uniform(0.5, 1.5, n)
        batched = BatchedStakeEngine(
            stakes0, weights=weights, config=FAST, backend=backend
        )
        singles = [
            StakeEngine(stakes0[t], weights=weights, config=FAST, backend=backend)
            for t in range(trials)
        ]
        for _ in range(60):
            active = rng.random((trials, n)) < 0.3
            batched.step(active)
            for t, engine in enumerate(singles):
                engine.step(active[t])
        mask = rng.random((trials, n)) < 0.5
        active = rng.random((trials, n)) < 0.5
        for t, engine in enumerate(singles):
            assert batched.total_stake()[t] == engine.total_stake()
            assert batched.stake_of(mask)[t] == engine.stake_of(mask[t])
            assert batched.active_ratio(active)[t] == engine.active_ratio(active[t])

    def test_raw_stake_of_keeps_ejected_values(self):
        # The Monte-Carlo stopping rule reads the Byzantine stake *raw*:
        # it freezes at its ejection value instead of dropping to zero.
        stakes = np.array([[32.0, 16.0], [32.0, 20.0]])
        engine = BatchedStakeEngine(stakes, weights=np.array([0.5, 0.5]))
        engine.ejected[:, 1] = True
        mask = np.zeros((2, 2), dtype=bool)
        mask[:, 1] = True
        assert np.array_equal(engine.stake_of(mask), [0.0, 0.0])
        assert np.array_equal(engine.stake_of(mask, effective=False), [8.0, 10.0])

    def test_active_ratio_zero_total_is_zero(self):
        engine = BatchedStakeEngine(np.full((2, 3), 32.0), config=MAINNET)
        engine.ejected[0] = True  # trial 0 fully ejected -> zero total
        ratios = engine.active_ratio(np.ones((2, 3), dtype=bool))
        assert ratios[0] == 0.0
        assert ratios[1] == 1.0


class TestBatchedFinalityTracker:
    def test_matches_streaming_tracker_elementwise(self):
        rng = np.random.default_rng(5)
        trials, epochs = 7, 40
        ratios = rng.random((trials, epochs)) * 0.5 + 0.45
        batched = BatchedFinalityTracker(supermajority=2.0 / 3.0, trials=trials)
        scalars = [FinalityTracker(supermajority=2.0 / 3.0) for _ in range(trials)]
        for epoch in range(epochs):
            justified, finalized_now = batched.observe(epoch, ratios[:, epoch])
            for t, tracker in enumerate(scalars):
                expected = tracker.observe(epoch, float(ratios[t, epoch]))
                assert (bool(justified[t]), bool(finalized_now[t])) == expected
        for t, tracker in enumerate(scalars):
            assert batched.finalized[t] == tracker.finalized
            assert batched.threshold_epoch[t] == (
                -1 if tracker.threshold_epoch is None else tracker.threshold_epoch
            )
            assert batched.finalization_epoch[t] == (
                -1 if tracker.finalization_epoch is None else tracker.finalization_epoch
            )
            assert batched.previous_justified[t] == tracker.previous_justified
            assert batched.previous_active_ratio[t] == tracker.previous_active_ratio

    def test_for_config_uses_supermajority(self):
        tracker = BatchedFinalityTracker.for_config(3, MAINNET)
        assert tracker.supermajority == MAINNET.supermajority_fraction
        assert tracker.trials == 3

    def test_shape_and_argument_validation(self):
        tracker = BatchedFinalityTracker(supermajority=2.0 / 3.0, trials=2)
        with pytest.raises(ValueError):
            tracker.observe(0, np.array([0.5, 0.5, 0.5]))
        with pytest.raises(ValueError):
            BatchedFinalityTracker(supermajority=2.0 / 3.0, trials=-1)

    def test_finalization_reported_once(self):
        tracker = BatchedFinalityTracker(supermajority=2.0 / 3.0, trials=1)
        tracker.observe(0, np.array([0.7]))
        _, now = tracker.observe(1, np.array([0.8]))
        assert bool(now[0])
        _, again = tracker.observe(2, np.array([0.9]))
        assert not bool(again[0])
        assert tracker.finalization_epoch[0] == 1
