"""Repository-level pytest configuration.

Makes ``src/`` importable even when the package has not been installed
(useful on offline machines where ``pip install -e .`` needs
``--no-build-isolation``).
"""

import pathlib
import sys

_SRC = pathlib.Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
