"""On-disk content-addressed cache for experiment results.

The production experiment service (ROADMAP item 4) answers the same
queries over and over: *run experiment X with configuration C and seed S*.
Every registered experiment is a deterministic function of exactly those
inputs plus the code that implements it, so the answer can be stored once
and replayed forever — provided the key captures all four ingredients.
This module implements that store:

* **Content addressing** — an entry's key is the BLAKE2 hash of
  ``(experiment id, canonical configuration JSON, seed, code
  fingerprint)``.  Canonicalisation (:func:`canonical_json`) makes the
  configuration representation-independent: dataclasses, tuples, sets and
  numpy scalars collapse to one sorted-key JSON form, so equal
  configurations always produce equal keys.
* **Fingerprint invalidation** — the code fingerprint
  (:func:`code_fingerprint`) hashes every source file of the ``repro``
  package, so editing any implementation file silently invalidates every
  cached result without version bookkeeping.
* **Robustness** — entries are written atomically (temp file +
  ``os.replace``) and verified on read; a corrupted or truncated entry
  counts as a miss and is recomputed and overwritten, never trusted.

Payloads are stored as JSON.  :meth:`ResultCache.fetch_or_compute`
returns the *JSON round-trip* of a freshly computed payload, so a cold
call and a later cache hit return byte-identical values (tuples never
leak through on the cold path only) — the property the sweep tests pin.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import os
import pathlib
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Union

#: Bump to orphan every existing cache entry on a format change.
#: Version 2: mapping keys are type-tagged during canonicalisation, so
#: ``{1: x}``, ``{"1": x}`` and ``{True: x}`` no longer collide into one
#: key — entries written by version-1 code are unreachable.
ENTRY_VERSION = 2

#: Hex digest length: 32 hex chars (16 bytes) keeps filenames short while
#: leaving collision probability negligible for any realistic cache size.
_DIGEST_SIZE = 16


# ----------------------------------------------------------------------
# Canonicalisation
# ----------------------------------------------------------------------
#: Mapping-key type tags.  A plain string key passes through untouched
#: unless it *looks* like a tagged key, in which case it is escaped with
#: the ``s:`` tag — so ordinary JSON-native payloads (summary rows,
#: config dicts) canonicalise to themselves, while ``{1: x}``,
#: ``{"1": x}`` and ``{True: x}`` all map to distinct canonical keys.
_KEY_TAG_RE = re.compile(r"^(?:s|i|b|f|n|r):")


def _canonical_key(key: Any) -> str:
    """The canonical string form of one mapping key, type-encoded.

    ``str`` keys stay verbatim (escaped with ``s:`` only when they match
    the tag syntax themselves); every other type carries an explicit tag
    (``b:`` bool before ``i:`` int — bool subclasses int — then ``f:``
    float, ``n:`` None, ``r:`` repr fallback).  Distinct key types can
    therefore never collapse into one canonical key.
    """
    if isinstance(key, str):
        return f"s:{key}" if _KEY_TAG_RE.match(key) else key
    if isinstance(key, bool):
        return f"b:{key}"
    if isinstance(key, int):
        return f"i:{key}"
    if isinstance(key, float):
        return f"f:{key!r}"
    if key is None:
        return "n:"
    return f"r:{key!r}"


def canonical_value(value: Any) -> Any:
    """Reduce ``value`` to plain JSON types, canonically.

    Dataclasses become dictionaries, mappings get type-encoded string
    keys (see :func:`_canonical_key`), tuples, lists and frozen/plain
    sets become lists (sets are sorted by their repr, so order is
    deterministic), and objects exposing ``item()`` (numpy scalars)
    collapse to the underlying Python number.  Anything else falls back
    to ``repr`` — stable for the config objects used here, and never
    silently ambiguous (two distinct reprs cannot collide into one key
    component).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, dict):
        return {
            _canonical_key(key): canonical_value(item) for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return [canonical_value(item) for item in sorted(value, key=repr)]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return canonical_value(value.item())
    return repr(value)


def canonical_json(value: Any) -> str:
    """The canonical JSON form of ``value`` (sorted keys, no whitespace)."""
    return json.dumps(canonical_value(value), sort_keys=True, separators=(",", ":"))


# ----------------------------------------------------------------------
# Atomic writes
# ----------------------------------------------------------------------
#: Per-process tmp-name discriminator: two threads writing the same key
#: in one process must never share a tmp file (``next`` on a counter is
#: atomic under the GIL), and the pid keeps processes apart.
_tmp_counter = itertools.count()


def atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (tmp file + ``os.replace``).

    Readers never observe a partial file.  The tmp name is unique per
    (process, call) — concurrent writers of the same path each replace
    the whole file, last writer wins — and a failed write always removes
    its tmp file, so no ``.tmp*`` litter survives an error or a crash
    between retries.  Used by the result cache and the experiment
    service's job store alike.
    """
    tmp_path = path.with_name(f"{path.name}.tmp-{os.getpid()}-{next(_tmp_counter)}")
    try:
        tmp_path.write_text(text, encoding="utf-8")
        os.replace(tmp_path, path)
    finally:
        tmp_path.unlink(missing_ok=True)


# ----------------------------------------------------------------------
# Code fingerprint
# ----------------------------------------------------------------------
_default_fingerprint: Optional[str] = None


def code_fingerprint(root: Union[None, str, pathlib.Path] = None) -> str:
    """BLAKE2 hash of every ``*.py`` file under ``root`` (default: ``repro``).

    The digest covers each file's package-relative path and content, in
    sorted path order, so renames, additions, deletions and edits all
    change the fingerprint.  The default-package fingerprint is computed
    once per process (source files do not change under a running
    service); pass an explicit ``root`` to bypass the memo.
    """
    global _default_fingerprint
    if root is None:
        if _default_fingerprint is None:
            _default_fingerprint = code_fingerprint(pathlib.Path(__file__).parent)
        return _default_fingerprint
    root = pathlib.Path(root)
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def result_key(
    experiment: str, config: Any, seed: Any = None, fingerprint: Optional[str] = None
) -> str:
    """The content address of one experiment result.

    A pure function of ``(experiment, canonical config JSON, seed, code
    fingerprint)`` — equal inputs give equal keys across processes and
    machines; changing any ingredient (including only the code) gives a
    fresh key.
    """
    if fingerprint is None:
        fingerprint = code_fingerprint()
    digest = hashlib.blake2b(digest_size=_DIGEST_SIZE)
    for part in (experiment, canonical_json(config), canonical_json(seed), fingerprint):
        digest.update(part.encode())
        digest.update(b"\0")
    return digest.hexdigest()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
#: Private miss sentinel: a stored payload may legitimately be ``None``,
#: so lookups that must distinguish "not present" from "present and
#: None" compare against this object instead of ``None``.
_MISS = object()


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries that existed on disk but failed validation (truncated,
    #: non-JSON, wrong version/key); each also counts as a miss.
    corrupted: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class ResultCache:
    """Content-addressed result store over a directory of JSON entries.

    One entry per key, written atomically; payloads must be JSON-
    serialisable (after :func:`canonical_value`).  The ``fingerprint``
    defaults to the live :func:`code_fingerprint`, so entries written by
    older code are unreachable (not deleted — a rollback finds them
    again).
    """

    def __init__(
        self,
        cache_dir: Union[str, pathlib.Path],
        fingerprint: Optional[str] = None,
    ) -> None:
        self.cache_dir = pathlib.Path(cache_dir)
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key_for(self, experiment: str, config: Any, seed: Any = None) -> str:
        """The content address this cache uses for ``(experiment, config, seed)``."""
        return result_key(experiment, config, seed, fingerprint=self.fingerprint)

    def path_for_key(self, key: str) -> pathlib.Path:
        return self.cache_dir / f"{key}.json"

    # ------------------------------------------------------------------
    def _lookup(self, key: str) -> Any:
        """The payload stored under ``key``, or the :data:`_MISS` sentinel.

        Any defect in the on-disk entry — unreadable, non-JSON, missing
        fields, version or key mismatch — is treated as a miss (and
        counted in ``stats.corrupted``), so a later :meth:`store`
        replaces the bad entry.  The sentinel (never ``None``) signals
        the miss, so a stored-``None`` payload is a perfectly ordinary
        hit.
        """
        path = self.path_for_key(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            self.stats.misses += 1
            return _MISS
        try:
            entry = json.loads(raw)
            if (
                not isinstance(entry, dict)
                or entry.get("version") != ENTRY_VERSION
                or entry.get("key") != key
                or "payload" not in entry
            ):
                raise ValueError("malformed cache entry")
        except (ValueError, TypeError):
            self.stats.corrupted += 1
            self.stats.misses += 1
            return _MISS
        self.stats.hits += 1
        return entry["payload"]

    def fetch_key(self, key: str) -> Optional[Any]:
        """The payload stored under ``key``, or ``None`` on a miss.

        ``None`` is ambiguous here (a stored payload may itself be
        ``None``); use :meth:`contains` or :meth:`fetch_or_compute` when
        the distinction matters — both detect misses via a private
        sentinel, never the payload value.
        """
        payload = self._lookup(key)
        return None if payload is _MISS else payload

    def fetch(self, experiment: str, config: Any, seed: Any = None) -> Optional[Any]:
        """Look up ``(experiment, config, seed)``; ``None`` on a miss."""
        return self.fetch_key(self.key_for(experiment, config, seed))

    def contains(self, experiment: str, config: Any, seed: Any = None) -> bool:
        """True when a valid entry exists (without hit/miss accounting)."""
        key = self.key_for(experiment, config, seed)
        stats = self.stats
        self.stats = CacheStats()
        try:
            return self._lookup(key) is not _MISS
        finally:
            self.stats = stats

    # ------------------------------------------------------------------
    def store(
        self, experiment: str, config: Any, seed: Any = None, payload: Any = None
    ) -> str:
        """Store ``payload`` under the content address; returns the key.

        The entry records the full addressing tuple alongside the payload
        so entries stay debuggable (``cat`` shows what produced them).
        The write is atomic with a per-(process, call) unique tmp name —
        concurrent same-key stores never share a tmp file — and a failed
        write cleans its tmp file up instead of leaving ``.tmp*`` litter
        the corrupted-entry scan cannot reclaim.
        """
        key = self.key_for(experiment, config, seed)
        entry = {
            "version": ENTRY_VERSION,
            "key": key,
            "experiment": experiment,
            "config": canonical_value(config),
            "seed": canonical_value(seed),
            "fingerprint": self.fingerprint,
            "payload": canonical_value(payload),
        }
        atomic_write_text(self.path_for_key(key), json.dumps(entry, indent=2) + "\n")
        self.stats.stores += 1
        return key

    # ------------------------------------------------------------------
    def fetch_or_compute(
        self,
        experiment: str,
        config: Any,
        compute: Callable[[], Any],
        seed: Any = None,
    ) -> Tuple[Any, bool]:
        """Return ``(payload, hit)`` — from the store, or via ``compute``.

        On a miss, ``compute()`` runs, its payload is stored, and the
        *JSON round-trip* of the payload is returned — so the miss path
        returns exactly what every later hit will return, byte for byte.
        Misses are detected with a private sentinel, never the payload
        value: a stored ``None`` is a hit, not a permanent recompute.
        """
        cached = self._lookup(self.key_for(experiment, config, seed))
        if cached is not _MISS:
            return cached, True
        payload = compute()
        self.store(experiment, config, seed=seed, payload=payload)
        # The same round-trip the store/fetch pair performs (plain dumps of
        # the canonical value, no key re-sorting), so the returned payload
        # is byte-for-byte what every later hit will return.
        return json.loads(json.dumps(canonical_value(payload))), False
