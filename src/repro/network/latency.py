"""Pluggable message-latency models for the slot-level network.

The transport's historical timing rule is *uniform delay*: every message
arrives exactly ``delta`` seconds after it becomes available (its send
time, or GST for messages held across a partition).  This module keeps
that rule as :class:`UniformDelay` — the default, bit-identical to the
pre-latency-layer behaviour — and adds seeded stochastic models on the
same seam:

* :class:`FixedJitter` — a base propagation delay plus a bounded uniform
  jitter per recipient,
* :class:`LogNormalLatency` — heavy-tailed per-recipient latency with a
  closed-form mean/quantile structure (the classical fit for internet
  round-trip times),
* :class:`GossipPropagation` — per-hop delays accumulated over a sparse
  seeded peer topology instead of a one-shot broadcast, GossipSub-style.

**Determinism and mode independence.**  Samples are *counter-based*: a
latency is a pure hash of ``(model seed, payload class, effective send
time, recipient validator index)`` — never of the RNG call order, the
message identity, or the audience it was sampled in.  Same seed ⇒
byte-identical delivery schedules, regardless of how recipients are
chunked into queries.  Crucially the key uses the payload *class*, not
the concrete message: a committee's votes travel as one
:class:`~repro.core.attestation_batch.AttestationBatch` under view
sharding but as per-validator attestations in the per-node fallback, and
both packagings must sample identical delivery times for the
grouped==per-node equivalence contract to survive.  For the same reason
:class:`GossipPropagation` roots attestation-phase traffic at a
deterministic per-phase *virtual source* rather than at the (packaging
dependent) message sender; block proposals, which are identical objects
in both modes, use their true sender as the gossip origin.

**Phase quantization.**  Agents only observe the network at the engine's
slot phases (slot start, attestation deadline, next slot start), so a
stochastic model's raw arrival times are rounded up to the next phase
boundary (:func:`quantize_to_phase`).  This is what makes per-validator
latency compatible with view sharding: members of a view group whose
sampled latencies land in the *same* phase window still share a provably
identical message stream, and only divergence *past a boundary* forces a
copy-on-write view split (see ``Network._schedule_modeled``).
:class:`UniformDelay` never quantizes — its schedule is the exact legacy
computation.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.network.message import Message, MessageKind
from repro.network.partition import PartitionSchedule

_MASK64 = (1 << 64) - 1

#: Payload classes for latency keying.  ``ATTESTATION`` and
#: ``ATTESTATION_BATCH`` deliberately share a class: the two are
#: alternative packagings of the same votes (see module docstring).
_CLASS_OF_KIND = {
    MessageKind.BLOCK: 1,
    MessageKind.ATTESTATION: 2,
    MessageKind.ATTESTATION_BATCH: 2,
    MessageKind.SLASHING_EVIDENCE: 3,
}


# ----------------------------------------------------------------------
# Counter-based hashing (splitmix64)
# ----------------------------------------------------------------------
def _mix_scalar(*words: int) -> int:
    """Fold integer words into one well-mixed 64-bit key (splitmix64)."""
    z = 0x9E3779B97F4A7C15
    for word in words:
        z = (z + (word & _MASK64)) & _MASK64
        z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
        z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
        z = z ^ (z >> 31)
    return z


def _mix_array(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    z = values.astype(np.uint64, copy=True)
    z += np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    z = z ^ (z >> np.uint64(31))
    # A second round for avalanche on small consecutive inputs.
    z += np.uint64(0x9E3779B97F4A7C15)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def hashed_u64(key: int, ids: np.ndarray) -> np.ndarray:
    """Per-id 64-bit hashes for ``key``: order- and chunking-independent."""
    return _mix_array(np.asarray(ids, dtype=np.uint64) ^ np.uint64(key & _MASK64))


def hashed_uniform(key: int, ids: np.ndarray) -> np.ndarray:
    """Per-id uniforms in ``[0, 1)`` drawn from the counter-based stream."""
    return (hashed_u64(key, ids) >> np.uint64(11)) * (2.0 ** -53)


def hashed_uniform_scalar(key: int) -> float:
    """A single uniform in ``[0, 1)`` from an integer key."""
    return (_mix_scalar(key) >> 11) * (2.0 ** -53)


def _time_bits(time: float) -> int:
    """Stable integer key for a float timestamp (bit pattern, not rounding)."""
    return int(np.float64(time).view(np.uint64))


# ----------------------------------------------------------------------
# Phase grid
# ----------------------------------------------------------------------
def quantize_to_phase(times: np.ndarray, seconds_per_slot: float) -> np.ndarray:
    """Round raw arrival times up to the next engine phase boundary.

    The engine drains deliveries at slot starts and at the attestation
    deadline a third of the way into each slot, so the observable phase
    grid is ``{s*T, s*T + T/3}``.  Times already on the grid map to
    themselves.
    """
    times = np.asarray(times, dtype=np.float64)
    slots = np.floor(times / seconds_per_slot)
    slot_start = slots * seconds_per_slot
    offset = times - slot_start
    third = seconds_per_slot / 3.0
    return np.where(
        offset <= 0.0,
        slot_start,
        np.where(offset <= third, slot_start + third, slot_start + seconds_per_slot),
    )


# ----------------------------------------------------------------------
# Model hierarchy
# ----------------------------------------------------------------------
class LatencyModel:
    """Base class: per-recipient delivery-time computation for one message.

    Subclasses implement :meth:`_latencies`.  A model must be *bound*
    (:meth:`bind`) before computing delivery times: binding attaches the
    partition schedule (availability rules), the full validator index
    set (gossip topology) and the slot length (phase quantization).  The
    engine binds the model it is given; standalone users bind manually.
    """

    #: ``True`` only for :class:`UniformDelay`: the transport then takes
    #: the exact legacy scheduling path (no sampling, no quantization).
    is_uniform = False

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.schedule: Optional[PartitionSchedule] = None
        self.seconds_per_slot: Optional[float] = None
        self._part_code: Optional[np.ndarray] = None
        self.indices: Tuple[int, ...] = ()

    # ------------------------------------------------------------------
    def bind(
        self,
        schedule: PartitionSchedule,
        indices: Sequence[int],
        seconds_per_slot: Optional[float] = None,
    ) -> "LatencyModel":
        """Attach the partition schedule, validator set and phase grid."""
        self.schedule = schedule
        self.indices = tuple(sorted(int(i) for i in indices))
        self.seconds_per_slot = (
            float(seconds_per_slot) if seconds_per_slot is not None else None
        )
        size = (max(self.indices) + 1) if self.indices else 1
        # Partition code per validator: 0.. for named partitions, -1 for
        # bridge validators (reachable from every side).
        codes = np.full(size, -1, dtype=np.int64)
        for part_id, name in enumerate(schedule.partition_names()):
            for member in schedule.members_of(name):
                if member < size:
                    codes[member] = part_id
        self._part_code = codes
        return self

    def _require_bound(self) -> None:
        if self.schedule is None or self._part_code is None:
            raise RuntimeError(
                f"{type(self).__name__} must be bound (bind(schedule, indices, ...)) "
                "before computing delivery times"
            )

    # ------------------------------------------------------------------
    def availability(
        self, sender: int, recipients: np.ndarray, available_at: float
    ) -> np.ndarray:
        """Earliest time the message can start travelling to each recipient.

        This is the partition rule of :class:`PartitionSchedule`, applied
        before the latency sample: within a partition (or after GST) a
        message is available at its effective send time; across a
        partition before GST it is held until GST.
        """
        self._require_bound()
        schedule = self.schedule
        if available_at >= schedule.gst or not schedule.partition_names():
            return np.full(len(recipients), available_at, dtype=np.float64)
        codes = self._part_code
        sender_code = codes[sender] if 0 <= sender < len(codes) else -1
        r = np.asarray(recipients, dtype=np.int64)
        r_codes = np.where(r < len(codes), codes[np.minimum(r, len(codes) - 1)], -1)
        reachable = (
            (r == sender)
            | (sender_code < 0)
            | (r_codes < 0)
            | (r_codes == sender_code)
        )
        return np.where(reachable, available_at, schedule.gst)

    def _message_key(self, message: Message, available_at: float) -> int:
        """Sampling key: seed x payload class x effective send time.

        Deliberately excludes the message id and sender (see module
        docstring: packaging differs between sharding modes).
        """
        return _mix_scalar(
            self.seed, _CLASS_OF_KIND[message.kind], _time_bits(available_at)
        )

    def _latencies(
        self, message: Message, recipients: np.ndarray, available_at: float
    ) -> np.ndarray:
        """Per-recipient propagation latencies (seconds), to be sampled."""
        raise NotImplementedError

    def delivery_times(
        self,
        message: Message,
        recipients: Sequence[int],
        available_at: float,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """``(delivery_time, availability)`` arrays for the recipients.

        ``availability`` is the partition-gated start time (send time or
        GST); the delivery time adds the sampled latency and — when a
        phase grid is bound — rounds up to the next phase boundary.
        """
        self._require_bound()
        recipients = np.asarray(recipients, dtype=np.int64)
        avail = self.availability(message.sender, recipients, available_at)
        raw = avail + self._latencies(message, recipients, float(available_at))
        if self.seconds_per_slot is not None:
            return quantize_to_phase(raw, self.seconds_per_slot), avail
        return raw, avail


class UniformDelay(LatencyModel):
    """The exact legacy timing rule: every message arrives ``delta`` late.

    With ``delta=None`` (default) the bound is taken from the partition
    schedule, making this model *provably* the pre-latency-layer
    behaviour — the transport routes it through the identical legacy
    code path, so configuring ``latency_model=UniformDelay()`` is
    byte-for-byte the same simulation as configuring no model at all.
    A custom ``delta`` overrides the schedule's bound but keeps the
    deterministic one-shot semantics.
    """

    is_uniform = True

    def __init__(self, delta: Optional[float] = None) -> None:
        super().__init__(seed=0)
        if delta is not None and delta <= 0:
            raise ValueError("delta must be positive")
        self.delta = delta

    def effective_delta(self, schedule: PartitionSchedule) -> float:
        """The delay bound actually applied under ``schedule``."""
        return schedule.delta if self.delta is None else self.delta

    def _latencies(
        self, message: Message, recipients: np.ndarray, available_at: float
    ) -> np.ndarray:
        self._require_bound()
        return np.full(
            len(recipients), self.effective_delta(self.schedule), dtype=np.float64
        )


class FixedJitter(LatencyModel):
    """A base propagation delay plus bounded uniform jitter per recipient.

    ``latency = base + U[0, jitter)`` with the uniform drawn from the
    counter-based stream keyed on (payload class, send time, recipient).
    """

    def __init__(self, base: float = 0.2, jitter: float = 0.4, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if base < 0 or jitter < 0:
            raise ValueError("base and jitter must be non-negative")
        self.base = float(base)
        self.jitter = float(jitter)

    def _latencies(
        self, message: Message, recipients: np.ndarray, available_at: float
    ) -> np.ndarray:
        key = self._message_key(message, available_at)
        return self.base + hashed_uniform(key, recipients) * self.jitter


class LogNormalLatency(LatencyModel):
    """Heavy-tailed per-recipient latency: ``median * exp(sigma * Z)``.

    The closed forms pinned by the property suite:

    * mean      = ``median * exp(sigma**2 / 2)``
    * quantile  = ``median * exp(sigma * Phi^-1(q))``

    ``Z`` is a standard normal produced by Box-Muller over two
    independent counter-based uniforms.
    """

    def __init__(self, median: float = 0.25, sigma: float = 0.5, seed: int = 0) -> None:
        super().__init__(seed=seed)
        if median <= 0:
            raise ValueError("median must be positive")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.median = float(median)
        self.sigma = float(sigma)

    @property
    def mean(self) -> float:
        """Closed-form mean of the latency distribution."""
        return self.median * math.exp(self.sigma ** 2 / 2.0)

    def quantile(self, q: float) -> float:
        """Closed-form quantile of the latency distribution."""
        if not 0.0 < q < 1.0:
            raise ValueError("q must lie strictly between 0 and 1")
        # Acklam-free route: inverse error function via statistics.NormalDist.
        from statistics import NormalDist

        return self.median * math.exp(self.sigma * NormalDist().inv_cdf(q))

    def _latencies(
        self, message: Message, recipients: np.ndarray, available_at: float
    ) -> np.ndarray:
        key = self._message_key(message, available_at)
        # Two independent uniform streams for Box-Muller; u1 mapped into
        # (0, 1] so the log never sees zero.
        u1 = (hashed_u64(_mix_scalar(key, 1), recipients) >> np.uint64(11)).astype(
            np.float64
        )
        u1 = (u1 + 1.0) * (2.0 ** -53)
        u2 = hashed_uniform(_mix_scalar(key, 2), recipients)
        z = np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)
        return self.median * np.exp(self.sigma * z)


class GossipPropagation(LatencyModel):
    """Per-hop delays accumulated over a sparse seeded peer topology.

    Binding builds a connected ``degree``-regular-ish overlay over the
    validator set (a deterministic ring for connectivity plus seeded
    random peers, GossipSub-style).  A recipient's latency is the sum of
    ``hops`` independent per-hop delays ``U[hop_min, hop_max)``, where
    ``hops`` is its BFS distance from the message's gossip *origin*:

    * block proposals and their sender are identical objects in both
      sharding modes, so blocks use ``message.sender`` as the origin;
    * attestation-phase traffic is packaged differently per mode (one
      batch per view group vs per-validator messages), so its origin is
      a deterministic *virtual source* hashed from the send time — the
      subnet-aggregation point of the phase, identical in both modes.

    Partition rules still gate availability (a partition severs links
    regardless of overlay distance); the overlay models propagation
    spread within the reachable side.
    """

    def __init__(
        self,
        degree: int = 8,
        hop_delay: Tuple[float, float] = (0.05, 0.2),
        seed: int = 0,
    ) -> None:
        super().__init__(seed=seed)
        if degree < 2:
            raise ValueError("degree must be at least 2")
        lo, hi = hop_delay
        if lo < 0 or hi < lo:
            raise ValueError("hop_delay must satisfy 0 <= min <= max")
        self.degree = int(degree)
        self.hop_delay = (float(lo), float(hi))
        self._position: Optional[np.ndarray] = None
        self._neighbors: Optional[np.ndarray] = None
        self._hops_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def bind(
        self,
        schedule: PartitionSchedule,
        indices: Sequence[int],
        seconds_per_slot: Optional[float] = None,
    ) -> "GossipPropagation":
        super().bind(schedule, indices, seconds_per_slot)
        self._hops_cache.clear()
        n = len(self.indices)
        positions = np.full((max(self.indices) + 1) if n else 1, -1, dtype=np.int64)
        for pos, index in enumerate(self.indices):
            positions[index] = pos
        self._position = positions
        # Ring edges guarantee connectivity; seeded extra peers give the
        # small-world fan-out.  Adjacency is a padded (n, max_deg) matrix.
        rng = np.random.default_rng(self.seed)
        neighbor_sets = [set() for _ in range(n)]
        if n > 1:
            for pos in range(n):
                neighbor_sets[pos].add((pos + 1) % n)
                neighbor_sets[(pos + 1) % n].add(pos)
            extra = max(0, self.degree - 2)
            if extra:
                targets = rng.integers(0, n, size=(n, extra))
                for pos in range(n):
                    for target in targets[pos]:
                        if target != pos:
                            neighbor_sets[pos].add(int(target))
                            neighbor_sets[int(target)].add(pos)
        width = max((len(s) for s in neighbor_sets), default=1) or 1
        adjacency = np.full((n, width), -1, dtype=np.int64)
        for pos, peers in enumerate(neighbor_sets):
            for column, peer in enumerate(sorted(peers)):
                adjacency[pos, column] = peer
        self._neighbors = adjacency
        return self

    def hops_from(self, origin_index: int) -> np.ndarray:
        """BFS hop distances (by overlay) from a validator to every position."""
        self._require_bound()
        if self._neighbors is None:
            raise RuntimeError("GossipPropagation.bind must run before hops_from")
        cached = self._hops_cache.get(origin_index)
        if cached is not None:
            return cached
        n = len(self.indices)
        hops = np.full(n, -1, dtype=np.int64)
        start = int(self._position[origin_index]) if origin_index < len(self._position) else -1
        if start < 0:
            # Unknown origins (never the engine's case) propagate from the
            # deterministic position 0 so distances stay defined.
            start = 0
        hops[start] = 0
        frontier = np.array([start], dtype=np.int64)
        level = 0
        while frontier.size:
            level += 1
            candidates = self._neighbors[frontier].ravel()
            candidates = candidates[candidates >= 0]
            fresh = candidates[hops[candidates] < 0]
            if fresh.size == 0:
                break
            fresh = np.unique(fresh)
            hops[fresh] = level
            frontier = fresh
        self._hops_cache[origin_index] = hops
        return hops

    def _origin_for(self, message: Message, available_at: float) -> int:
        if message.kind == MessageKind.BLOCK:
            return message.sender
        # Virtual per-phase source: identical in both sharding modes.
        draw = _mix_scalar(self.seed, 0xA77E57, _time_bits(available_at))
        return self.indices[draw % len(self.indices)]

    def _latencies(
        self, message: Message, recipients: np.ndarray, available_at: float
    ) -> np.ndarray:
        hops_by_position = self.hops_from(self._origin_for(message, available_at))
        positions = self._position[np.asarray(recipients, dtype=np.int64)]
        hops = hops_by_position[positions]
        # Disconnected positions cannot occur (ring), but stay defined.
        hops = np.where(hops < 0, int(hops_by_position.max()) + 1, hops)
        # The origin pays one hop too (local validation + publish): a
        # zero-latency self-delivery would otherwise split the origin out
        # of its view group on every single message.
        hops = np.maximum(hops, 1)
        key = self._message_key(message, available_at)
        lo, hi = self.hop_delay
        latency = np.zeros(len(recipients), dtype=np.float64)
        max_hops = int(hops.max()) if len(hops) else 0
        for hop in range(max_hops):
            live = hops > hop
            if not live.any():
                break
            u = hashed_uniform(_mix_scalar(key, hop), recipients)
            latency += np.where(live, lo + u * (hi - lo), 0.0)
        return latency


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
#: Model names accepted by :func:`make_latency_model` (and the
#: ``--latency-model`` CLI flag).
LATENCY_MODEL_NAMES = ("uniform", "jitter", "lognormal", "gossip")


def make_latency_model(
    name: str, seed: int = 0, **params: object
) -> LatencyModel:
    """Build a latency model by name (the CLI/preset seam).

    ``params`` are forwarded to the model constructor, so presets can
    override e.g. ``degree`` or ``sigma`` without new factory names.
    """
    key = name.lower().replace("_", "-")
    if key == "uniform":
        return UniformDelay(**params)  # type: ignore[arg-type]
    if key in ("jitter", "fixed-jitter"):
        return FixedJitter(seed=seed, **params)  # type: ignore[arg-type]
    if key in ("lognormal", "log-normal"):
        return LogNormalLatency(seed=seed, **params)  # type: ignore[arg-type]
    if key == "gossip":
        return GossipPropagation(seed=seed, **params)  # type: ignore[arg-type]
    raise ValueError(
        f"unknown latency model {name!r}; expected one of {LATENCY_MODEL_NAMES}"
    )


def resolve_latency_model(
    model: Union[None, str, LatencyModel], seed: int = 0
) -> Optional[LatencyModel]:
    """Normalize a builder argument: ``None``, a name, or a model instance."""
    if model is None or isinstance(model, LatencyModel):
        return model
    return make_latency_model(model, seed=seed)
