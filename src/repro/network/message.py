"""Message envelopes exchanged between validator nodes."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Union

from repro.core.attestation_batch import AttestationBatch
from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.slashing import SlashingEvidence

_message_counter = itertools.count()


class MessageKind(str, Enum):
    """The payload kinds circulating on the gossip network.

    ``ATTESTATION_BATCH`` carries a whole committee's identical votes as
    one flat-array payload — the batch-native fast path; per-validator
    ``ATTESTATION`` messages remain for equivocating (non-uniform) votes.
    """

    BLOCK = "block"
    ATTESTATION = "attestation"
    ATTESTATION_BATCH = "attestation_batch"
    SLASHING_EVIDENCE = "slashing_evidence"


Payload = Union[BeaconBlock, Attestation, AttestationBatch, SlashingEvidence]


@dataclass(frozen=True)
class Message:
    """A signed message in flight on the network.

    ``sender`` is the validator index of the originator; the digital
    signature of the real protocol is modelled by the unforgeability
    assumption of the system model (Section 2), so the envelope simply
    carries the sender identity.
    """

    kind: MessageKind
    payload: Payload
    sender: int
    sent_at: float
    message_id: int = field(default_factory=lambda: next(_message_counter))

    @staticmethod
    def block(block: BeaconBlock, sender: int, sent_at: float) -> "Message":
        """Wrap a block proposal."""
        return Message(MessageKind.BLOCK, block, sender, sent_at)

    @staticmethod
    def attestation(attestation: Attestation, sender: int, sent_at: float) -> "Message":
        """Wrap an attestation."""
        return Message(MessageKind.ATTESTATION, attestation, sender, sent_at)

    @staticmethod
    def attestation_batch(
        batch: AttestationBatch, sender: int, sent_at: float
    ) -> "Message":
        """Wrap a committee attestation batch (sender: any batch member)."""
        return Message(MessageKind.ATTESTATION_BATCH, batch, sender, sent_at)

    @staticmethod
    def evidence(evidence: SlashingEvidence, sender: int, sent_at: float) -> "Message":
        """Wrap slashing evidence being gossiped to proposers."""
        return Message(MessageKind.SLASHING_EVIDENCE, evidence, sender, sent_at)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Message(kind={self.kind.value}, sender={self.sender}, t={self.sent_at})"


@dataclass(frozen=True)
class Delivery:
    """A scheduled delivery of a message to a recipient."""

    message: Message
    recipient: int
    deliver_at: float

    def __lt__(self, other: "Delivery") -> bool:
        return (self.deliver_at, self.message.message_id, self.recipient) < (
            other.deliver_at,
            other.message.message_id,
            other.recipient,
        )
