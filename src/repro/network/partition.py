"""Network partitions and the partially-synchronous timing model.

The paper's scenarios (Section 5.1 and 5.2) assume that before GST the
honest validators are split into two partitions that communicate internally
with bounded delay but cannot reach each other, while Byzantine validators
are connected to both sides.  :class:`PartitionSchedule` captures exactly
this: a partition assignment for every validator, a GST, and the rule that
Byzantine (bridge) validators ignore the partition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass(frozen=True)
class Partition:
    """A named group of validators that can communicate internally."""

    name: str
    members: FrozenSet[int]

    def __contains__(self, validator_index: int) -> bool:
        return validator_index in self.members

    def __len__(self) -> int:
        return len(self.members)


@dataclass
class PartitionSchedule:
    """Describes who can talk to whom, and when the partition heals.

    Parameters
    ----------
    partitions:
        The disjoint partitions of (honest) validators.  A validator absent
        from every partition is treated as a *bridge* node reachable from
        and able to reach every partition — this is how the coordinated
        Byzantine adversary of the paper is modelled.
    gst:
        Global Stabilization Time (seconds).  From ``gst`` onwards every
        validator can reach every other validator within the synchronous
        bound ``delta``.
    delta:
        Message delay bound that applies within a partition before GST and
        globally after GST.
    """

    partitions: Sequence[Partition]
    gst: float
    delta: float = 1.0

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if self.gst < 0:
            raise ValueError("GST must be non-negative")
        seen: Set[int] = set()
        for partition in self.partitions:
            overlap = seen & set(partition.members)
            if overlap:
                raise ValueError(f"validators {sorted(overlap)} appear in two partitions")
            seen |= set(partition.members)
        self._partition_of: Dict[int, str] = {
            index: partition.name
            for partition in self.partitions
            for index in partition.members
        }

    # ------------------------------------------------------------------
    def partition_of(self, validator_index: int) -> Optional[str]:
        """Name of the partition containing ``validator_index`` (None = bridge)."""
        return self._partition_of.get(validator_index)

    def is_bridge(self, validator_index: int) -> bool:
        """True if the validator is connected to every partition (adversary)."""
        return validator_index not in self._partition_of

    def can_communicate(self, sender: int, recipient: int, time: float) -> bool:
        """True if a message sent by ``sender`` at ``time`` can reach ``recipient``.

        After GST everyone can reach everyone.  Before GST, communication is
        possible within a partition, and to/from bridge validators.
        """
        if time >= self.gst:
            return True
        if sender == recipient:
            return True
        if self.is_bridge(sender) or self.is_bridge(recipient):
            return True
        return self._partition_of[sender] == self._partition_of[recipient]

    def delivery_time(self, sender: int, recipient: int, sent_at: float) -> float:
        """Earliest time at which the message can be delivered.

        Messages that cannot cross the partition before GST are delivered at
        ``GST + delta`` (the system model: "all messages sent before GST are
        received at most at time GST + delta").
        """
        if self.can_communicate(sender, recipient, sent_at):
            return sent_at + self.delta
        return self.gst + self.delta

    # ------------------------------------------------------------------
    @classmethod
    def two_way_split(
        cls,
        honest_indices: Sequence[int],
        active_fraction: float,
        gst: float,
        delta: float = 1.0,
        bridge_indices: Sequence[int] = (),
    ) -> "PartitionSchedule":
        """Split honest validators into two partitions of proportion p0 / 1-p0.

        ``active_fraction`` is the paper's ``p0``: the fraction of honest
        validators placed in partition ``"branch-1"``; the rest go to
        ``"branch-2"``.  ``bridge_indices`` (typically the Byzantine
        validators) are connected to both sides.
        """
        if not 0.0 <= active_fraction <= 1.0:
            raise ValueError("active_fraction must lie in [0, 1]")
        honest = [i for i in honest_indices if i not in set(bridge_indices)]
        cut = int(round(len(honest) * active_fraction))
        partition_1 = Partition(name="branch-1", members=frozenset(honest[:cut]))
        partition_2 = Partition(name="branch-2", members=frozenset(honest[cut:]))
        return cls(partitions=(partition_1, partition_2), gst=gst, delta=delta)

    @classmethod
    def fully_connected(cls, delta: float = 1.0) -> "PartitionSchedule":
        """A degenerate schedule with no partition (GST = 0)."""
        return cls(partitions=(), gst=0.0, delta=delta)

    def partition_names(self) -> List[str]:
        """Names of the partitions in order."""
        return [p.name for p in self.partitions]

    def members_of(self, name: str) -> FrozenSet[int]:
        """Members of the partition called ``name``."""
        for partition in self.partitions:
            if partition.name == name:
                return partition.members
        raise KeyError(f"unknown partition {name!r}")
