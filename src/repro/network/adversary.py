"""The coordinating adversary.

Following the paper's fault model (Section 2), the adversary controls every
Byzantine validator, can coordinate them across network partitions (it is
unaffected by partitions), but cannot manipulate delays between honest
validators.  The adversary object gives attack strategies a single place to

* learn which Byzantine validators exist and what they currently see,
* direct messages at one partition only (being "active on branch 1"),
* withhold Byzantine messages and release them at an opportune time
  (the probabilistic bouncing attack).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.network.message import Message
from repro.network.partition import PartitionSchedule
from repro.network.transport import Network


@dataclass
class Adversary:
    """Coordinates the Byzantine validators of a simulation."""

    byzantine_indices: Set[int]
    network: Network
    schedule: PartitionSchedule

    def __post_init__(self) -> None:
        self.byzantine_indices = set(self.byzantine_indices)

    # ------------------------------------------------------------------
    # Topology knowledge
    # ------------------------------------------------------------------
    def honest_members_of(self, partition_name: str) -> Set[int]:
        """Honest validators inside the named partition."""
        members = set(self.schedule.members_of(partition_name))
        return members - self.byzantine_indices

    def partitions(self) -> List[str]:
        """Partition names, in order."""
        return self.schedule.partition_names()

    def controls(self, validator_index: int) -> bool:
        """True if the validator is Byzantine (controlled by this adversary)."""
        return validator_index in self.byzantine_indices

    # ------------------------------------------------------------------
    # Targeted message release
    # ------------------------------------------------------------------
    def send_to_partition(
        self,
        message: Message,
        partition_name: str,
        include_byzantine: bool = True,
    ) -> None:
        """Deliver a Byzantine message to one partition only.

        Because Byzantine senders are bridge nodes in the partition
        schedule, restricting the audience is how "being active on branch 1
        but not branch 2" is realised: validators of the other partition
        simply never receive the message before GST.
        """
        recipients: Set[int] = set(self.schedule.members_of(partition_name))
        if include_byzantine:
            recipients |= self.byzantine_indices
        self.network.broadcast(message, recipients=recipients, exclude={message.sender})

    def broadcast_everywhere(self, message: Message) -> None:
        """Deliver a Byzantine message to every participant (both branches)."""
        self.network.broadcast(message, exclude={message.sender})

    def withhold(self, message: Message, recipients: Iterable[int]) -> None:
        """Withhold a message addressed to ``recipients`` for later release."""
        for recipient in recipients:
            if recipient == message.sender:
                continue
            self.network.withhold(message, recipient)

    def release_all(self, release_time: float) -> int:
        """Release every withheld message; returns the number released."""
        return self.network.release_withheld(release_time)

    # ------------------------------------------------------------------
    # Accounting helpers used by experiments
    # ------------------------------------------------------------------
    def byzantine_count(self) -> int:
        """Number of Byzantine validators under the adversary's control."""
        return len(self.byzantine_indices)

    def is_unaffected_by_partition(self) -> bool:
        """Adversary invariant: every Byzantine validator is a bridge node.

        Returns True when the partition schedule indeed treats all Byzantine
        validators as connected to both sides — a sanity check used by
        scenario builders.
        """
        return all(self.schedule.is_bridge(index) for index in self.byzantine_indices)
