"""The coordinating adversary.

Following the paper's fault model (Section 2), the adversary controls every
Byzantine validator, can coordinate them across network partitions (it is
unaffected by partitions), but cannot manipulate delays between honest
validators.  The adversary object gives attack strategies a single place to

* learn which Byzantine validators exist and what they currently see,
* direct messages at one partition only (being "active on branch 1"),
* withhold Byzantine messages and release them at an opportune time
  (the probabilistic bouncing attack).

Audience resolution is *endpoint-aware*: the view-sharded engine simulates
one node per view group, so a partition-targeted message needs one
delivery per group, not one per validator.  The engine installs an
endpoint resolver (validator index → delivery endpoint) and the adversary
collapses + caches each partition audience through it, making targeted
sends O(groups) instead of O(validators).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.network.message import Message
from repro.network.partition import PartitionSchedule
from repro.network.transport import Network


@dataclass
class Adversary:
    """Coordinates the Byzantine validators of a simulation."""

    byzantine_indices: Set[int]
    network: Network
    schedule: PartitionSchedule

    def __post_init__(self) -> None:
        self.byzantine_indices = set(self.byzantine_indices)
        self._endpoint_of: Callable[[int], int] = lambda index: index
        self._audience_cache: Dict[Tuple[str, bool], Tuple[int, ...]] = {}
        self._split_hook: Optional[Callable[[Tuple[int, ...]], Tuple[int, ...]]] = None

    # ------------------------------------------------------------------
    # Endpoint resolution (installed by the engine)
    # ------------------------------------------------------------------
    def set_endpoint_resolver(self, resolver: Callable[[int], int]) -> None:
        """Install the validator-index → delivery-endpoint mapping.

        Under view sharding several validators share one endpoint (their
        view group's representative); without sharding the resolver is
        the identity.  Invalidates all endpoint-derived caches.
        """
        self._endpoint_of = resolver
        self.notify_topology_changed()

    def set_split_hook(
        self, hook: Callable[[Tuple[int, ...]], Tuple[int, ...]]
    ) -> None:
        """Install the engine's exact-audience hook.

        ``hook(recipients)`` must return delivery endpoints that cover
        *exactly* the given validators, splitting any view group that the
        audience only partially covers.  Installed by the view-sharded
        engine; without it per-validator sends fall back to plain
        endpoint resolution (correct for per-node simulations, where
        endpoints are validators).
        """
        self._split_hook = hook

    def notify_topology_changed(self) -> None:
        """Invalidate every cache derived from the endpoint mapping.

        Must be called whenever validator → endpoint assignments change:
        resolver (re)installation, view-group splits and merges, and any
        post-construction mutation of the partition map all route through
        here.  Stale audiences would silently deliver to endpoints that
        no longer exist (or miss freshly split ones).
        """
        self._audience_cache.clear()

    def resolve_endpoints(self, recipients: Iterable[int]) -> Tuple[int, ...]:
        """Collapse validator indices to their distinct delivery endpoints."""
        seen: Set[int] = set()
        endpoints: List[int] = []
        for index in recipients:
            endpoint = self._endpoint_of(index)
            if endpoint not in seen:
                seen.add(endpoint)
                endpoints.append(endpoint)
        return tuple(endpoints)

    # ------------------------------------------------------------------
    # Topology knowledge
    # ------------------------------------------------------------------
    def honest_members_of(self, partition_name: str) -> Set[int]:
        """Honest validators inside the named partition."""
        members = set(self.schedule.members_of(partition_name))
        return members - self.byzantine_indices

    def partitions(self) -> List[str]:
        """Partition names, in order."""
        return self.schedule.partition_names()

    def controls(self, validator_index: int) -> bool:
        """True if the validator is Byzantine (controlled by this adversary)."""
        return validator_index in self.byzantine_indices

    # ------------------------------------------------------------------
    # Targeted message release
    # ------------------------------------------------------------------
    def _audience_endpoints(
        self, partition_name: str, include_byzantine: bool
    ) -> Tuple[int, ...]:
        key = (partition_name, include_byzantine)
        cached = self._audience_cache.get(key)
        if cached is None:
            recipients: List[int] = sorted(self.schedule.members_of(partition_name))
            if include_byzantine:
                recipients += sorted(self.byzantine_indices)
            cached = self.resolve_endpoints(recipients)
            self._audience_cache[key] = cached
        return cached

    def send_to_partition(
        self,
        message: Message,
        partition_name: str,
        include_byzantine: bool = True,
        delay: float = 0.0,
    ) -> None:
        """Deliver a Byzantine message to one partition only, optionally late.

        Because Byzantine senders are bridge nodes in the partition
        schedule, restricting the audience is how "being active on branch 1
        but not branch 2" is realised: validators of the other partition
        simply never receive the message before GST.  The sender's own
        endpoint is part of the audience — every view, the sender's
        included, learns of the message through the same delivery path.
        """
        self.network.broadcast(
            message,
            recipients=self._audience_endpoints(partition_name, include_byzantine),
            delay=delay,
        )

    def broadcast_everywhere(self, message: Message) -> None:
        """Deliver a Byzantine message to every participant (both branches)."""
        self.network.broadcast(message)

    def send_to_validators(
        self, message: Message, recipients: Iterable[int], delay: float = 0.0
    ) -> None:
        """Deliver a message to an exact set of validators, optionally late.

        The sharpest targeting primitive the fault model grants the
        adversary: any subset of validators, independent of partition
        boundaries (Byzantine coordination is unaffected by partitions).
        Under view sharding the engine's split hook first forks any view
        group the audience only partially covers, so the returned
        endpoints cover exactly ``recipients``; a positive ``delay``
        releases the message that many seconds after its nominal send
        time (the swayer's "just before the deadline" timing).
        """
        targets = tuple(recipients)
        if self._split_hook is not None:
            endpoints = self._split_hook(targets)
        else:
            endpoints = self.resolve_endpoints(targets)
        if delay > 0.0:
            for endpoint in endpoints:
                self.network.send_delayed(message, endpoint, delay)
        else:
            self.network.broadcast(message, recipients=endpoints)

    def withhold(self, message: Message, recipients: Iterable[int]) -> None:
        """Withhold a message addressed to ``recipients`` for later release."""
        for endpoint in self.resolve_endpoints(recipients):
            self.network.withhold(message, endpoint)

    def release_all(self, release_time: float) -> int:
        """Release every withheld message; returns the number released."""
        return self.network.release_withheld(release_time)

    # ------------------------------------------------------------------
    # Accounting helpers used by experiments
    # ------------------------------------------------------------------
    def byzantine_count(self) -> int:
        """Number of Byzantine validators under the adversary's control."""
        return len(self.byzantine_indices)

    def is_unaffected_by_partition(self) -> bool:
        """Adversary invariant: every Byzantine validator is a bridge node.

        Returns True when the partition schedule indeed treats all Byzantine
        validators as connected to both sides — a sanity check used by
        scenario builders.
        """
        return all(self.schedule.is_bridge(index) for index in self.byzantine_indices)
