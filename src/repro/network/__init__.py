"""Partially-synchronous network substrate: messages, partitions, transport, adversary."""

from repro.network.adversary import Adversary
from repro.network.clock import SlotClock
from repro.network.latency import (
    LATENCY_MODEL_NAMES,
    FixedJitter,
    GossipPropagation,
    LatencyModel,
    LogNormalLatency,
    UniformDelay,
    make_latency_model,
    resolve_latency_model,
)
from repro.network.message import Delivery, Message, MessageKind
from repro.network.partition import Partition, PartitionSchedule
from repro.network.transport import Network, TransportStats

__all__ = [
    "Adversary",
    "Delivery",
    "FixedJitter",
    "GossipPropagation",
    "LATENCY_MODEL_NAMES",
    "LatencyModel",
    "LogNormalLatency",
    "Message",
    "MessageKind",
    "Network",
    "Partition",
    "PartitionSchedule",
    "SlotClock",
    "TransportStats",
    "UniformDelay",
    "make_latency_model",
    "resolve_latency_model",
]
