"""Partially-synchronous network substrate: messages, partitions, transport, adversary."""

from repro.network.adversary import Adversary
from repro.network.clock import SlotClock
from repro.network.message import Delivery, Message, MessageKind
from repro.network.partition import Partition, PartitionSchedule
from repro.network.transport import Network, TransportStats

__all__ = [
    "Adversary",
    "Delivery",
    "Message",
    "MessageKind",
    "Network",
    "Partition",
    "PartitionSchedule",
    "SlotClock",
    "TransportStats",
]
