"""Synchronized slot clock.

Validators have synchronized clocks (Section 2 of the paper: offsets are
folded into the network delay).  The clock converts between wall-clock
seconds, slots, and epochs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.spec.config import SpecConfig


@dataclass
class SlotClock:
    """Converts simulation time (seconds) to slots and epochs."""

    config: SpecConfig
    genesis_time: float = 0.0

    def slot_at(self, time: float) -> int:
        """Slot number containing wall-clock ``time``."""
        if time < self.genesis_time:
            raise ValueError("time precedes genesis")
        return int((time - self.genesis_time) // self.config.seconds_per_slot)

    def epoch_at(self, time: float) -> int:
        """Epoch number containing wall-clock ``time``."""
        return self.config.epoch_of_slot(self.slot_at(time))

    def start_of_slot(self, slot: int) -> float:
        """Wall-clock time of the start of ``slot``."""
        if slot < 0:
            raise ValueError("slot must be non-negative")
        return self.genesis_time + slot * self.config.seconds_per_slot

    def start_of_epoch(self, epoch: int) -> float:
        """Wall-clock time of the start of ``epoch``."""
        return self.start_of_slot(self.config.start_slot_of_epoch(epoch))

    def attestation_deadline(self, slot: int) -> float:
        """Time at which attestations for ``slot`` are due (1/3 into the slot).

        Ethereum validators attest a third of the way through the slot; the
        exact offset is irrelevant for the paper's analysis but keeps the
        simulator's event ordering realistic (block first, attestations
        after).
        """
        return self.start_of_slot(slot) + self.config.seconds_per_slot / 3.0

    def is_epoch_start(self, slot: int) -> bool:
        """True if ``slot`` is the first slot of its epoch."""
        return slot % self.config.slots_per_epoch == 0
