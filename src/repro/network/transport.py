"""Best-effort broadcast over a partially-synchronous network.

The transport schedules deliveries according to a
:class:`~repro.network.partition.PartitionSchedule`: within a partition (or
after GST) messages arrive within ``delta`` seconds; across partitions
before GST they are held and delivered at ``GST + delta``.  The adversary
(:mod:`repro.network.adversary`) can additionally withhold messages sent by
Byzantine validators and release them at a chosen time, which is the
capability the probabilistic bouncing attack relies on.

Participants are delivery *endpoints*: under view sharding the engine
registers one endpoint per view group (its representative validator), so a
broadcast costs O(groups) deliveries instead of O(validators) — and the
payload of one delivery may itself be a whole committee's attestation
batch.  Senders receive their own messages through the network like every
other member of their view group (uniform delay, uniform order), which is
what makes view groups provably share a message stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.network.message import Delivery, Message
from repro.network.partition import PartitionSchedule


@dataclass
class TransportStats:
    """Counters describing the traffic handled by the transport."""

    sent: int = 0
    delivered: int = 0
    withheld: int = 0
    delayed_across_partition: int = 0


class Network:
    """Message scheduling between validator nodes.

    The class is intentionally independent of the simulation engine: it
    only turns ``broadcast``/``send`` calls into :class:`Delivery` records
    ordered by delivery time; the engine pops them and hands the payloads
    to recipient nodes.
    """

    def __init__(
        self,
        schedule: PartitionSchedule,
        participants: Sequence[int],
    ) -> None:
        self.schedule = schedule
        self.participants = list(participants)
        self._queue: List[Delivery] = []
        self._withheld: List[Tuple[Message, int]] = []
        self.stats = TransportStats()

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def broadcast(
        self,
        message: Message,
        exclude: Iterable[int] = (),
        recipients: Optional[Iterable[int]] = None,
    ) -> None:
        """Best-effort broadcast of ``message`` to every participant.

        ``recipients`` restricts the audience (the adversary uses this to
        release withheld votes to one partition only); ``exclude`` removes
        specific recipients (usually the sender itself, which processes its
        own messages locally).
        """
        audience = list(recipients) if recipients is not None else self.participants
        excluded = set(exclude)
        self.stats.sent += 1
        for recipient in audience:
            if recipient in excluded:
                continue
            self._schedule(message, recipient)

    def send(self, message: Message, recipient: int) -> None:
        """Point-to-point send (same timing rules as broadcast)."""
        self.stats.sent += 1
        self._schedule(message, recipient)

    def send_delayed(self, message: Message, recipient: int, delay: float) -> None:
        """Point-to-point send that leaves the sender ``delay`` seconds late.

        Models an adversary timing a message's *release* (a swayer voting
        "just before the deadline"): the network sees the message as if it
        were sent at ``sent_at + delay``, so partition rules and ``delta``
        apply from that later instant.
        """
        self.stats.sent += 1
        deliver_at = self.schedule.delivery_time(
            message.sender, recipient, message.sent_at + delay
        )
        if deliver_at > message.sent_at + delay + self.schedule.delta:
            self.stats.delayed_across_partition += 1
        heapq.heappush(
            self._queue, Delivery(message=message, recipient=recipient, deliver_at=deliver_at)
        )

    def withhold(self, message: Message, recipient: int) -> None:
        """Hold a message outside the network until :meth:`release` is called.

        Models the adversary's ability to delay the release of Byzantine
        messages (Section 5.3 step 2: "Byzantine validators withhold their
        messages ... releasing them at the opportune time").
        """
        self._withheld.append((message, recipient))
        self.stats.withheld += 1

    def release_withheld(self, release_time: float) -> int:
        """Release every withheld message at ``release_time``.

        The released messages still obey the partition schedule from the
        release time onwards.  Returns the number of messages released.
        """
        count = 0
        for message, recipient in self._withheld:
            deliver_at = max(
                release_time,
                self.schedule.delivery_time(message.sender, recipient, release_time),
            )
            heapq.heappush(
                self._queue, Delivery(message=message, recipient=recipient, deliver_at=deliver_at)
            )
            count += 1
        self._withheld.clear()
        return count

    def _schedule(self, message: Message, recipient: int) -> None:
        deliver_at = self.schedule.delivery_time(message.sender, recipient, message.sent_at)
        if deliver_at > message.sent_at + self.schedule.delta:
            self.stats.delayed_across_partition += 1
        heapq.heappush(
            self._queue, Delivery(message=message, recipient=recipient, deliver_at=deliver_at)
        )

    # ------------------------------------------------------------------
    # Endpoint lifecycle (dynamic view splits/merges)
    # ------------------------------------------------------------------
    def split_endpoint(self, old: int, new: int) -> None:
        """Register ``new`` as a participant whose view just forked off ``old``.

        Everything still in flight towards ``old`` — queued deliveries and
        withheld messages — is duplicated for ``new`` with identical
        delivery times and message ids: the members that moved to the new
        endpoint were going to receive those messages, and the split must
        not change that.  Ordering between the copies is irrelevant (they
        land on distinct nodes); ordering *within* each endpoint's stream
        is preserved because ``Delivery`` sorts by
        ``(deliver_at, message_id, recipient)`` and both fields are kept.
        """
        if new in self.participants:
            raise ValueError(f"endpoint {new} already registered")
        self.participants.append(new)
        for delivery in [d for d in self._queue if d.recipient == old]:
            heapq.heappush(
                self._queue,
                Delivery(
                    message=delivery.message,
                    recipient=new,
                    deliver_at=delivery.deliver_at,
                ),
            )
        for message, recipient in [w for w in self._withheld if w[1] == old]:
            self._withheld.append((message, new))

    def deregister_endpoint(self, endpoint: int) -> None:
        """Forget ``endpoint`` after its view group merged into another.

        In-flight deliveries addressed to it are left in the queue; the
        engine drops deliveries whose endpoint no longer resolves to a
        view (the merge legality check guarantees the surviving endpoint
        carries an identical stream).
        """
        self.participants.remove(endpoint)

    def pending_for(self, endpoint: int) -> List[Tuple[float, int]]:
        """In-flight ``(deliver_at, message_id)`` stream of one endpoint, sorted.

        Used by the engine's merge check: two view groups may only fuse
        when — besides equal node state — their future message streams
        are identical.
        """
        return sorted(
            (delivery.deliver_at, delivery.message.message_id)
            for delivery in self._queue
            if delivery.recipient == endpoint
        )

    def withheld_for(self, endpoint: int) -> List[int]:
        """Withheld message ids addressed to ``endpoint``, in withhold order."""
        return [
            message.message_id
            for message, recipient in self._withheld
            if recipient == endpoint
        ]

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliveries_until(self, time: float) -> List[Delivery]:
        """Pop and return every delivery due at or before ``time``, in order."""
        due: List[Delivery] = []
        while self._queue and self._queue[0].deliver_at <= time:
            delivery = heapq.heappop(self._queue)
            due.append(delivery)
            self.stats.delivered += 1
        return due

    def pending(self) -> int:
        """Number of deliveries still in flight."""
        return len(self._queue)

    def withheld_count(self) -> int:
        """Number of messages currently withheld by the adversary."""
        return len(self._withheld)

    def next_delivery_time(self) -> Optional[float]:
        """Delivery time of the earliest pending message, if any."""
        return self._queue[0].deliver_at if self._queue else None
