"""Best-effort broadcast over a partially-synchronous network.

The transport schedules deliveries according to a
:class:`~repro.network.partition.PartitionSchedule`: within a partition (or
after GST) messages arrive within ``delta`` seconds; across partitions
before GST they are held and delivered at ``GST + delta``.  The adversary
(:mod:`repro.network.adversary`) can additionally withhold messages sent by
Byzantine validators and release them at a chosen time, which is the
capability the probabilistic bouncing attack relies on.

Participants are delivery *endpoints*: under view sharding the engine
registers one endpoint per view group (its representative validator), so a
broadcast costs O(groups) deliveries instead of O(validators) — and the
payload of one delivery may itself be a whole committee's attestation
batch.  Senders receive their own messages through the network like every
other member of their view group (uniform delay, uniform order), which is
what makes view groups provably share a message stream.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.network.latency import LatencyModel, quantize_to_phase
from repro.network.message import Delivery, Message
from repro.network.partition import PartitionSchedule


@dataclass
class TransportStats:
    """Counters describing the traffic handled by the transport.

    The three delay counters are disjoint by cause:

    * ``delayed_across_partition`` — the partition schedule held the
      delivery until GST (it could not cross the split earlier),
    * ``adversary_delayed`` — the sender deliberately timed the release
      (the adversary's ``send_delayed`` primitive),
    * ``lazy_delayed`` — an honest sender published late (the lazy
      behaviour profiles' delayed broadcasts),
    * ``latency_delayed`` — a stochastic latency model pushed the
      delivery past the synchronous bound ``availability + delta``.
    """

    sent: int = 0
    delivered: int = 0
    withheld: int = 0
    delayed_across_partition: int = 0
    adversary_delayed: int = 0
    lazy_delayed: int = 0
    latency_delayed: int = 0


class Network:
    """Message scheduling between validator nodes.

    The class is intentionally independent of the simulation engine: it
    only turns ``broadcast``/``send`` calls into :class:`Delivery` records
    ordered by delivery time; the engine pops them and hands the payloads
    to recipient nodes.
    """

    def __init__(
        self,
        schedule: PartitionSchedule,
        participants: Sequence[int],
        latency_model: Optional[LatencyModel] = None,
    ) -> None:
        self.schedule = schedule
        self.participants = list(participants)
        self._queue: List[Delivery] = []
        self._withheld: List[Tuple[Message, int]] = []
        self.stats = TransportStats()
        #: Optional latency model.  ``None`` and a default
        #: :class:`~repro.network.latency.UniformDelay` take the exact
        #: legacy scheduling path; other models sample per-recipient
        #: delivery times (``_schedule_modeled``).
        self.latency_model = latency_model
        if latency_model is not None and latency_model.schedule is None:
            # Standalone use (no engine): bind with endpoints as the
            # validator set and no phase grid (raw delivery times).
            latency_model.bind(schedule, self.participants)
        self._modeled = latency_model is not None and not latency_model.is_uniform
        #: Custom uniform bound (``UniformDelay(delta=...)``); ``None``
        #: means the schedule's own ``delta`` — the untouched legacy rule.
        self._uniform_delta: Optional[float] = None
        if latency_model is not None and latency_model.is_uniform:
            delta = latency_model.delta  # type: ignore[attr-defined]
            if delta is not None and delta != schedule.delta:
                self._uniform_delta = delta
        # View hooks, installed by the view-sharded engine: endpoint →
        # member validators, and exact-audience resolution (which
        # copy-on-write splits any view group an audience only partially
        # covers).  Without hooks an endpoint is its own single member.
        self._members_of: Callable[[int], Sequence[int]] = lambda endpoint: (endpoint,)
        self._exact_audience: Callable[[Tuple[int, ...]], Tuple[int, ...]] = (
            lambda recipients: recipients
        )

    def set_view_hooks(
        self,
        members_of: Callable[[int], Sequence[int]],
        exact_audience: Callable[[Tuple[int, ...]], Tuple[int, ...]],
    ) -> None:
        """Install the engine's view-group resolution hooks.

        ``members_of(endpoint)`` lists the validators behind a delivery
        endpoint; ``exact_audience(validators)`` returns endpoints
        covering exactly those validators, splitting partially-covered
        view groups first.  Only the modeled (non-uniform latency)
        scheduling path consults these.
        """
        self._members_of = members_of
        self._exact_audience = exact_audience

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def broadcast(
        self,
        message: Message,
        exclude: Iterable[int] = (),
        recipients: Optional[Iterable[int]] = None,
        delay: float = 0.0,
    ) -> None:
        """Best-effort broadcast of ``message`` to every participant.

        ``recipients`` restricts the audience (the adversary uses this to
        release withheld votes to one partition only); ``exclude`` removes
        specific recipients (usually the sender itself, which processes its
        own messages locally).  A positive ``delay`` models a *lazy*
        sender that publishes that many seconds after the nominal send
        time: partition rules (and any latency model) apply from the
        later instant.
        """
        # Snapshot: the modeled path can split view groups mid-broadcast,
        # which appends fresh endpoints to ``self.participants``.
        audience = list(recipients) if recipients is not None else list(self.participants)
        excluded = set(exclude)
        self.stats.sent += 1
        if delay > 0.0:
            self.stats.lazy_delayed += 1
        effective = message.sent_at + delay
        for recipient in audience:
            if recipient in excluded:
                continue
            self._dispatch(message, recipient, effective)

    def send(self, message: Message, recipient: int) -> None:
        """Point-to-point send (same timing rules as broadcast)."""
        self.stats.sent += 1
        self._dispatch(message, recipient, message.sent_at)

    def send_delayed(self, message: Message, recipient: int, delay: float) -> None:
        """Point-to-point send that leaves the sender ``delay`` seconds late.

        Models an adversary timing a message's *release* (a swayer voting
        "just before the deadline"): the network sees the message as if it
        were sent at ``sent_at + delay``, so partition rules and ``delta``
        apply from that later instant.
        """
        self.stats.sent += 1
        self.stats.adversary_delayed += 1
        self._dispatch(message, recipient, message.sent_at + delay)

    def withhold(self, message: Message, recipient: int) -> None:
        """Hold a message outside the network until :meth:`release` is called.

        Models the adversary's ability to delay the release of Byzantine
        messages (Section 5.3 step 2: "Byzantine validators withhold their
        messages ... releasing them at the opportune time").
        """
        self._withheld.append((message, recipient))
        self.stats.withheld += 1

    def release_withheld(self, release_time: float) -> int:
        """Release every withheld message at ``release_time``.

        The released messages still obey the partition schedule from the
        release time onwards.  Returns the number of messages released.
        """
        count = 0
        for message, recipient in self._withheld:
            if self._modeled:
                self._schedule_modeled(message, recipient, release_time, floor=release_time)
            else:
                deliver_at = max(
                    release_time,
                    self._legacy_deliver_at(message.sender, recipient, release_time),
                )
                heapq.heappush(
                    self._queue,
                    Delivery(message=message, recipient=recipient, deliver_at=deliver_at),
                )
            count += 1
        self._withheld.clear()
        return count

    def _dispatch(self, message: Message, recipient: int, effective_sent: float) -> None:
        """Schedule one endpoint's delivery under the configured timing rule."""
        if self._modeled:
            self._schedule_modeled(message, recipient, effective_sent)
            return
        deliver_at = self._legacy_deliver_at(message.sender, recipient, effective_sent)
        bound = self._uniform_delta if self._uniform_delta is not None else self.schedule.delta
        if deliver_at > effective_sent + bound:
            self.stats.delayed_across_partition += 1
        heapq.heappush(
            self._queue, Delivery(message=message, recipient=recipient, deliver_at=deliver_at)
        )

    def _legacy_deliver_at(
        self, sender: int, recipient: int, effective_sent: float
    ) -> float:
        """The deterministic uniform-delay rule (optionally a custom bound)."""
        if self._uniform_delta is None:
            return self.schedule.delivery_time(sender, recipient, effective_sent)
        if self.schedule.can_communicate(sender, recipient, effective_sent):
            return effective_sent + self._uniform_delta
        return self.schedule.gst + self._uniform_delta

    def _schedule_modeled(
        self,
        message: Message,
        recipient: int,
        effective_sent: float,
        floor: Optional[float] = None,
    ) -> None:
        """Per-member sampled delivery times for one endpoint's view group.

        The latency model draws one delivery time per *member validator*
        behind the endpoint.  When every member lands in the same phase
        bucket (the common case: default model parameters keep latencies
        well inside one phase window) a single delivery is scheduled for
        the whole group.  Members whose sampled times diverge past a
        phase boundary can no longer share a view, so the engine's
        exact-audience hook copy-on-write splits the group per bucket —
        all splits are performed *before* any of this message's
        deliveries are pushed, because ``split_endpoint`` duplicates
        in-flight traffic for the new endpoint and must not duplicate
        the very message being scheduled.
        """
        model = self.latency_model
        members = np.asarray(self._members_of(recipient), dtype=np.int64)
        times, avail = model.delivery_times(message, members, effective_sent)
        if floor is not None:
            times = np.maximum(times, floor)
        self.stats.delayed_across_partition += int(np.count_nonzero(avail > effective_sent))
        # A delivery counts as latency-delayed when the model pushed it
        # past where the uniform-delay rule would have landed it *on the
        # same phase grid* — quantization alone is not a model delay.
        bound = avail + self.schedule.delta
        if model.seconds_per_slot is not None:
            bound = quantize_to_phase(bound, model.seconds_per_slot)
        self.stats.latency_delayed += int(np.count_nonzero(times > bound))
        unique_times = np.unique(times)
        if len(unique_times) == 1:
            heapq.heappush(
                self._queue,
                Delivery(
                    message=message, recipient=recipient, deliver_at=float(unique_times[0])
                ),
            )
            return
        buckets: List[Tuple[float, Tuple[int, ...]]] = []
        for bucket_time in unique_times:
            bucket_members = tuple(int(m) for m in members[times == bucket_time])
            endpoints = self._exact_audience(bucket_members)
            buckets.append((float(bucket_time), endpoints))
        for deliver_at, endpoints in buckets:
            for endpoint in endpoints:
                heapq.heappush(
                    self._queue,
                    Delivery(message=message, recipient=endpoint, deliver_at=deliver_at),
                )

    # ------------------------------------------------------------------
    # Endpoint lifecycle (dynamic view splits/merges)
    # ------------------------------------------------------------------
    def split_endpoint(self, old: int, new: int) -> None:
        """Register ``new`` as a participant whose view just forked off ``old``.

        Everything still in flight towards ``old`` — queued deliveries and
        withheld messages — is duplicated for ``new`` with identical
        delivery times and message ids: the members that moved to the new
        endpoint were going to receive those messages, and the split must
        not change that.  Ordering between the copies is irrelevant (they
        land on distinct nodes); ordering *within* each endpoint's stream
        is preserved because ``Delivery`` sorts by
        ``(deliver_at, message_id, recipient)`` and both fields are kept.
        """
        if new in self.participants:
            raise ValueError(f"endpoint {new} already registered")
        self.participants.append(new)
        for delivery in [d for d in self._queue if d.recipient == old]:
            heapq.heappush(
                self._queue,
                Delivery(
                    message=delivery.message,
                    recipient=new,
                    deliver_at=delivery.deliver_at,
                ),
            )
        for message, recipient in [w for w in self._withheld if w[1] == old]:
            self._withheld.append((message, new))

    def deregister_endpoint(self, endpoint: int) -> None:
        """Forget ``endpoint`` after its view group merged into another.

        In-flight deliveries addressed to it are left in the queue; the
        engine drops deliveries whose endpoint no longer resolves to a
        view (the merge legality check guarantees the surviving endpoint
        carries an identical stream).
        """
        self.participants.remove(endpoint)

    def pending_for(self, endpoint: int) -> List[Tuple[float, int]]:
        """In-flight ``(deliver_at, message_id)`` stream of one endpoint, sorted.

        Used by the engine's merge check: two view groups may only fuse
        when — besides equal node state — their future message streams
        are identical.
        """
        return sorted(
            (delivery.deliver_at, delivery.message.message_id)
            for delivery in self._queue
            if delivery.recipient == endpoint
        )

    def withheld_for(self, endpoint: int) -> List[int]:
        """Withheld message ids addressed to ``endpoint``, in withhold order."""
        return [
            message.message_id
            for message, recipient in self._withheld
            if recipient == endpoint
        ]

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def deliveries_until(self, time: float) -> List[Delivery]:
        """Pop and return every delivery due at or before ``time``, in order."""
        due: List[Delivery] = []
        while self._queue and self._queue[0].deliver_at <= time:
            delivery = heapq.heappop(self._queue)
            due.append(delivery)
            self.stats.delivered += 1
        return due

    def pending(self) -> int:
        """Number of deliveries still in flight."""
        return len(self._queue)

    def withheld_count(self) -> int:
        """Number of messages currently withheld by the adversary."""
        return len(self._withheld)

    def next_delivery_time(self) -> Optional[float]:
        """Delivery time of the earliest pending message, if any."""
        return self._queue[0].deliver_at if self._queue else None
