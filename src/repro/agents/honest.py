"""Honest (protocol-following) validator agents."""

from __future__ import annotations

from typing import List

from repro.agents.base import (
    AgentContext,
    AttestationAction,
    ProposalAction,
    ValidatorAgent,
)


class HonestAgent(ValidatorAgent):
    """Follows the protocol: proposes on its head, attests its view."""

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer:
            return []
        block = ctx.node.build_block(slot=ctx.slot)
        return [ProposalAction(block=block)]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester:
            return []
        attestation = ctx.node.attestation_for(slot=ctx.slot)
        return [AttestationAction(attestation=attestation)]


class OfflineAgent(ValidatorAgent):
    """A crashed or unreachable validator: never proposes nor attests.

    Used to model honest validators that are simply down (they are deemed
    inactive on every chain and leak accordingly).
    """

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        return []

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        return []


class IntermittentAgent(ValidatorAgent):
    """An honest validator that is only online every ``period`` epochs.

    With ``period=2`` this reproduces the "semi-active" behaviour of
    Section 4.3 for an honest validator with poor connectivity.
    """

    def __init__(self, validator_index: int, period: int = 2, phase: int = 0) -> None:
        super().__init__(validator_index)
        if period < 1:
            raise ValueError("period must be at least 1")
        self.period = period
        self.phase = phase % period

    def _online(self, epoch: int) -> bool:
        return epoch % self.period == self.phase

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer or not self._online(ctx.epoch):
            return []
        block = ctx.node.build_block(slot=ctx.slot)
        return [ProposalAction(block=block)]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester or not self._online(ctx.epoch):
            return []
        attestation = ctx.node.attestation_for(slot=ctx.slot)
        return [AttestationAction(attestation=attestation)]
