"""Honest (protocol-following) validator agents.

Honest agents are *batch-capable*: every honest committee member sharing a
view attests identically (same head, same FFG link), so the engine calls
:meth:`HonestAgent.attest_committee` once per view group and the whole
cluster's votes travel as one :class:`~repro.core.attestation_batch.AttestationBatch`.
The per-member :meth:`attest` path remains for direct use and tests.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence, Union

from repro.agents.base import (
    AgentContext,
    AttestationAction,
    AttestationBatchAction,
    ProposalAction,
    ValidatorAgent,
)


class HonestAgent(ValidatorAgent):
    """Follows the protocol: proposes on its head, attests its view."""

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer:
            return []
        block = ctx.node.build_block(slot=ctx.slot)
        return [ProposalAction(block=block)]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester:
            return []
        attestation = ctx.node.attestation_for(slot=ctx.slot)
        return [AttestationAction(attestation=attestation)]

    def committee_key(self) -> Optional[Hashable]:
        return "honest"

    def attest_committee(
        self, ctx: AgentContext, members: Sequence[int]
    ) -> List[Union[AttestationAction, AttestationBatchAction]]:
        batch = ctx.node.attestation_batch_for(slot=ctx.slot, validators=members)
        return [AttestationBatchAction(batch=batch)]


class OfflineAgent(ValidatorAgent):
    """A crashed or unreachable validator: never proposes nor attests.

    Used to model honest validators that are simply down (they are deemed
    inactive on every chain and leak accordingly).
    """

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        return []

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        return []

    def committee_key(self) -> Optional[Hashable]:
        return "offline"

    def attest_committee(
        self, ctx: AgentContext, members: Sequence[int]
    ) -> List[Union[AttestationAction, AttestationBatchAction]]:
        return []


class IntermittentAgent(ValidatorAgent):
    """An honest validator that is only online every ``period`` epochs.

    With ``period=2`` this reproduces the "semi-active" behaviour of
    Section 4.3 for an honest validator with poor connectivity.
    """

    def __init__(self, validator_index: int, period: int = 2, phase: int = 0) -> None:
        super().__init__(validator_index)
        if period < 1:
            raise ValueError("period must be at least 1")
        self.period = period
        self.phase = phase % period

    def _online(self, epoch: int) -> bool:
        return epoch % self.period == self.phase

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer or not self._online(ctx.epoch):
            return []
        block = ctx.node.build_block(slot=ctx.slot)
        return [ProposalAction(block=block)]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester or not self._online(ctx.epoch):
            return []
        attestation = ctx.node.attestation_for(slot=ctx.slot)
        return [AttestationAction(attestation=attestation)]

    def committee_key(self) -> Optional[Hashable]:
        # Agents with the same period/phase are online in the same epochs,
        # so their committee votes remain uniform within a view.
        return ("intermittent", self.period, self.phase)

    def attest_committee(
        self, ctx: AgentContext, members: Sequence[int]
    ) -> List[Union[AttestationAction, AttestationBatchAction]]:
        if not self._online(ctx.epoch):
            return []
        batch = ctx.node.attestation_batch_for(slot=ctx.slot, validators=members)
        return [AttestationBatchAction(batch=batch)]
