"""Byzantine validator agents implementing the paper's attack strategies.

All Byzantine agents are coordinated by the adversary: they know the
partition membership (the adversary is unaffected by partitions) and they
can target messages at one partition or withhold them for later release.

* :class:`DoubleVotingAgent` — Section 5.2.1: attest on both branches every
  epoch (slashable once the evidence crosses the healed partition).
* :class:`AlternatingAgent` — Sections 5.2.2 / 5.2.3: semi-active on each
  branch, alternating every epoch (never slashable); optionally "bursts"
  two consecutive epochs on a branch to finalize it.
* :class:`BouncingAgent` — Section 5.3: withholds votes and releases them at
  epoch boundaries to keep honest validators bouncing between branches.
* :class:`SwayerByzantine` — the Gasper balancing attack (Neu/Tas/Tse,
  referenced by the paper's related-work discussion): an adversarial
  proposer shows two competing blocks to two halves of the honest
  validators over a *healthy* network, and "swayer" votes keep the halves
  balanced so neither branch ever reaches a supermajority.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.agents.base import (
    AgentContext,
    AttestationAction,
    ProposalAction,
    ValidatorAgent,
)
from repro.spec.checkpoint import Checkpoint
from repro.spec.types import Root


class ByzantineAgent(ValidatorAgent):
    """Base class for adversary-controlled agents."""

    def __init__(
        self,
        validator_index: int,
        partition_members: Dict[str, Set[int]],
    ) -> None:
        super().__init__(validator_index)
        if not partition_members:
            raise ValueError("Byzantine agents need the partition membership map")
        self.partition_members = {
            name: set(members) for name, members in partition_members.items()
        }
        #: Sorted member index arrays per partition, for the vectorized
        #: vote scans below.
        self.partition_member_arrays = {
            name: np.asarray(sorted(members), dtype=np.int64)
            for name, members in self.partition_members.items()
        }
        self.partition_names = list(self.partition_members)

    @property
    def is_byzantine(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def branch_head_for_partition(self, ctx: AgentContext, partition: str) -> Root:
        """Head of the branch built by the given partition, from the local tree.

        Byzantine validators are bridge nodes, so their tree contains the
        blocks of both partitions.  The branch "belonging" to a partition is
        identified by the proposer of its most recent non-genesis block.
        """
        members = self.partition_members[partition]
        tree = ctx.node.store.tree
        best: Optional[Root] = None
        best_slot = -1
        for leaf in tree.leaves():
            block = tree.get(leaf)
            # Walk down until a non-genesis block proposed by a partition member.
            current = block
            while True:
                if not current.is_genesis() and current.proposer_index in members:
                    if block.slot > best_slot:
                        best = leaf
                        best_slot = block.slot
                    break
                if current.is_genesis():
                    break
                current = tree.get(current.parent_root)
        if best is not None:
            return best
        # No partition-specific branch yet: fall back to the local head.
        return ctx.node.head()

    def source_checkpoint_for_branch(self, ctx: AgentContext, head: Root, partition: str):
        """The FFG source to use when attesting on the branch of ``head``.

        The adversary crafts each branch's attestation so that its source
        matches what that branch's honest validators consider justified —
        otherwise the Byzantine vote would not contribute to the branch's
        supermajority links.  Being connected to both partitions, the agent
        simply mirrors the most advanced source used by the partition's own
        validators (restricted to checkpoints on this branch); genesis is the
        fallback.
        """
        tree = ctx.node.store.tree
        member_array = self.partition_member_arrays[partition]
        root_of = ctx.node.pool.flat.root_of
        best = None
        for epoch in sorted(ctx.node.attestations_by_epoch, reverse=True):
            columns = ctx.node.attestations_by_epoch[epoch]
            validators, source_epochs, source_roots, _ = columns.arrays()
            from_members = np.isin(validators, member_array)
            if from_members.any():
                # Ancestry is checked once per distinct source root, then
                # the row filter runs as one array comparison.
                usable_roots = [
                    root_id
                    for root_id in np.unique(source_roots[from_members]).tolist()
                    if root_of(root_id) in tree
                    and tree.is_ancestor(root_of(root_id), head)
                ]
                rows = np.nonzero(
                    from_members & np.isin(source_roots, usable_roots)
                )[0]
                if rows.size:
                    # argmax keeps the first maximum, matching the original
                    # ingestion-order walk ("only replace when strictly
                    # greater").
                    pick = rows[int(np.argmax(source_epochs[rows]))]
                    candidate = Checkpoint(
                        epoch=int(source_epochs[pick]),
                        root=root_of(int(source_roots[pick])),
                    )
                    if best is None or candidate.epoch > best.epoch:
                        best = candidate
            if best is not None and best.epoch > 0:
                break
        if best is not None:
            return best
        # Fall back to checkpoints justified in the agent's own state that lie
        # on this branch (genesis always qualifies).
        state = ctx.node.state
        fallback = state.finalized_checkpoints[0]
        for epoch in sorted(state.justified_checkpoints):
            checkpoint = state.justified_checkpoints[epoch]
            if checkpoint.root in tree and tree.is_ancestor(checkpoint.root, head):
                if checkpoint.epoch > fallback.epoch:
                    fallback = checkpoint
        return fallback

    def attestation_for_branch(self, ctx: AgentContext, partition: str):
        """Build the branch-consistent attestation for one partition."""
        head = self.branch_head_for_partition(ctx, partition)
        source = self.source_checkpoint_for_branch(ctx, head, partition)
        return ctx.node.attestation_for(slot=ctx.slot, head=head, source=source)

    def _partition_for_epoch(self, epoch: int) -> str:
        """Alternation helper: even epochs -> first partition, odd -> second."""
        return self.partition_names[epoch % len(self.partition_names)]


class DoubleVotingAgent(ByzantineAgent):
    """Attests (and proposes) on every branch each epoch — slashable behaviour."""

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer:
            return []
        actions: List[ProposalAction] = []
        for partition in self.partition_names:
            parent = self.branch_head_for_partition(ctx, partition)
            block = ctx.node.build_block(
                slot=ctx.slot, parent=parent, branch_tag=partition, include_evidence=False
            )
            actions.append(ProposalAction(block=block, audience=partition))
        return actions

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester:
            return []
        actions: List[AttestationAction] = []
        for partition in self.partition_names:
            attestation = self.attestation_for_branch(ctx, partition)
            actions.append(AttestationAction(attestation=attestation, audience=partition))
        return actions


class AlternatingAgent(ByzantineAgent):
    """Semi-active on both branches, alternating each epoch (non-slashable).

    With ``finalize_when_possible=True`` the agent implements the Section
    5.2.2 strategy: once it observes that its vote would push a branch over
    the supermajority, it stays on that branch for two consecutive epochs to
    finalize it, then switches to the other branch.  With the flag off it
    implements the Section 5.2.3 strategy (never finalize, grow beta).
    """

    def __init__(
        self,
        validator_index: int,
        partition_members: Dict[str, Set[int]],
        finalize_when_possible: bool = False,
    ) -> None:
        super().__init__(validator_index, partition_members)
        self.finalize_when_possible = finalize_when_possible
        self._burst_partition: Optional[str] = None
        self._burst_epochs_left = 0

    def _current_partition(self, ctx: AgentContext) -> str:
        if self._burst_partition is not None and self._burst_epochs_left > 0:
            return self._burst_partition
        return self._partition_for_epoch(ctx.epoch)

    def on_epoch_start(self, ctx: AgentContext) -> None:
        if self._burst_epochs_left > 0:
            self._burst_epochs_left -= 1
            if self._burst_epochs_left == 0:
                self._burst_partition = None
        if self.finalize_when_possible and self._burst_partition is None:
            # Heuristic trigger: if this node's local chain justified the
            # previous epoch, staying two epochs on the same branch will
            # produce consecutive justifications and finalize it.
            if ctx.node.state.is_justified(max(0, ctx.epoch - 1)):
                self._burst_partition = self._partition_for_epoch(ctx.epoch)
                self._burst_epochs_left = 2

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer:
            return []
        partition = self._current_partition(ctx)
        parent = self.branch_head_for_partition(ctx, partition)
        block = ctx.node.build_block(
            slot=ctx.slot, parent=parent, branch_tag=partition, include_evidence=False
        )
        return [ProposalAction(block=block, audience=partition)]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester:
            return []
        partition = self._current_partition(ctx)
        attestation = self.attestation_for_branch(ctx, partition)
        return [AttestationAction(attestation=attestation, audience=partition)]


class BouncingAgent(ByzantineAgent):
    """Withholds votes and releases them to keep honest validators bouncing.

    Each epoch the agent votes for the branch that the honest majority is
    *not* currently on and hands the attestation to the adversary
    (``withhold=True``).  The simulation engine releases all withheld votes
    at the start of the next epoch, at which point they tip the fork choice
    of part of the honest validators towards the other branch — the bounce.
    """

    def __init__(
        self,
        validator_index: int,
        partition_members: Dict[str, Set[int]],
    ) -> None:
        super().__init__(validator_index, partition_members)

    def _losing_partition(self, ctx: AgentContext) -> str:
        """The partition whose branch currently has the lighter honest support.

        Vectorized over the store's latest-vote arrays: one mask per
        partition instead of a walk over every recorded message.
        """
        epochs, root_ids = ctx.node.store.latest_vote_view()
        stakes = ctx.node.stake_array()
        capacity = epochs.shape[0]
        weights: Dict[str, float] = {}
        for partition in self.partition_names:
            head = self.branch_head_for_partition(ctx, partition)
            head_id = ctx.node.store.root_id_of(head)
            if head_id is None:
                weights[partition] = 0.0
                continue
            members = self.partition_member_arrays[partition]
            members = members[(members < capacity) & (members < stakes.shape[0])]
            supporting = members[
                (epochs[members] >= 0) & (root_ids[members] == head_id)
            ]
            weights[partition] = float(stakes[supporting].sum())
        return min(self.partition_names, key=lambda name: weights.get(name, 0.0))

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer:
            return []
        partition = self._losing_partition(ctx)
        parent = self.branch_head_for_partition(ctx, partition)
        block = ctx.node.build_block(
            slot=ctx.slot, parent=parent, branch_tag=partition, include_evidence=False
        )
        # The proposal itself is published immediately: it is the withheld
        # attestations that do the bouncing.
        return [ProposalAction(block=block)]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester:
            return []
        partition = self._losing_partition(ctx)
        attestation = self.attestation_for_branch(ctx, partition)
        return [AttestationAction(attestation=attestation, withhold=True)]


class SwayerByzantine(ValidatorAgent):
    """Balancing-attack agent: split proposal plus swaying votes.

    Unlike the partition-based agents above, this strategy needs no
    network partition at all — the network is healthy and the fork is
    manufactured purely with *targeted* messages (``recipients`` actions),
    which is what exercises the engine's dynamic view splitting:

    1. At ``split_slot`` the adversarial proposer publishes two competing
       blocks on the same parent, tagged ``tag_left``/``tag_right``; the
       left block goes to the left half of the honest validators (plus
       every Byzantine validator, so the adversary's view group never
       splits), the right block to the right half.
    2. From then on, swayers in each slot's committee vote for the
       currently *lighter* tagged branch and show that vote only to the
       honest half supporting the *heavier* branch (plus the Byzantine
       validators), optionally ``sway_delay`` seconds late — just in time
       to flip that half's fork choice before its own attestation duty,
       keeping the two branches balanced.
    3. An adversarial proposer after the split extends the lighter branch
       and broadcasts, feeding both halves material to stay split on.

    Until two tagged branches exist, votes are withheld (released at the
    next epoch start to everyone — audience-uniform, so no view splits).
    """

    def __init__(
        self,
        validator_index: int,
        left: Sequence[int],
        right: Sequence[int],
        byzantine: Sequence[int],
        split_slot: int = 1,
        sway_delay: float = 0.0,
        tag_left: str = "balance-left",
        tag_right: str = "balance-right",
    ) -> None:
        super().__init__(validator_index)
        self.left = tuple(sorted(left))
        self.right = tuple(sorted(right))
        self.byzantine = tuple(sorted(byzantine))
        self.split_slot = split_slot
        self.sway_delay = sway_delay
        self.tag_left = tag_left
        self.tag_right = tag_right

    @property
    def is_byzantine(self) -> bool:
        return True

    # ------------------------------------------------------------------
    def _tagged_branch_heads(self, ctx: AgentContext) -> Dict[str, Root]:
        """Highest-slot leaf per balancing tag, from the local tree.

        A leaf belongs to the branch of the first tagged ancestor on its
        path to genesis (the split blocks and all swayer extensions carry
        the tag, honest extensions do not).
        """
        tree = ctx.node.store.tree
        tags = {self.tag_left, self.tag_right}
        heads: Dict[str, Root] = {}
        best_slot: Dict[str, int] = {}
        for leaf in tree.leaves():
            current = tree.get(leaf)
            while True:
                if current.branch_tag in tags:
                    tag = current.branch_tag
                    leaf_slot = tree.get(leaf).slot
                    if leaf_slot > best_slot.get(tag, -1):
                        best_slot[tag] = leaf_slot
                        heads[tag] = leaf
                    break
                if current.is_genesis():
                    break
                current = tree.get(current.parent_root)
        return heads

    def _lighter_and_heavier(
        self, ctx: AgentContext, heads: Dict[str, Root]
    ) -> Tuple[str, str]:
        """Tags of the (lighter, heavier) branch by attesting stake.

        Ties go to the left branch as lighter — a fixed rule every swayer
        computes identically from the shared Byzantine view.
        """
        left_weight = ctx.node.branch_weight(heads[self.tag_left])
        right_weight = ctx.node.branch_weight(heads[self.tag_right])
        if left_weight <= right_weight:
            return self.tag_left, self.tag_right
        return self.tag_right, self.tag_left

    def _half_of(self, tag: str) -> Tuple[int, ...]:
        return self.left if tag == self.tag_left else self.right

    # ------------------------------------------------------------------
    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer:
            return []
        if ctx.slot == self.split_slot:
            parent = ctx.node.head()
            left_block = ctx.node.build_block(
                slot=ctx.slot,
                parent=parent,
                branch_tag=self.tag_left,
                include_evidence=False,
            )
            right_block = ctx.node.build_block(
                slot=ctx.slot,
                parent=parent,
                branch_tag=self.tag_right,
                include_evidence=False,
            )
            return [
                ProposalAction(
                    block=left_block, recipients=self.left + self.byzantine
                ),
                ProposalAction(
                    block=right_block, recipients=self.right + self.byzantine
                ),
            ]
        heads = self._tagged_branch_heads(ctx)
        if len(heads) < 2:
            # No split yet (or it never reached us): propose honestly.
            return [ProposalAction(block=ctx.node.build_block(slot=ctx.slot))]
        lighter, _ = self._lighter_and_heavier(ctx, heads)
        block = ctx.node.build_block(
            slot=ctx.slot,
            parent=heads[lighter],
            branch_tag=lighter,
            include_evidence=False,
        )
        return [ProposalAction(block=block)]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester:
            return []
        heads = self._tagged_branch_heads(ctx)
        if len(heads) < 2:
            # Keep powder dry until both split blocks are visible.
            return [
                AttestationAction(
                    attestation=ctx.node.attestation_for(slot=ctx.slot),
                    withhold=True,
                )
            ]
        lighter, heavier = self._lighter_and_heavier(ctx, heads)
        attestation = ctx.node.attestation_for(slot=ctx.slot, head=heads[lighter])
        return [
            AttestationAction(
                attestation=attestation,
                recipients=self._half_of(heavier) + self.byzantine,
                delay=self.sway_delay,
            )
        ]
