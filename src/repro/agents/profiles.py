"""Stochastic honest-behaviour profiles: lazy and intermittent validators.

The AztecProtocol slashing-sim distinguishes HONEST / LAZY / BYZANTINE
behaviour profiles with per-deadline timing; this module adds the two
non-ideal *honest* profiles on the agent seam:

* :class:`LazyValidator` — attests, but late (a seeded per-slot delay on
  the publication) and sometimes not at all (a seeded miss draw),
* :class:`IntermittentValidator` — flips online/offline per epoch from a
  seeded coin instead of the deterministic schedule of
  :class:`~repro.agents.honest.IntermittentAgent`.

Both draw from the same counter-based hash streams as the latency models
(:mod:`repro.network.latency`): a decision is a pure function of
``(profile seed, slot-or-epoch, validator index)``, never of RNG call
order — so the grouped and per-node engines, which interrogate agents in
different orders, make byte-identical decisions.  Both profiles return
``committee_key() is None``: their actions are per-validator (each has
its own delay and miss stream), so they keep the per-member attestation
path in both sharding modes.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.agents.base import (
    AgentContext,
    AttestationAction,
    ProposalAction,
    ValidatorAgent,
)
from repro.network.latency import _mix_scalar, hashed_uniform_scalar

#: Domain tags keeping the profiles' hash streams disjoint from each
#: other and from the latency models'.
_LAZY_TAG = 0x1A27
_INTERMITTENT_TAG = 0x1F7E


class LazyValidator(ValidatorAgent):
    """An honest validator with missed and late attestation windows.

    Per attestation duty the profile draws, from its seeded stream,
    whether the attestation is skipped entirely (probability
    ``miss_rate``) and otherwise how late it is published (uniform in
    ``[0, max_delay)`` seconds after the attestation deadline).  The late
    vote still reflects the validator's view *at the deadline* — laziness
    here is slow publication, not slow observation.  Proposals are made
    on time: the profile models attestation sloppiness, the dominant
    real-world failure mode.
    """

    def __init__(
        self,
        validator_index: int,
        miss_rate: float = 0.1,
        max_delay: float = 4.0,
        seed: int = 0,
    ) -> None:
        super().__init__(validator_index)
        if not 0.0 <= miss_rate <= 1.0:
            raise ValueError("miss_rate must lie in [0, 1]")
        if max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        self.miss_rate = float(miss_rate)
        self.max_delay = float(max_delay)
        self.seed = int(seed)

    def _duty_draws(self, slot: int) -> Tuple[bool, float]:
        """(missed, publication delay) for this validator's duty at ``slot``."""
        key = _mix_scalar(self.seed, _LAZY_TAG, slot, self.validator_index)
        missed = hashed_uniform_scalar(_mix_scalar(key, 1)) < self.miss_rate
        delay = hashed_uniform_scalar(_mix_scalar(key, 2)) * self.max_delay
        return missed, delay

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer:
            return []
        return [ProposalAction(block=ctx.node.build_block(slot=ctx.slot))]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester:
            return []
        missed, delay = self._duty_draws(ctx.slot)
        if missed:
            return []
        attestation = ctx.node.attestation_for(slot=ctx.slot)
        return [AttestationAction(attestation=attestation, delay=delay)]


class IntermittentValidator(ValidatorAgent):
    """An honest validator that is online in a seeded-random set of epochs.

    Each epoch the profile flips a seeded coin: with probability
    ``online_probability`` the validator performs its duties normally,
    otherwise it behaves like :class:`~repro.agents.honest.OfflineAgent`
    for the whole epoch.  Unlike the deterministic periodic
    ``IntermittentAgent``, every validator has its own independent
    online/offline trajectory.
    """

    def __init__(
        self,
        validator_index: int,
        online_probability: float = 0.75,
        seed: int = 0,
    ) -> None:
        super().__init__(validator_index)
        if not 0.0 <= online_probability <= 1.0:
            raise ValueError("online_probability must lie in [0, 1]")
        self.online_probability = float(online_probability)
        self.seed = int(seed)

    def is_online(self, epoch: int) -> bool:
        """Seeded per-epoch availability draw for this validator."""
        key = _mix_scalar(self.seed, _INTERMITTENT_TAG, epoch, self.validator_index)
        return hashed_uniform_scalar(key) < self.online_probability

    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        if not ctx.is_proposer or not self.is_online(ctx.epoch):
            return []
        return [ProposalAction(block=ctx.node.build_block(slot=ctx.slot))]

    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        if not ctx.is_attester or not self.is_online(ctx.epoch):
            return []
        attestation = ctx.node.attestation_for(slot=ctx.slot)
        return [AttestationAction(attestation=attestation)]
