"""Validator agent interface for the slot-level simulator.

An *agent* decides what a validator does with its duties: which block to
propose, what to attest, and to whom the messages should go.  Honest agents
follow the protocol; Byzantine agents implement the paper's attack
strategies.  Agents never touch the network directly — they return
*actions* which the simulation engine executes through the transport and
the adversary, so the timing and partitioning rules are enforced in one
place.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.attestation_batch import AttestationBatch
from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.committees import EpochDuties

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.node import Node


@dataclass
class ProposalAction:
    """A block proposal to publish.

    ``audience`` restricts delivery to one partition (by name); ``None``
    broadcasts to every participant the network can reach.  ``recipients``
    targets an exact set of *validator indices* instead — the adversary's
    sharpest capability, used by the balancing attack to show different
    blocks to different halves of the honest validators (it takes
    precedence over ``audience`` and, under view sharding, dynamically
    splits any view group it only partially covers).  ``delay`` releases
    the message that many seconds after its nominal send time; honoured
    only together with ``recipients``.
    """

    block: BeaconBlock
    audience: Optional[str] = None
    recipients: Optional[Tuple[int, ...]] = None
    delay: float = 0.0


@dataclass
class AttestationAction:
    """An attestation to publish.

    ``audience`` restricts delivery to one partition; ``withhold`` hands the
    attestation to the adversary instead of the network, to be released
    later (the bouncing attack's withheld votes).  ``recipients``/``delay``
    target an exact validator set with a timed release, as for
    :class:`ProposalAction` (the swayer votes of the balancing attack).
    """

    attestation: Attestation
    audience: Optional[str] = None
    withhold: bool = False
    recipients: Optional[Tuple[int, ...]] = None
    delay: float = 0.0


@dataclass
class AttestationBatchAction:
    """A whole committee's identical attestations, published as one message.

    Emitted by batch-capable agents (:meth:`ValidatorAgent.attest_committee`)
    for the members of one view group in one committee; routed exactly like
    a single attestation (``audience``/``withhold``/``recipients``/``delay``).
    """

    batch: AttestationBatch
    audience: Optional[str] = None
    withhold: bool = False
    recipients: Optional[Tuple[int, ...]] = None
    delay: float = 0.0


@dataclass
class AgentContext:
    """Everything an agent may look at when deciding its actions."""

    validator_index: int
    slot: int
    epoch: int
    time: float
    #: The validator's local node: store, state, vote pool, detector.
    node: "Node"
    #: Duties of the current epoch (shared deterministic schedule).
    duties: EpochDuties
    #: True when this validator proposes at this slot.
    is_proposer: bool
    #: True when this validator's attestation duty falls on this slot.
    is_attester: bool
    #: Names of the network partitions (empty when the network is whole).
    partition_names: Sequence[str] = ()


class ValidatorAgent(ABC):
    """Behaviour of one validator."""

    def __init__(self, validator_index: int) -> None:
        self.validator_index = validator_index

    # ------------------------------------------------------------------
    @abstractmethod
    def propose(self, ctx: AgentContext) -> List[ProposalAction]:
        """Return the block proposals to publish at this slot (may be empty)."""

    @abstractmethod
    def attest(self, ctx: AgentContext) -> List[AttestationAction]:
        """Return the attestations to publish at this slot (may be empty)."""

    def on_epoch_start(self, ctx: AgentContext) -> None:
        """Hook called at the first slot of every epoch (default: no-op)."""

    # ------------------------------------------------------------------
    # Committee-level (batch) attestation API
    # ------------------------------------------------------------------
    def committee_key(self) -> Optional[Hashable]:
        """Batching key for committee-level attestation, or ``None``.

        Agents returning a non-``None`` key promise that every agent of
        theirs with the same key, attesting from the same view in the
        same slot, produces identical attestation content; the engine
        then clusters such committee members and calls
        :meth:`attest_committee` once per (view group, key) instead of
        once per validator.  Agents with per-validator decisions (the
        Byzantine strategies) return ``None`` and keep the per-member
        :meth:`attest` path.
        """
        return None

    def attest_committee(
        self, ctx: AgentContext, members: Sequence[int]
    ) -> List[Union[AttestationAction, AttestationBatchAction]]:
        """Return the actions for a whole same-view committee cluster.

        Called only when :meth:`committee_key` returned a key; ``ctx`` is
        built for an arbitrary member of the cluster and ``members``
        lists every clustered validator (ascending committee order).
        """
        raise NotImplementedError(
            f"{type(self).__name__} advertises a committee_key but does not "
            "implement attest_committee"
        )

    # ------------------------------------------------------------------
    @property
    def is_byzantine(self) -> bool:
        """True for agents controlled by the adversary."""
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(validator={self.validator_index})"
