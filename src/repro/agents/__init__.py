"""Validator agents: honest behaviours and Byzantine attack strategies."""

from repro.agents.base import (
    AgentContext,
    AttestationAction,
    ProposalAction,
    ValidatorAgent,
)
from repro.agents.byzantine import (
    AlternatingAgent,
    BouncingAgent,
    ByzantineAgent,
    DoubleVotingAgent,
)
from repro.agents.honest import HonestAgent, IntermittentAgent, OfflineAgent
from repro.agents.profiles import IntermittentValidator, LazyValidator

__all__ = [
    "AgentContext",
    "AlternatingAgent",
    "AttestationAction",
    "BouncingAgent",
    "ByzantineAgent",
    "DoubleVotingAgent",
    "HonestAgent",
    "IntermittentAgent",
    "IntermittentValidator",
    "LazyValidator",
    "OfflineAgent",
    "ProposalAction",
    "ValidatorAgent",
]
