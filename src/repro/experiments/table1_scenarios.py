"""Table 1: the five analysed scenarios and their outcomes.

Each scenario is run end-to-end on the discrete aggregate leak simulator
(and, for scenario 5.3, on the bouncing-attack model); the table reports
the qualitative outcome the paper lists together with the measured numbers
backing it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.partition_scenarios import ScenarioOutcome, run_all_scenarios

#: The paper's Table 1: scenario id -> expected outcome.
PAPER_OUTCOMES: Dict[str, str] = {
    "5.1": "2 finalized branches",
    "5.2.1": "2 finalized branches",
    "5.2.2": "2 finalized branches",
    "5.2.3": "beta > 1/3",
    "5.3": "beta > 1/3 probably",
}


@dataclass
class Table1Result:
    """Measured scenario outcomes vs the paper's Table 1."""

    outcomes: List[ScenarioOutcome]

    def rows(self) -> List[Dict[str, object]]:
        """One row per scenario."""
        rows = []
        for outcome in self.outcomes:
            rows.append(
                {
                    "scenario": outcome.scenario_id,
                    "description": outcome.description,
                    "beta0": outcome.beta0,
                    "outcome_measured": outcome.outcome,
                    "outcome_paper": PAPER_OUTCOMES.get(outcome.scenario_id, ""),
                    "conflicting_finalization_epoch": outcome.conflicting_finalization_epoch,
                    "max_byzantine_proportion": outcome.max_byzantine_proportion,
                }
            )
        return rows

    def format_text(self) -> str:
        lines = ["Table 1 — analysed scenarios and their outcomes"]
        for row in self.rows():
            lines.append(
                f"  {row['scenario']:<6} beta0={row['beta0']:<5} -> {row['outcome_measured']} "
                f"(paper: {row['outcome_paper']}); "
                f"conflicting finalization at epoch {row['conflicting_finalization_epoch']}"
            )
        return "\n".join(lines)

    def matches_paper(self) -> bool:
        """True when every measured outcome matches the paper's Table 1."""
        return all(
            row["outcome_measured"] == row["outcome_paper"] for row in self.rows()
        )


def run(
    beta0: float = 0.33,
    threshold_beta0: float = 0.25,
    p0: float = 0.5,
    max_epochs: int = 6000,
) -> Table1Result:
    """Run the five Table-1 scenarios."""
    return Table1Result(
        outcomes=run_all_scenarios(
            beta0=beta0, threshold_beta0=threshold_beta0, p0=p0, max_epochs=max_epochs
        )
    )
