"""Figure 9: the honest-stake distribution P̄(x, t) at t = 4024 under the bounce.

The distribution has a continuous log-normal body between the ejection
balance (16.75 ETH) and the 32-ETH cap, plus point masses at 0 (ejected
validators) and at 32 ETH (validators that never leaked), Equation 21.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.distributions import BouncingStakeDistribution

PAPER_EPOCH = 4024


@dataclass
class Figure9Result:
    """Sampled density and point masses of the capped stake law."""

    epoch: int
    p0: float
    stake_grid: Sequence[float]
    density: Sequence[float]
    ejection_mass: float
    cap_mass: float
    total_mass: float
    median_stake: float

    def rows(self) -> List[Dict[str, float]]:
        """Headline numbers of the distribution."""
        return [
            {
                "epoch": float(self.epoch),
                "ejection_mass": self.ejection_mass,
                "cap_mass": self.cap_mass,
                "continuous_mass": self.total_mass - self.ejection_mass - self.cap_mass,
                "total_mass": self.total_mass,
                "median_stake": self.median_stake,
            }
        ]

    def format_text(self) -> str:
        row = self.rows()[0]
        return (
            f"Figure 9 — stake distribution at t={self.epoch} (p0={self.p0})\n"
            f"  mass at 0 ETH (ejected):   {row['ejection_mass']:.4f}\n"
            f"  mass at 32 ETH (capped):   {row['cap_mass']:.4f}\n"
            f"  continuous mass (16.75-32): {row['continuous_mass']:.4f}\n"
            f"  total mass:                {row['total_mass']:.4f}\n"
            f"  median stake:              {row['median_stake']:.2f} ETH"
        )


def run(epoch: int = PAPER_EPOCH, p0: float = 0.5, grid_points: int = 400) -> Figure9Result:
    """Reproduce the Figure-9 distribution."""
    distribution = BouncingStakeDistribution(p0=p0)
    grid, density = distribution.density_series(float(epoch), grid_points=grid_points)
    return Figure9Result(
        epoch=epoch,
        p0=p0,
        stake_grid=[float(x) for x in grid],
        density=[float(d) for d in density],
        ejection_mass=distribution.ejection_mass(float(epoch)),
        cap_mass=distribution.cap_mass(float(epoch)),
        total_mass=distribution.total_mass(float(epoch)),
        median_stake=distribution.mean_stake(float(epoch)),
    )
