"""Full (p0, beta0) sweep of the conflicting-finalization time.

Figure 6 fixes p0 = 0.5 and sweeps beta0; this extension sweeps both
parameters and reports, for each Byzantine strategy, the epoch at which the
*slower* branch of the fork regains a supermajority — a heat-map view of
how the honest split and the Byzantine proportion jointly determine how
fast Safety can be lost.  It also locates, for each beta0, the worst-case
split (which the paper argues is the even one).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.finalization_time import (
    ByzantineStrategy,
    threshold_epoch_non_slashing,
    threshold_epoch_slashing,
)
from repro.core.trials import parallel_map


@dataclass
class SweepGridResult:
    """Crossing-time grids for both Byzantine strategies."""

    p0_values: Sequence[float]
    beta0_values: Sequence[float]
    #: grid[i][j] = slower-branch crossing epoch for (p0_values[i], beta0_values[j]).
    slashing_grid: np.ndarray
    non_slashing_grid: np.ndarray

    def rows(self) -> List[Dict[str, float]]:
        """One row per grid point (flattened), suitable for CSV export."""
        rows = []
        for i, p0 in enumerate(self.p0_values):
            for j, beta0 in enumerate(self.beta0_values):
                rows.append(
                    {
                        "p0": p0,
                        "beta0": beta0,
                        "epochs_slashing": float(self.slashing_grid[i, j]),
                        "epochs_non_slashing": float(self.non_slashing_grid[i, j]),
                    }
                )
        return rows

    def worst_case_split(self, beta0: float, strategy: str = ByzantineStrategy.SLASHING) -> float:
        """The p0 minimising the crossing time for a given beta0.

        Several splits can tie once the ejection cap binds (every p0 ≤ 0.5
        branch waits for the ejection); ties are broken towards the even
        split, which is the configuration the paper singles out.
        """
        j = int(np.argmin([abs(b - beta0) for b in self.beta0_values]))
        grid = (
            self.slashing_grid
            if strategy == ByzantineStrategy.SLASHING
            else self.non_slashing_grid
        )
        column = grid[:, j]
        minimum = float(np.min(column))
        candidates = [
            i for i in range(len(self.p0_values)) if column[i] <= minimum + 1e-9
        ]
        best = min(candidates, key=lambda i: abs(self.p0_values[i] - 0.5))
        return float(self.p0_values[best])

    def format_text(self) -> str:
        lines = [
            "(p0, beta0) sweep — epochs until the slower branch regains 2/3",
            f"  grid: {len(self.p0_values)} p0 values x {len(self.beta0_values)} beta0 values",
        ]
        header = "  p0\\beta0 " + "".join(f"{b:>8.2f}" for b in self.beta0_values)
        lines.append("  [slashable strategy]")
        lines.append(header)
        for i, p0 in enumerate(self.p0_values):
            lines.append(
                f"  {p0:>8.2f} "
                + "".join(f"{self.slashing_grid[i, j]:>8.0f}" for j in range(len(self.beta0_values)))
            )
        lines.append("  [non-slashable strategy]")
        lines.append(header)
        for i, p0 in enumerate(self.p0_values):
            lines.append(
                f"  {p0:>8.2f} "
                + "".join(
                    f"{self.non_slashing_grid[i, j]:>8.0f}" for j in range(len(self.beta0_values))
                )
            )
        return "\n".join(lines)


def _grid_cell(point: Tuple[float, float]) -> Tuple[float, float]:
    """Both strategies' slower-branch crossing times at one (p0, beta0) point.

    Module-level so the grid can be fanned out to a process pool.
    """
    p0, beta0 = point
    slashing = max(
        threshold_epoch_slashing(p0, beta0),
        threshold_epoch_slashing(1.0 - p0, beta0),
    )
    non_slashing = max(
        threshold_epoch_non_slashing(p0, beta0),
        threshold_epoch_non_slashing(1.0 - p0, beta0),
    )
    return slashing, non_slashing


def run(
    p0_values: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
    beta0_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.33),
    jobs: Optional[int] = None,
) -> SweepGridResult:
    """Evaluate both strategies' slower-branch crossing times over the grid.

    ``jobs`` fans the (deterministic) grid points out to a process pool;
    the result never depends on the parallelism level.
    """
    points = [(p0, beta0) for p0 in p0_values for beta0 in beta0_values]
    cells = parallel_map(_grid_cell, points, jobs=jobs)
    grids = np.array(cells).reshape(len(p0_values), len(beta0_values), 2)
    slashing = grids[:, :, 0].copy()
    non_slashing = grids[:, :, 1].copy()
    return SweepGridResult(
        p0_values=list(p0_values),
        beta0_values=list(beta0_values),
        slashing_grid=slashing,
        non_slashing_grid=non_slashing,
    )
