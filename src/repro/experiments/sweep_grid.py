"""Full (p0, beta0) sweep of the conflicting-finalization time.

Figure 6 fixes p0 = 0.5 and sweeps beta0; this extension sweeps both
parameters and reports, for each Byzantine strategy, the epoch at which the
*slower* branch of the fork regains a supermajority — a heat-map view of
how the honest split and the Byzantine proportion jointly determine how
fast Safety can be lost.  It also locates, for each beta0, the worst-case
split (which the paper argues is the even one).

When asked for Monte-Carlo trials (``n_trials``), the sweep additionally
re-derives the grid *empirically*: every (p0, beta0) point runs the
trial-batched bouncing-attack simulation and reports the gap between the
Equation-24 closed-form exceed probability and its empirical estimate —
the closed-form-vs-empirical validation the batched kernels make feasible
at every grid point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.bouncing import BouncingAttackModel
from repro.analysis.finalization_time import (
    ByzantineStrategy,
    threshold_epoch_non_slashing,
    threshold_epoch_slashing,
)
from repro.analysis.montecarlo import BouncingMonteCarlo
from repro.core.trials import parallel_map


@dataclass
class SweepGridResult:
    """Crossing-time grids for both Byzantine strategies."""

    p0_values: Sequence[float]
    beta0_values: Sequence[float]
    #: grid[i][j] = slower-branch crossing epoch for (p0_values[i], beta0_values[j]).
    slashing_grid: np.ndarray
    non_slashing_grid: np.ndarray
    #: Epoch the optional Monte-Carlo validation evaluated (None = not run).
    mc_horizon: Optional[int] = None
    #: Trials per grid point of the Monte-Carlo validation.
    mc_trials: Optional[int] = None
    #: grid[i][j] = Equation-24 (both branches) exceed probability at mc_horizon.
    exceed_closed_form: Optional[np.ndarray] = None
    #: grid[i][j] = empirical exceed probability at mc_horizon.
    exceed_empirical: Optional[np.ndarray] = None

    @property
    def has_empirical(self) -> bool:
        """True when the Monte-Carlo validation layer was computed."""
        return self.exceed_empirical is not None

    @property
    def exceed_gap(self) -> Optional[np.ndarray]:
        """Absolute closed-form-vs-empirical gap per grid point."""
        if not self.has_empirical:
            return None
        return np.abs(self.exceed_closed_form - self.exceed_empirical)

    def max_exceed_gap(self) -> float:
        """Largest closed-form-vs-empirical gap over the whole grid."""
        if not self.has_empirical:
            raise ValueError("the sweep was run without Monte-Carlo trials")
        return float(np.max(self.exceed_gap))

    def rows(self) -> List[Dict[str, float]]:
        """One row per grid point (flattened), suitable for CSV export."""
        rows = []
        for i, p0 in enumerate(self.p0_values):
            for j, beta0 in enumerate(self.beta0_values):
                row = {
                    "p0": p0,
                    "beta0": beta0,
                    "epochs_slashing": float(self.slashing_grid[i, j]),
                    "epochs_non_slashing": float(self.non_slashing_grid[i, j]),
                }
                if self.has_empirical:
                    row["exceed_closed_form"] = float(self.exceed_closed_form[i, j])
                    row["exceed_empirical"] = float(self.exceed_empirical[i, j])
                    row["exceed_gap"] = float(self.exceed_gap[i, j])
                rows.append(row)
        return rows

    def worst_case_split(self, beta0: float, strategy: str = ByzantineStrategy.SLASHING) -> float:
        """The p0 minimising the crossing time for a given beta0.

        Several splits can tie once the ejection cap binds (every p0 ≤ 0.5
        branch waits for the ejection); ties are broken towards the even
        split, which is the configuration the paper singles out.
        """
        j = int(np.argmin([abs(b - beta0) for b in self.beta0_values]))
        grid = (
            self.slashing_grid
            if strategy == ByzantineStrategy.SLASHING
            else self.non_slashing_grid
        )
        column = grid[:, j]
        minimum = float(np.min(column))
        candidates = [
            i for i in range(len(self.p0_values)) if column[i] <= minimum + 1e-9
        ]
        best = min(candidates, key=lambda i: abs(self.p0_values[i] - 0.5))
        return float(self.p0_values[best])

    def format_text(self) -> str:
        lines = [
            "(p0, beta0) sweep — epochs until the slower branch regains 2/3",
            f"  grid: {len(self.p0_values)} p0 values x {len(self.beta0_values)} beta0 values",
        ]
        header = "  p0\\beta0 " + "".join(f"{b:>8.2f}" for b in self.beta0_values)
        lines.append("  [slashable strategy]")
        lines.append(header)
        for i, p0 in enumerate(self.p0_values):
            lines.append(
                f"  {p0:>8.2f} "
                + "".join(f"{self.slashing_grid[i, j]:>8.0f}" for j in range(len(self.beta0_values)))
            )
        lines.append("  [non-slashable strategy]")
        lines.append(header)
        for i, p0 in enumerate(self.p0_values):
            lines.append(
                f"  {p0:>8.2f} "
                + "".join(
                    f"{self.non_slashing_grid[i, j]:>8.0f}" for j in range(len(self.beta0_values))
                )
            )
        if self.has_empirical:
            gap = self.exceed_gap
            lines.append(
                "  [closed-form vs empirical exceed probability at "
                f"t={self.mc_horizon}, {self.mc_trials} trials/point — |Eq.24 - MC|]"
            )
            lines.append(header)
            for i, p0 in enumerate(self.p0_values):
                lines.append(
                    f"  {p0:>8.2f} "
                    + "".join(
                        f"{gap[i, j]:>8.3f}" for j in range(len(self.beta0_values))
                    )
                )
            lines.append(f"  max gap over the grid: {self.max_exceed_gap():.4f}")
        return "\n".join(lines)


def _grid_cell(point: Tuple[float, float]) -> Tuple[float, float]:
    """Both strategies' slower-branch crossing times at one (p0, beta0) point.

    Module-level so the grid can be fanned out to a process pool.
    """
    p0, beta0 = point
    slashing = max(
        threshold_epoch_slashing(p0, beta0),
        threshold_epoch_slashing(1.0 - p0, beta0),
    )
    non_slashing = max(
        threshold_epoch_non_slashing(p0, beta0),
        threshold_epoch_non_slashing(1.0 - p0, beta0),
    )
    return slashing, non_slashing


def _empirical_exceed_cell(
    point: Tuple[int, float, float],
    n_trials: int,
    horizon: int,
    n_honest: int,
    seed: int,
    batch: Optional[int],
    backend: str,
) -> Tuple[float, float]:
    """Closed-form and empirical exceed probability at one grid point.

    Module-level so the grid can be fanned out to a process pool; each
    point draws from its own deterministic seed (``seed + point index``),
    so the grid is reproducible whatever the parallelism.
    """
    index, p0, beta0 = point
    closed_form = BouncingAttackModel(
        beta0=beta0, p0=p0
    ).exceed_threshold_probability(float(horizon), both_branches=True)
    monte_carlo = BouncingMonteCarlo(
        beta0=beta0,
        p0=p0,
        n_honest=n_honest,
        enforce_stopping=False,
        seed=seed + index,
        backend=backend,
    )
    result = monte_carlo.run(n_trials=n_trials, horizon=horizon, batch=batch)
    return closed_form, result.exceed_probability(horizon)


class _ExceedCellWorker:
    """Partial application of the workload knobs (picklable for the pool)."""

    def __init__(
        self,
        n_trials: int,
        horizon: int,
        n_honest: int,
        seed: int,
        batch: Optional[int],
        backend: str,
    ) -> None:
        self.n_trials = n_trials
        self.horizon = horizon
        self.n_honest = n_honest
        self.seed = seed
        self.batch = batch
        self.backend = backend

    def __call__(self, point: Tuple[int, float, float]) -> Tuple[float, float]:
        return _empirical_exceed_cell(
            point,
            self.n_trials,
            self.horizon,
            self.n_honest,
            self.seed,
            self.batch,
            self.backend,
        )


def run(
    p0_values: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
    beta0_values: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.33),
    jobs: Optional[int] = None,
    n_trials: Optional[int] = None,
    horizon: int = 4000,
    n_honest: int = 256,
    seed: int = 0,
    batch: Optional[int] = None,
    backend: str = "numpy",
) -> SweepGridResult:
    """Evaluate both strategies' slower-branch crossing times over the grid.

    ``jobs`` fans the (deterministic) grid points out to a process pool;
    the result never depends on the parallelism level.

    ``n_trials`` switches on the Monte-Carlo validation layer: every grid
    point additionally runs the trial-batched bouncing-attack simulation
    for that many trials (``horizon``, ``n_honest``, ``batch`` and
    ``backend`` set the workload) and the result carries the per-point
    closed-form-vs-empirical exceed-probability gap.
    """
    points = [(p0, beta0) for p0 in p0_values for beta0 in beta0_values]
    cells = parallel_map(_grid_cell, points, jobs=jobs)
    grids = np.array(cells).reshape(len(p0_values), len(beta0_values), 2)
    slashing = grids[:, :, 0].copy()
    non_slashing = grids[:, :, 1].copy()

    exceed_closed_form = None
    exceed_empirical = None
    if n_trials is not None:
        if n_trials <= 0:
            raise ValueError("n_trials must be positive")
        indexed = [
            (index, p0, beta0) for index, (p0, beta0) in enumerate(points)
        ]
        worker = _ExceedCellWorker(n_trials, horizon, n_honest, seed, batch, backend)
        exceed_cells = parallel_map(worker, indexed, jobs=jobs)
        exceed = np.array(exceed_cells).reshape(
            len(p0_values), len(beta0_values), 2
        )
        exceed_closed_form = exceed[:, :, 0].copy()
        exceed_empirical = exceed[:, :, 1].copy()

    return SweepGridResult(
        p0_values=list(p0_values),
        beta0_values=list(beta0_values),
        slashing_grid=slashing,
        non_slashing_grid=non_slashing,
        mc_horizon=horizon if n_trials is not None else None,
        mc_trials=n_trials,
        exceed_closed_form=exceed_closed_form,
        exceed_empirical=exceed_empirical,
    )
