"""Figure 10: probability that the Byzantine proportion exceeds 1/3 over time.

Equation 24 evaluated for beta0 in {1/3, 0.3333, 0.333, 0.33, 0.329, 0.3}
with p0 = 0.5 over epochs 0..8000.  The curve for beta0 = 1/3 sits at 0.5;
all curves rise abruptly shortly before the Byzantine (semi-active)
ejection around epoch 7653.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro import constants
from repro.analysis.bouncing import BouncingAttackModel

PAPER_BETA0_VALUES = (1.0 / 3.0, 0.3333, 0.333, 0.33, 0.329, 0.3)


@dataclass
class Figure10Result:
    """Exceed-probability curves per beta0."""

    p0: float
    epochs: Sequence[int]
    beta0_values: Sequence[float]
    #: beta0 -> probability series (single branch, Equation 24).
    series: Dict[float, List[float]]
    byzantine_ejection_epoch: float

    def rows(self) -> List[Dict[str, float]]:
        """One row per beta0 with probabilities at a few reference epochs."""
        references = [1000, 2000, 4000, 7000]
        rows = []
        for beta0 in self.beta0_values:
            row: Dict[str, float] = {"beta0": beta0}
            for reference in references:
                if reference in self.epochs:
                    index = list(self.epochs).index(reference)
                    row[f"probability_at_{reference}"] = self.series[beta0][index]
            rows.append(row)
        return rows

    def format_text(self) -> str:
        lines = [
            "Figure 10 — probability that the Byzantine proportion exceeds 1/3 (p0=0.5)",
            f"  Byzantine ejection epoch ~ {self.byzantine_ejection_epoch:.0f} "
            f"(paper: {constants.PAPER_BOUNCING_BYZANTINE_EJECTION_EPOCH})",
        ]
        for row in self.rows():
            probabilities = ", ".join(
                f"t={key.split('_')[-1]}: {value:.3f}"
                for key, value in row.items()
                if key.startswith("probability")
            )
            lines.append(f"  beta0={row['beta0']:.4f}  {probabilities}")
        return "\n".join(lines)


def run(
    beta0_values: Sequence[float] = PAPER_BETA0_VALUES,
    p0: float = 0.5,
    max_epoch: int = 8000,
    step: int = 50,
) -> Figure10Result:
    """Reproduce the Figure-10 curves."""
    epochs = list(range(0, max_epoch + 1, step))
    series: Dict[float, List[float]] = {}
    ejection = 0.0
    for beta0 in beta0_values:
        model = BouncingAttackModel(beta0=beta0, p0=p0)
        ejection = model.byzantine_ejection_epoch()
        series[beta0] = model.exceed_probability_series(epochs)
    return Figure10Result(
        p0=p0,
        epochs=epochs,
        beta0_values=list(beta0_values),
        series=series,
        byzantine_ejection_epoch=ejection,
    )
