"""Section 5.1: the GST upper bound for Safety with only honest validators.

With an even split (p0 = 0.5) both branches regain the supermajority when
the inactive validators are ejected (epoch 4685 in the paper) and finalize
one epoch later (4686): any partition lasting longer than that loses
Safety even without a single Byzantine validator.  This experiment computes
the bound analytically (Equation 6) and cross-checks it with the discrete
aggregate simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import constants
from repro.analysis.finalization_time import (
    ByzantineStrategy,
    conflicting_finalization_time,
    threshold_epoch_honest_only,
)
from repro.analysis.partition_scenarios import run_all_honest_scenario

#: The paper's headline bound: conflicting finalization at epoch 4686.
PAPER_SAFETY_BOUND_EPOCHS = 4686


@dataclass
class SafetyBoundResult:
    """Analytical and simulated GST upper bound for Safety."""

    p0_values: Sequence[float]
    #: p0 -> analytical threshold epoch of the slower branch (Equation 6).
    analytical_threshold: Dict[float, float]
    #: p0 -> analytical conflicting-finalization epoch (threshold + 1).
    analytical_finalization: Dict[float, float]
    #: p0 -> simulated conflicting-finalization epoch.
    simulated_finalization: Dict[float, Optional[int]]
    paper_bound: int = PAPER_SAFETY_BOUND_EPOCHS

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "p0": p0,
                "threshold_epoch": self.analytical_threshold[p0],
                "finalization_epoch_analytical": self.analytical_finalization[p0],
                "finalization_epoch_simulated": self.simulated_finalization.get(p0),
            }
            for p0 in self.p0_values
        ]

    def format_text(self) -> str:
        lines = [
            "Section 5.1 — GST upper bound for Safety (honest validators only)",
            f"  paper bound: {self.paper_bound} epochs (~3 weeks)",
        ]
        for row in self.rows():
            lines.append(
                f"  p0={row['p0']:<4} slower branch crosses 2/3 at "
                f"{row['threshold_epoch']:.0f}, finalizes at "
                f"{row['finalization_epoch_analytical']:.0f} "
                f"(simulated: {row['finalization_epoch_simulated']})"
            )
        return "\n".join(lines)

    def worst_case_bound(self) -> float:
        """The minimum over p0 of the conflicting-finalization epoch.

        The fastest way to lose Safety is the even split; no configuration of
        honest validators can lose it earlier.
        """
        return min(self.analytical_finalization.values())


def run(
    p0_values: Sequence[float] = (0.5, 0.4, 0.3),
    include_simulation: bool = True,
    simulation_max_epochs: int = 6000,
) -> SafetyBoundResult:
    """Compute the Safety upper bound for several honest splits."""
    analytical_threshold: Dict[float, float] = {}
    analytical_finalization: Dict[float, float] = {}
    simulated: Dict[float, Optional[int]] = {}
    for p0 in p0_values:
        result = conflicting_finalization_time(ByzantineStrategy.NONE, p0, 0.0)
        analytical_threshold[p0] = result.threshold_epoch
        analytical_finalization[p0] = result.finalization_epoch
        if include_simulation:
            outcome = run_all_honest_scenario(p0=p0, max_epochs=simulation_max_epochs)
            simulated[p0] = outcome.conflicting_finalization_epoch
    return SafetyBoundResult(
        p0_values=list(p0_values),
        analytical_threshold=analytical_threshold,
        analytical_finalization=analytical_finalization,
        simulated_finalization=simulated,
    )
