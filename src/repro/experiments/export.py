"""Export experiment results to JSON and CSV files.

Every experiment result exposes ``rows()`` (a list of flat dictionaries);
this module serialises those rows, plus a small metadata header, so that
the reproduction's numbers can be archived or diffed against future runs.
"""

from __future__ import annotations

import csv
import dataclasses
import json
import math
import pathlib
from datetime import datetime, timezone
from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments import registry


def _jsonable(value: object) -> object:
    """Coerce a cell value into something JSON-serialisable."""
    if isinstance(value, float):
        if math.isnan(value):
            return None
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonable(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def result_to_record(experiment_id: str, result: object) -> Dict[str, object]:
    """Build the exportable record for one experiment result."""
    rows_method = getattr(result, "rows", None)
    rows = rows_method() if callable(rows_method) else []
    text_method = getattr(result, "format_text", None)
    return {
        "experiment": experiment_id,
        "description": registry.get(experiment_id).description,
        "generated_at": datetime.now(timezone.utc).isoformat(),
        "rows": [_jsonable(row) for row in rows],
        "report": str(text_method()) if callable(text_method) else "",
    }


def export_json(experiment_id: str, result: object, output_dir: pathlib.Path) -> pathlib.Path:
    """Write the experiment record as ``<id>.json``; returns the path."""
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"{experiment_id}.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(result_to_record(experiment_id, result), handle, indent=2)
        handle.write("\n")
    return path


def export_csv(experiment_id: str, result: object, output_dir: pathlib.Path) -> Optional[pathlib.Path]:
    """Write the experiment rows as ``<id>.csv``; returns the path (None if no rows)."""
    rows_method = getattr(result, "rows", None)
    rows = rows_method() if callable(rows_method) else []
    if not rows:
        return None
    output_dir.mkdir(parents=True, exist_ok=True)
    path = output_dir / f"{experiment_id}.csv"
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            writer.writerow({key: _csv_cell(row.get(key)) for key in fieldnames})
    return path


def _csv_cell(value: object) -> object:
    if isinstance(value, float) and math.isnan(value):
        return ""
    if value is None:
        return ""
    if isinstance(value, (dict, list, tuple)):
        return json.dumps(_jsonable(value))
    return value


def export_experiments(
    experiment_ids: Iterable[str],
    output_dir: pathlib.Path,
    formats: Sequence[str] = ("json", "csv"),
) -> List[pathlib.Path]:
    """Run and export the given experiments; returns the written paths."""
    written: List[pathlib.Path] = []
    for experiment_id in experiment_ids:
        result = registry.run(experiment_id)
        if "json" in formats:
            written.append(export_json(experiment_id, result, output_dir))
        if "csv" in formats:
            path = export_csv(experiment_id, result, output_dir)
            if path is not None:
                written.append(path)
    return written
