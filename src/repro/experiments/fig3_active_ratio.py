"""Figure 3: evolution of the active-validator stake ratio per initial split p0.

The ratio follows Equation 5 until either the 2/3 supermajority is regained
or the inactive validators are ejected at epoch 4685, at which point the
ratio jumps to 1.  The paper plots p0 in {0.2, 0.3, 0.4, 0.5, 0.6}.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import constants
from repro.analysis.finalization_time import threshold_epoch_honest_only
from repro.leak.dynamics import BranchSimulation
from repro.leak.groups import GroupSpec, always_active, never_active
from repro.leak.ratios import active_ratio_honest_only

PAPER_P0_VALUES = (0.6, 0.5, 0.4, 0.3, 0.2)


@dataclass
class Figure3Result:
    """Analytical and simulated active-ratio series per p0."""

    epochs: Sequence[int]
    p0_values: Sequence[float]
    #: p0 -> analytical ratio series (Equation 5, with the ejection jump).
    analytical_series: Dict[float, List[float]]
    #: p0 -> discrete aggregate-simulation ratio series.
    simulated_series: Dict[float, List[float]]
    #: p0 -> epoch at which 2/3 is regained (analytical, Equation 6).
    threshold_epochs: Dict[float, float]
    ejection_epoch: float = float(constants.PAPER_INACTIVE_EJECTION_EPOCH)

    def rows(self) -> List[Dict[str, object]]:
        """One row per p0 with the 2/3-crossing epoch."""
        return [
            {
                "p0": p0,
                "threshold_epoch_analytical": self.threshold_epochs[p0],
                "final_ratio_analytical": self.analytical_series[p0][-1],
                "final_ratio_simulated": self.simulated_series[p0][-1],
            }
            for p0 in self.p0_values
        ]

    def format_text(self) -> str:
        lines = ["Figure 3 — ratio of active validators during the leak"]
        for row in self.rows():
            lines.append(
                f"  p0={row['p0']:<4} regains 2/3 at epoch "
                f"{row['threshold_epoch_analytical']:.0f} "
                f"(final ratio: analytical={row['final_ratio_analytical']:.3f}, "
                f"simulated={row['final_ratio_simulated']:.3f})"
            )
        return "\n".join(lines)


def _analytical_ratio_with_ejection(t: float, p0: float, ejection_epoch: float) -> float:
    """Equation 5, with the ratio jumping to 1 once inactive validators are ejected."""
    if t >= ejection_epoch:
        return 1.0
    return active_ratio_honest_only(t, p0)


def _simulated_series(p0: float, max_epoch: int, step: int) -> List[float]:
    """Discrete aggregate simulation of one branch with honest split p0."""
    branch = BranchSimulation(
        name="branch-1",
        groups=(
            GroupSpec(name="active", weight=p0, pattern=always_active),
            GroupSpec(name="inactive", weight=1.0 - p0, pattern=never_active),
        ),
    )
    result = branch.run(max_epoch + 1)
    series = result.active_ratio_series()
    return [series[min(epoch, len(series) - 1)] for epoch in range(0, max_epoch + 1, step)]


def run(
    p0_values: Sequence[float] = PAPER_P0_VALUES,
    max_epoch: int = 8000,
    step: int = 20,
    include_simulation: bool = True,
) -> Figure3Result:
    """Reproduce the Figure-3 series for the requested p0 values."""
    ejection = float(constants.PAPER_INACTIVE_EJECTION_EPOCH)
    epochs = list(range(0, max_epoch + 1, step))
    analytical = {
        p0: [_analytical_ratio_with_ejection(float(t), p0, ejection) for t in epochs]
        for p0 in p0_values
    }
    simulated = {
        p0: (_simulated_series(p0, max_epoch, step) if include_simulation else [])
        for p0 in p0_values
    }
    thresholds = {p0: threshold_epoch_honest_only(p0) for p0 in p0_values}
    return Figure3Result(
        epochs=epochs,
        p0_values=list(p0_values),
        analytical_series=analytical,
        simulated_series=simulated,
        threshold_epochs=thresholds,
        ejection_epoch=ejection,
    )
