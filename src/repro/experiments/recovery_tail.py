"""Ablation: the post-leak recovery tail.

Quantifies the paper's Figure-3 remark that the active-stake ratio keeps
rising for a while after the 2/3 supermajority is regained, because the
inactivity scores accumulated during the leak take time to return to zero.
For every honest split p0 of Figure 3, the experiment reports the leak
duration (Equation 6), the inactivity score with which the ex-inactive
validators exit the leak, and the number of epochs of residual penalties.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.finalization_time import threshold_epoch_honest_only
from repro.leak.recovery import leak_exit_score, recovery_tail_epochs, simulate_recovery
from repro.leak.stake import inactive_stake


@dataclass
class RecoveryTailResult:
    """Recovery-tail lengths per honest split."""

    p0_values: Sequence[float]
    leak_durations: Dict[float, float]
    exit_scores: Dict[float, float]
    tail_epochs: Dict[float, int]
    exit_stakes: Dict[float, float]

    def rows(self) -> List[Dict[str, float]]:
        return [
            {
                "p0": p0,
                "leak_duration_epochs": self.leak_durations[p0],
                "exit_inactivity_score": self.exit_scores[p0],
                "recovery_tail_epochs": float(self.tail_epochs[p0]),
                "stake_at_leak_exit": self.exit_stakes[p0],
            }
            for p0 in self.p0_values
        ]

    def format_text(self) -> str:
        lines = ["Post-leak recovery tail (Figure 3 discussion)"]
        for row in self.rows():
            lines.append(
                f"  p0={row['p0']:<5} leak lasts {row['leak_duration_epochs']:.0f} epochs, "
                f"ex-inactive validators exit with score {row['exit_inactivity_score']:.0f} "
                f"and {row['stake_at_leak_exit']:.2f} ETH; penalties persist for another "
                f"{row['recovery_tail_epochs']:.0f} epochs"
            )
        return "\n".join(lines)


def run(p0_values: Sequence[float] = (0.6, 0.55, 0.62, 0.65)) -> RecoveryTailResult:
    """Compute the recovery tail for splits that regain finality before the ejection."""
    leak_durations: Dict[float, float] = {}
    exit_scores: Dict[float, float] = {}
    tail_epochs: Dict[float, int] = {}
    exit_stakes: Dict[float, float] = {}
    for p0 in p0_values:
        duration = threshold_epoch_honest_only(p0)
        leak_durations[p0] = duration
        exit_scores[p0] = leak_exit_score(int(duration))
        tail_epochs[p0] = recovery_tail_epochs(int(duration))
        exit_stakes[p0] = inactive_stake(duration)
    return RecoveryTailResult(
        p0_values=list(p0_values),
        leak_durations=leak_durations,
        exit_scores=exit_scores,
        tail_epochs=tail_epochs,
        exit_stakes=exit_stakes,
    )
