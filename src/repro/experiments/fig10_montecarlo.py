"""Monte-Carlo validation of the Figure-10 closed form.

Runs the per-validator discrete bouncing-attack simulation (no Gaussian
approximation, score floor and ejection included) and compares the
empirical probability of exceeding the one-third threshold with the
Equation-24 closed form, for several initial Byzantine proportions.
The attack-stopping rule is disabled so the comparison targets the same
conditional quantity the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.bouncing import BouncingAttackModel
from repro.analysis.montecarlo import BouncingMonteCarlo


@dataclass
class Figure10MonteCarloResult:
    """Closed-form vs empirical exceed probabilities."""

    p0: float
    horizon: int
    n_trials: int
    n_honest: int
    beta0_values: Sequence[float]
    #: beta0 -> closed-form P[beta > 1/3] at the horizon (single branch).
    closed_form: Dict[float, float]
    #: beta0 -> closed-form probability doubled for the two branches.
    closed_form_both: Dict[float, float]
    #: beta0 -> empirical P[beta > 1/3 on either branch] at the horizon.
    empirical: Dict[float, float]

    def rows(self) -> List[Dict[str, float]]:
        return [
            {
                "beta0": beta0,
                "closed_form_single_branch": self.closed_form[beta0],
                "closed_form_both_branches": self.closed_form_both[beta0],
                "empirical_either_branch": self.empirical[beta0],
            }
            for beta0 in self.beta0_values
        ]

    def format_text(self) -> str:
        lines = [
            "Figure 10 (validation) — Monte-Carlo vs Equation 24 "
            f"(t={self.horizon}, {self.n_trials} trials x {self.n_honest} honest validators)",
            f"  {'beta0':>8}  {'Eq.24 (1 branch)':>16}  {'Eq.24 (2 branches)':>18}  {'Monte-Carlo':>12}",
        ]
        for row in self.rows():
            lines.append(
                f"  {row['beta0']:>8.4f}  {row['closed_form_single_branch']:>16.3f}  "
                f"{row['closed_form_both_branches']:>18.3f}  {row['empirical_either_branch']:>12.3f}"
            )
        return "\n".join(lines)

    def max_gap_to_both_branches_form(self) -> float:
        """Largest absolute gap between the doubled closed form and the empirical value."""
        return max(
            abs(self.closed_form_both[beta0] - self.empirical[beta0])
            for beta0 in self.beta0_values
        )


def run(
    beta0_values: Sequence[float] = (1.0 / 3.0, 0.333, 0.33),
    p0: float = 0.5,
    horizon: int = 4000,
    n_trials: int = 40,
    n_honest: int = 200,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> Figure10MonteCarloResult:
    """Compare Equation 24 with the discrete Monte-Carlo simulation.

    ``jobs`` parallelizes the trial chunks of each Monte-Carlo run
    (``None``/1 serial, <=0 all cores); seeded results are identical at any
    parallelism level.
    """
    closed_form: Dict[float, float] = {}
    closed_form_both: Dict[float, float] = {}
    empirical: Dict[float, float] = {}
    for beta0 in beta0_values:
        model = BouncingAttackModel(beta0=beta0, p0=p0)
        closed_form[beta0] = model.exceed_threshold_probability(float(horizon))
        closed_form_both[beta0] = model.exceed_threshold_probability(
            float(horizon), both_branches=True
        )
        monte_carlo = BouncingMonteCarlo(
            beta0=beta0,
            p0=p0,
            n_honest=n_honest,
            enforce_stopping=False,
            seed=seed,
        )
        result = monte_carlo.run(
            n_trials=n_trials, horizon=horizon, record_epochs=[horizon], jobs=jobs
        )
        empirical[beta0] = result.exceed_probability(horizon)
    return Figure10MonteCarloResult(
        p0=p0,
        horizon=horizon,
        n_trials=n_trials,
        n_honest=n_honest,
        beta0_values=list(beta0_values),
        closed_form=closed_form,
        closed_form_both=closed_form_both,
        empirical=empirical,
    )
