"""Monte-Carlo validation of the Figure-10 closed form, as full curves.

Runs the per-validator discrete bouncing-attack simulation (no Gaussian
approximation, score floor and ejection included) and compares the
empirical probability of exceeding the one-third threshold with the
Equation-24 closed form, for several initial Byzantine proportions.
The attack-stopping rule is disabled so the comparison targets the same
conditional quantity the paper plots.

Unlike the paper's single-point validation, the default run records the
exceed probability at many epochs (``record_every``) over 10^2–10^3 trials,
producing the full Figure-10 exceed-probability *curve* per ``beta0``.
The CLI exposes the workload knobs as ``--trials`` and ``--record-every``
(plus ``--jobs``/``--seed`` from the shared runner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.analysis.bouncing import BouncingAttackModel
from repro.analysis.montecarlo import BouncingMonteCarlo


def plan_record_epochs(horizon: int, record_every: Optional[int]) -> List[int]:
    """Epochs at which the Monte-Carlo runs record the Byzantine proportion.

    Multiples of ``record_every`` up to ``horizon``, always including the
    horizon itself; ``None`` reproduces the single-point validation.
    """
    if record_every is None:
        return [horizon]
    if record_every <= 0:
        raise ValueError("record_every must be positive")
    epochs = list(range(record_every, horizon + 1, record_every))
    if not epochs or epochs[-1] != horizon:
        epochs.append(horizon)
    return epochs


@dataclass
class Figure10MonteCarloResult:
    """Closed-form vs empirical exceed-probability curves."""

    p0: float
    horizon: int
    n_trials: int
    n_honest: int
    beta0_values: Sequence[float]
    #: Epochs at which the empirical probability was recorded.
    record_epochs: Sequence[int]
    #: beta0 -> epoch -> closed-form P[beta > 1/3] (single branch).
    closed_form_series: Dict[float, Dict[int, float]]
    #: beta0 -> epoch -> closed-form probability doubled for the two branches.
    closed_form_both_series: Dict[float, Dict[int, float]]
    #: beta0 -> epoch -> empirical P[beta > 1/3 on either branch].
    empirical_series: Dict[float, Dict[int, float]]

    # -- horizon-point views (the paper's validation numbers) ----------
    @property
    def closed_form(self) -> Dict[float, float]:
        """beta0 -> closed-form probability at the horizon (single branch)."""
        return {b: series[self.horizon] for b, series in self.closed_form_series.items()}

    @property
    def closed_form_both(self) -> Dict[float, float]:
        """beta0 -> two-branch closed-form probability at the horizon."""
        return {
            b: series[self.horizon]
            for b, series in self.closed_form_both_series.items()
        }

    @property
    def empirical(self) -> Dict[float, float]:
        """beta0 -> empirical either-branch probability at the horizon."""
        return {b: series[self.horizon] for b, series in self.empirical_series.items()}

    def rows(self) -> List[Dict[str, float]]:
        """One row per (beta0, record epoch) — the exported curve."""
        return [
            {
                "beta0": beta0,
                "epoch": epoch,
                "closed_form_single_branch": self.closed_form_series[beta0][epoch],
                "closed_form_both_branches": self.closed_form_both_series[beta0][epoch],
                "empirical_either_branch": self.empirical_series[beta0][epoch],
            }
            for beta0 in self.beta0_values
            for epoch in self.record_epochs
        ]

    def horizon_rows(self) -> List[Dict[str, float]]:
        """One row per beta0, evaluated at the horizon (validation summary)."""
        return [
            {
                "beta0": beta0,
                "closed_form_single_branch": self.closed_form[beta0],
                "closed_form_both_branches": self.closed_form_both[beta0],
                "empirical_either_branch": self.empirical[beta0],
            }
            for beta0 in self.beta0_values
        ]

    def format_text(self) -> str:
        lines = [
            "Figure 10 (validation) — Monte-Carlo vs Equation 24 "
            f"(t={self.horizon}, {self.n_trials} trials x {self.n_honest} honest validators)",
            f"  {'beta0':>8}  {'Eq.24 (1 branch)':>16}  {'Eq.24 (2 branches)':>18}  {'Monte-Carlo':>12}",
        ]
        for row in self.horizon_rows():
            lines.append(
                f"  {row['beta0']:>8.4f}  {row['closed_form_single_branch']:>16.3f}  "
                f"{row['closed_form_both_branches']:>18.3f}  {row['empirical_either_branch']:>12.3f}"
            )
        if len(self.record_epochs) > 1:
            lines.append(
                "  exceed-probability curves (empirical either-branch per epoch):"
            )
            for beta0 in self.beta0_values:
                points = "  ".join(
                    f"t={epoch}: {self.empirical_series[beta0][epoch]:.3f}"
                    for epoch in self.record_epochs
                )
                lines.append(f"    beta0={beta0:.4f}  {points}")
        return "\n".join(lines)

    def max_gap_to_both_branches_form(self) -> float:
        """Largest absolute gap between the doubled closed form and the empirical value."""
        return max(
            abs(self.closed_form_both[beta0] - self.empirical[beta0])
            for beta0 in self.beta0_values
        )


def run(
    beta0_values: Sequence[float] = (1.0 / 3.0, 0.333, 0.33),
    p0: float = 0.5,
    horizon: int = 4000,
    n_trials: int = 512,
    n_honest: int = 256,
    seed: int = 0,
    jobs: Optional[int] = None,
    record_every: Optional[int] = 500,
    batch: Optional[int] = None,
    backend: str = "numpy",
) -> Figure10MonteCarloResult:
    """Compare Equation 24 with the discrete Monte-Carlo simulation.

    ``record_every`` spaces the record epochs of the exceed-probability
    curve (``None`` records only the horizon).  ``jobs`` parallelizes the
    trial chunks of each Monte-Carlo run (``None``/1 serial, <=0 all
    cores), ``batch`` sets the trial-batched kernel width (``None`` = a
    cache-budgeted default) and ``backend`` selects the stake-dynamics
    kernel (``numpy``, ``python``, or ``numba`` when installed); seeded
    results are identical at any parallelism or batch level.
    """
    record_epochs = plan_record_epochs(horizon, record_every)
    closed_form_series: Dict[float, Dict[int, float]] = {}
    closed_form_both_series: Dict[float, Dict[int, float]] = {}
    empirical_series: Dict[float, Dict[int, float]] = {}
    for beta0 in beta0_values:
        model = BouncingAttackModel(beta0=beta0, p0=p0)
        closed_form_series[beta0] = {
            epoch: model.exceed_threshold_probability(float(epoch))
            for epoch in record_epochs
        }
        closed_form_both_series[beta0] = {
            epoch: model.exceed_threshold_probability(float(epoch), both_branches=True)
            for epoch in record_epochs
        }
        monte_carlo = BouncingMonteCarlo(
            beta0=beta0,
            p0=p0,
            n_honest=n_honest,
            enforce_stopping=False,
            seed=seed,
            backend=backend,
        )
        result = monte_carlo.run(
            n_trials=n_trials,
            horizon=horizon,
            record_epochs=record_epochs,
            jobs=jobs,
            batch=batch,
        )
        empirical_series[beta0] = result.exceed_probability_curve()
    return Figure10MonteCarloResult(
        p0=p0,
        horizon=horizon,
        n_trials=n_trials,
        n_honest=n_honest,
        beta0_values=list(beta0_values),
        record_epochs=record_epochs,
        closed_form_series=closed_form_series,
        closed_form_both_series=closed_form_both_series,
        empirical_series=empirical_series,
    )
