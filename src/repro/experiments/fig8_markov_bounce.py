"""Figure 8: the Markov model of honest validators bouncing between branches.

Figure 8 illustrates the per-epoch branch occupancy of an honest validator
during the probabilistic bouncing attack: each epoch it lands on branch A
with probability p0 and on branch B with probability 1-p0, independently of
the past.  This experiment reproduces the quantities the figure encodes —
the transition matrix, the stationary occupancy, the two-epoch path
probabilities, and the induced inactivity-score increments of Equation 15 —
and cross-checks the latter against the exact discrete walk distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.bouncing import MarkovBounceModel
from repro.analysis.randomwalk import (
    exact_score_distribution,
    two_epoch_increment_distribution,
)


@dataclass
class Figure8Result:
    """Markov-bounce quantities per p0."""

    p0_values: Sequence[float]
    #: p0 -> two-epoch path probabilities {"AA": ..., "AB": ..., ...}.
    path_probabilities: Dict[float, Dict[str, float]]
    #: p0 -> Equation-15 score-increment distribution {8: ..., 3: ..., -2: ...}.
    increment_distributions: Dict[float, Dict[int, float]]
    #: p0 -> mean score increment per two epochs (should be +3 for every p0).
    mean_two_epoch_increment: Dict[float, float]
    #: p0 -> exact mean score after 2 epochs from the discrete walk (no clamp).
    exact_two_epoch_mean: Dict[float, float]

    def rows(self) -> List[Dict[str, float]]:
        rows = []
        for p0 in self.p0_values:
            row: Dict[str, float] = {"p0": p0}
            row.update(
                {f"path_{path}": probability for path, probability in self.path_probabilities[p0].items()}
            )
            row.update(
                {
                    f"increment_{step:+d}": probability
                    for step, probability in sorted(self.increment_distributions[p0].items())
                }
            )
            row["mean_increment_per_two_epochs"] = self.mean_two_epoch_increment[p0]
            row["exact_walk_mean_after_two_epochs"] = self.exact_two_epoch_mean[p0]
            rows.append(row)
        return rows

    def format_text(self) -> str:
        lines = ["Figure 8 — Markov bounce model of honest validators"]
        for row in self.rows():
            lines.append(
                f"  p0={row['p0']:<5} paths AA/AB/BA/BB = "
                f"{row['path_AA']:.3f}/{row['path_AB']:.3f}/{row['path_BA']:.3f}/{row['path_BB']:.3f}  "
                f"score increments +8/+3/-2 = "
                f"{row['increment_+8']:.3f}/{row['increment_+3']:.3f}/{row['increment_-2']:.3f}  "
                f"(mean {row['mean_increment_per_two_epochs']:.2f} per 2 epochs)"
            )
        return "\n".join(lines)


def run(p0_values: Sequence[float] = (0.5, 0.55, 0.6, 0.66)) -> Figure8Result:
    """Reproduce the Figure-8 quantities for several honest splits."""
    paths: Dict[float, Dict[str, float]] = {}
    increments: Dict[float, Dict[int, float]] = {}
    means: Dict[float, float] = {}
    exact_means: Dict[float, float] = {}
    for p0 in p0_values:
        model = MarkovBounceModel(p0=p0)
        paths[p0] = model.two_epoch_path_probabilities()
        increments[p0] = two_epoch_increment_distribution(p0)
        means[p0] = sum(step * probability for step, probability in increments[p0].items())
        exact_means[p0] = exact_score_distribution(2, p0, clamp_at_zero=False).mean()
    return Figure8Result(
        p0_values=list(p0_values),
        path_probabilities=paths,
        increment_distributions=increments,
        mean_two_epoch_increment=means,
        exact_two_epoch_mean=exact_means,
    )
