"""Section 5.3 side computation: how long can the bouncing attack last?

The attack continues as long as a Byzantine proposer is drawn in the first
``j`` slots of every epoch, hence lasts ``k`` epochs with probability
``(1 - (1 - beta0)^j)^k``.  The paper evaluates the probability of reaching
epoch 7000 with beta0 = 1/3 and j = 8 and finds ~1.01e-121.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro import constants
from repro.analysis.bouncing import (
    attack_duration_probability,
    expected_attack_duration,
    log10_attack_duration_probability,
)

#: The paper's headline estimate: log10 of the probability of lasting 7000
#: epochs with beta0 = 1/3 (1.01e-121).
PAPER_LOG10_AT_7000 = -121.0


@dataclass
class BouncingDurationResult:
    """Attack-duration probabilities for a set of beta0 values and horizons."""

    window_slots: int
    beta0_values: Sequence[float]
    horizons: Sequence[int]
    #: (beta0, horizon) -> log10 probability of the attack lasting that long.
    log10_probabilities: Dict[float, Dict[int, float]]
    expected_durations: Dict[float, float]

    def rows(self) -> List[Dict[str, float]]:
        """One row per beta0 with the log10 probabilities per horizon."""
        rows = []
        for beta0 in self.beta0_values:
            row: Dict[str, float] = {
                "beta0": beta0,
                "expected_duration_epochs": self.expected_durations[beta0],
            }
            for horizon in self.horizons:
                row[f"log10_p_at_{horizon}"] = self.log10_probabilities[beta0][horizon]
            rows.append(row)
        return rows

    def format_text(self) -> str:
        lines = [
            f"Bouncing-attack duration probabilities (j={self.window_slots})",
        ]
        for row in self.rows():
            horizons = ", ".join(
                f"k={key.split('_')[-1]}: 1e{value:.1f}"
                for key, value in row.items()
                if key.startswith("log10")
            )
            lines.append(
                f"  beta0={row['beta0']:.4f}  expected={row['expected_duration_epochs']:.1f} epochs  {horizons}"
            )
        return "\n".join(lines)


def run(
    beta0_values: Sequence[float] = (1.0 / 3.0, 0.3, 0.25, 0.2, 0.1),
    horizons: Sequence[int] = (10, 100, 1000, 7000),
    window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS,
) -> BouncingDurationResult:
    """Compute attack-duration probabilities for the requested parameters."""
    log10_probabilities = {
        beta0: {
            horizon: log10_attack_duration_probability(beta0, horizon, window_slots)
            for horizon in horizons
        }
        for beta0 in beta0_values
    }
    expected = {
        beta0: expected_attack_duration(beta0, window_slots) for beta0 in beta0_values
    }
    return BouncingDurationResult(
        window_slots=window_slots,
        beta0_values=list(beta0_values),
        horizons=list(horizons),
        log10_probabilities=log10_probabilities,
        expected_durations=expected,
    )
