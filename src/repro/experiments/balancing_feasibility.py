"""Feasibility of the Gasper balancing attack's role assignment.

The balancing attack (see :class:`repro.agents.byzantine.SwayerByzantine`)
needs the adversary to fill specific *roles* from the epoch's random duty
assignment: the proposer of the split slot must be adversarial, and every
later slot's committee needs enough adversarial members to act as swayers.
Whether a random committee shuffle admits such an assignment is exactly
the rejection-sampling question the scenario builder answers for one seed;
this experiment sweeps it as a probability over (committees per epoch C,
validators N, adversarial count F).

Each trial draws one uniformly random committee assignment (a seeded
shuffle split into C equal committees, the slot-k proposer being the first
member of committee k) and checks the roles; the feasibility probability
is the fraction of feasible trials.  Trials run through the shared seeded
executor (:func:`repro.core.trials.run_trials`), so results are identical
at any ``--jobs`` level and reproducible from ``--seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.trials import run_trials


def roles_feasible(
    assignment: np.ndarray, committee_size: int, n_adversarial: int, swayers_per_slot: int
) -> bool:
    """Can the adversary staff the balancing attack from this assignment?

    ``assignment`` is a permutation of ``range(N)``; committee ``k`` is the
    ``k``-th block of ``committee_size`` entries and its first entry
    proposes slot ``k``.  Validators with index ``< n_adversarial`` are
    adversarial (any fixed set works, by symmetry of the shuffle).  The
    attack needs an adversarial split-slot (slot-0) proposer plus at least
    ``swayers_per_slot`` adversarial members in every later committee.
    """
    if assignment[0] >= n_adversarial:
        return False
    n_slots = assignment.shape[0] // committee_size
    adversarial = assignment < n_adversarial
    for slot in range(1, n_slots):
        committee = adversarial[slot * committee_size : (slot + 1) * committee_size]
        if int(committee.sum()) < swayers_per_slot:
            return False
    return True


def _feasibility_trial(
    index: int,
    rng: np.random.Generator,
    n_validators: int,
    n_committees: int,
    n_adversarial: int,
    swayers_per_slot: int,
) -> bool:
    committee_size = n_validators // n_committees
    assignment = rng.permutation(n_validators)
    return roles_feasible(assignment, committee_size, n_adversarial, swayers_per_slot)


@dataclass
class BalancingFeasibilityResult:
    """Attack-role feasibility probability per (C, N, F) grid point."""

    n_trials: int
    swayers_per_slot: int
    grid: List[Tuple[int, int, int]]
    #: (C, N, F) -> empirical P[roles feasible].
    probabilities: Dict[Tuple[int, int, int], float]

    def rows(self) -> List[Dict[str, float]]:
        return [
            {
                "committees": c,
                "n_validators": n,
                "n_adversarial": f,
                "committee_size": n // c,
                "adversarial_fraction": f / n,
                "feasible_probability": self.probabilities[(c, n, f)],
                "n_trials": self.n_trials,
            }
            for c, n, f in self.grid
        ]

    def format_text(self) -> str:
        lines = [
            "Balancing-attack role feasibility "
            f"({self.n_trials} trials per point, "
            f"{self.swayers_per_slot} swayers needed per slot)",
            f"  {'C':>4}  {'N':>6}  {'F':>5}  {'F/N':>6}  {'P[feasible]':>12}",
        ]
        for row in self.rows():
            lines.append(
                f"  {row['committees']:>4d}  {row['n_validators']:>6d}  "
                f"{row['n_adversarial']:>5d}  {row['adversarial_fraction']:>6.3f}  "
                f"{row['feasible_probability']:>12.3f}"
            )
        return "\n".join(lines)


def default_grid() -> List[Tuple[int, int, int]]:
    """The default (C, N, F) sweep: two sizes, four adversarial fractions."""
    grid: List[Tuple[int, int, int]] = []
    for n_committees, n_validators in ((8, 128), (8, 256)):
        for fraction in (0.05, 0.1, 0.2, 0.3):
            grid.append((n_committees, n_validators, round(n_validators * fraction)))
    return grid


def run(
    grid: Optional[Sequence[Tuple[int, int, int]]] = None,
    swayers_per_slot: int = 2,
    n_trials: int = 256,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> BalancingFeasibilityResult:
    """Sweep the balancing-attack feasibility probability over ``grid``.

    ``grid`` holds ``(C, N, F)`` points with ``N`` divisible by ``C``.
    ``jobs`` parallelizes the trial chunks (``None``/1 serial, <=0 all
    cores); seeded results are identical at any parallelism level.
    """
    points = [tuple(point) for point in (grid if grid is not None else default_grid())]
    for n_committees, n_validators, n_adversarial in points:
        if n_validators % n_committees:
            raise ValueError(
                f"N={n_validators} is not divisible into C={n_committees} committees"
            )
        if not 0 <= n_adversarial <= n_validators:
            raise ValueError(f"F={n_adversarial} out of range for N={n_validators}")
    probabilities: Dict[Tuple[int, int, int], float] = {}
    for position, (n_committees, n_validators, n_adversarial) in enumerate(points):
        outcomes = run_trials(
            _feasibility_trial,
            n_trials,
            # Decorrelate grid points while keeping each reproducible.
            seed=seed + position,
            jobs=jobs,
            trial_args=(n_validators, n_committees, n_adversarial, swayers_per_slot),
        )
        probabilities[(n_committees, n_validators, n_adversarial)] = float(
            sum(outcomes)
        ) / float(n_trials)
    return BalancingFeasibilityResult(
        n_trials=n_trials,
        swayers_per_slot=swayers_per_slot,
        grid=points,
        probabilities=probabilities,
    )
