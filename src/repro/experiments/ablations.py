"""Ablation experiments beyond the paper's figures.

1. *Discrete vs continuous stake model*: quantifies the gap between the
   continuous ejection epochs (Section 4.3 closed forms) and the discrete
   protocol rules (Equations 1–2 stepped per epoch), which explains the
   difference between our derived 4661 and the paper's 4685 reference.
2. *Sensitivity to p0*: how Tables 2 and 3 change when the honest split is
   not even.
3. *Footnote-12 corner case*: Byzantine validators finalizing just before
   the honest ejection still eject the honest inactive validators while
   keeping more of their own stake.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro import constants
from repro.analysis.finalization_time import (
    ByzantineStrategy,
    threshold_epoch_non_slashing,
    threshold_epoch_slashing,
)
from repro.leak.ratios import max_byzantine_proportion
from repro.leak.stake import Behavior, continuous_ejection_epoch, semi_active_stake, inactive_stake
from repro.spec.inactivity import discrete_ejection_epoch


@dataclass
class EjectionModelAblation:
    """Discrete vs continuous ejection epochs for the leak behaviours."""

    behaviors: Sequence[str]
    continuous_epochs: Dict[str, Optional[float]]
    discrete_epochs: Dict[str, Optional[int]]
    paper_epochs: Dict[str, Optional[int]]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "behavior": behavior,
                "continuous": self.continuous_epochs[behavior],
                "discrete": self.discrete_epochs[behavior],
                "paper": self.paper_epochs[behavior],
                "relative_gap_vs_paper": (
                    None
                    if self.paper_epochs[behavior] is None
                    or self.discrete_epochs[behavior] is None
                    else abs(self.discrete_epochs[behavior] - self.paper_epochs[behavior])
                    / self.paper_epochs[behavior]
                ),
            }
            for behavior in self.behaviors
        ]


@dataclass
class SplitSensitivity:
    """Crossing times of the slower branch as a function of p0."""

    beta0: float
    p0_values: Sequence[float]
    slashing_epochs: Dict[float, float]
    non_slashing_epochs: Dict[float, float]

    def rows(self) -> List[Dict[str, float]]:
        return [
            {
                "p0": p0,
                "epochs_slashing": self.slashing_epochs[p0],
                "epochs_non_slashing": self.non_slashing_epochs[p0],
            }
            for p0 in self.p0_values
        ]


@dataclass
class EarlyFinalizationCorner:
    """Footnote-12 corner case: finalize right before the honest ejection."""

    p0: float
    beta0: float
    #: Byzantine proportion if they wait for the honest ejection (Eq. 13).
    beta_at_ejection: float
    #: Byzantine proportion if they finalize `lead` epochs before ejection
    #: (honest inactive validators still present but almost drained).
    beta_if_finalizing_early: Dict[int, float]

    def rows(self) -> List[Dict[str, float]]:
        rows = [{"lead_epochs": 0.0, "byzantine_proportion": self.beta_at_ejection}]
        for lead, beta in sorted(self.beta_if_finalizing_early.items()):
            rows.append({"lead_epochs": float(lead), "byzantine_proportion": beta})
        return rows


@dataclass
class AblationResult:
    """All ablations bundled together."""

    ejection_model: EjectionModelAblation
    split_sensitivity: SplitSensitivity
    early_finalization: EarlyFinalizationCorner

    def format_text(self) -> str:
        lines = ["Ablations"]
        lines.append("  [discrete vs continuous ejection epochs]")
        for row in self.ejection_model.rows():
            lines.append(
                f"    {row['behavior']:<12} continuous={row['continuous']}, "
                f"discrete={row['discrete']}, paper={row['paper']}"
            )
        lines.append("  [sensitivity of crossing times to p0]")
        for row in self.split_sensitivity.rows():
            lines.append(
                f"    p0={row['p0']:<5} slashing={row['epochs_slashing']:.0f}, "
                f"non-slashing={row['epochs_non_slashing']:.0f}"
            )
        lines.append("  [footnote-12 corner case: finalize early vs wait for ejection]")
        for row in self.early_finalization.rows():
            lines.append(
                f"    lead={row['lead_epochs']:.0f} epochs before ejection -> "
                f"beta={row['byzantine_proportion']:.4f}"
            )
        return "\n".join(lines)


def run(
    beta0: float = 0.33,
    p0_values: Sequence[float] = (0.3, 0.4, 0.5, 0.6, 0.7),
    early_leads: Sequence[int] = (50, 200, 500, 1000),
) -> AblationResult:
    """Run all three ablations."""
    behaviors = ("active", "semi-active", "inactive")
    behavior_enum = {
        "active": Behavior.ACTIVE,
        "semi-active": Behavior.SEMI_ACTIVE,
        "inactive": Behavior.INACTIVE,
    }
    ejection_model = EjectionModelAblation(
        behaviors=behaviors,
        continuous_epochs={
            name: continuous_ejection_epoch(behavior_enum[name]) for name in behaviors
        },
        discrete_epochs={
            name: discrete_ejection_epoch(name, max_epochs=12_000) for name in behaviors
        },
        paper_epochs={
            "active": None,
            "semi-active": constants.PAPER_SEMI_ACTIVE_EJECTION_EPOCH,
            "inactive": constants.PAPER_INACTIVE_EJECTION_EPOCH,
        },
    )

    split = SplitSensitivity(
        beta0=beta0,
        p0_values=list(p0_values),
        slashing_epochs={
            p0: max(
                threshold_epoch_slashing(p0, beta0),
                threshold_epoch_slashing(1.0 - p0, beta0),
            )
            for p0 in p0_values
        },
        non_slashing_epochs={
            p0: max(
                threshold_epoch_non_slashing(p0, beta0),
                threshold_epoch_non_slashing(1.0 - p0, beta0),
            )
            for p0 in p0_values
        },
    )

    ejection = float(constants.PAPER_INACTIVE_EJECTION_EPOCH)
    p0_corner, beta0_corner = 0.5, 0.25
    early: Dict[int, float] = {}
    for lead in early_leads:
        t = ejection - lead
        byzantine = beta0_corner * semi_active_stake(t, s0=1.0)
        honest_active = p0_corner * (1.0 - beta0_corner)
        honest_inactive = (1.0 - p0_corner) * (1.0 - beta0_corner) * inactive_stake(t, s0=1.0)
        early[lead] = byzantine / (honest_active + honest_inactive + byzantine)
    corner = EarlyFinalizationCorner(
        p0=p0_corner,
        beta0=beta0_corner,
        beta_at_ejection=max_byzantine_proportion(p0_corner, beta0_corner),
        beta_if_finalizing_early=early,
    )

    return AblationResult(
        ejection_model=ejection_model,
        split_sensitivity=split,
        early_finalization=corner,
    )
