"""Figure 7: the (p0, beta0) pairs for which the Byzantine proportion can exceed 1/3.

The figure shades the pairs such that beta_max(p0, beta0) >= 1/3 (Equation
13) on one branch and on the other branch (exchanging p0 and 1-p0), and
highlights the point (p0, beta0) = (0.5, 0.2421) — the smallest beta0 that
works on both branches simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.threshold import (
    ThresholdRegion,
    compute_threshold_region,
    critical_beta0,
)
from repro.leak.ratios import min_beta0_to_exceed_threshold

#: The critical pair highlighted in the paper.
PAPER_CRITICAL_P0 = 0.5
PAPER_CRITICAL_BETA0 = 0.2421


@dataclass
class Figure7Result:
    """The feasibility region and its boundary curve."""

    region: ThresholdRegion
    #: Boundary beta0_min(p0): smallest beta0 feasible on the branch where
    #: the honest-active proportion is p0.
    boundary_p0: Sequence[float]
    boundary_beta0: Sequence[float]
    #: Critical pair for both branches at p0 = 0.5.
    critical_beta0_at_half: float
    paper_critical_beta0: float = PAPER_CRITICAL_BETA0

    def rows(self) -> List[Dict[str, float]]:
        """The boundary curve as rows."""
        return [
            {"p0": p0, "min_beta0": beta0}
            for p0, beta0 in zip(self.boundary_p0, self.boundary_beta0)
        ]

    def format_text(self) -> str:
        lines = [
            "Figure 7 — (p0, beta0) pairs with beta_max >= 1/3",
            f"  critical beta0 at p0=0.5: measured={self.critical_beta0_at_half:.4f}, "
            f"paper={self.paper_critical_beta0:.4f}",
        ]
        for row in self.rows()[:: max(1, len(self.rows()) // 10)]:
            lines.append(f"  p0={row['p0']:.2f}  min beta0={row['min_beta0']:.4f}")
        return "\n".join(lines)


def run(
    p0_points: int = 51,
    beta0_points: int = 67,
    beta0_max: float = 0.33,
) -> Figure7Result:
    """Reproduce the Figure-7 region and boundary."""
    p0_values = [float(p) for p in np.linspace(0.0, 1.0, p0_points)]
    beta0_values = [float(b) for b in np.linspace(0.0, beta0_max, beta0_points)]
    region = compute_threshold_region(p0_values, beta0_values)
    boundary_p0 = [p0 for p0 in p0_values if 0.0 < p0 < 1.0]
    boundary_beta0 = [min_beta0_to_exceed_threshold(p0) for p0 in boundary_p0]
    return Figure7Result(
        region=region,
        boundary_p0=boundary_p0,
        boundary_beta0=boundary_beta0,
        critical_beta0_at_half=critical_beta0(0.5),
    )
