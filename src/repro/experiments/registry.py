"""Registry of reproduction experiments, keyed by table/figure id."""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List

from repro.experiments import (
    ablations,
    balancing_duration,
    balancing_feasibility,
    bouncing_duration,
    fig2_stake_trajectories,
    fig3_active_ratio,
    fig6_finalization_times,
    fig7_threshold_region,
    fig8_markov_bounce,
    fig9_stake_distribution,
    fig10_exceed_probability,
    fig10_montecarlo,
    generalized_mechanism,
    recovery_tail,
    safety_bounds,
    sweep_grid,
    table1_scenarios,
    table2_slashing_times,
    table3_nonslashing_times,
)


@dataclass(frozen=True)
class Experiment:
    """A registered reproduction experiment."""

    experiment_id: str
    description: str
    run: Callable[..., object]
    #: Whether the runner may replay this experiment's rows/report from the
    #: content-addressed result cache (``--cache-dir``).  Every registered
    #: experiment is a deterministic function of its options and the code,
    #: so this defaults on; flip it off when registering anything that
    #: reads external state.
    cacheable: bool = True

    #: Runner-level options an experiment may accept, in display order.
    RUNNER_OPTIONS = (
        "jobs",
        "seed",
        "n_trials",
        "record_every",
        "batch",
        "backend",
        "latency_model",
        "latency_seed",
    )

    def accepted_options(self) -> FrozenSet[str]:
        """Which runner-level options (``jobs``, ``seed``, ``n_trials``,
        ``record_every``, ``batch``, ``backend``, ``latency_model``,
        ``latency_seed``) this run accepts."""
        parameters = inspect.signature(self.run).parameters
        return frozenset(name for name in self.RUNNER_OPTIONS if name in parameters)

    @property
    def parallelizable(self) -> bool:
        """True when the experiment accepts a ``jobs`` option."""
        return "jobs" in self.accepted_options()


EXPERIMENTS: Dict[str, Experiment] = {
    "fig2": Experiment(
        "fig2",
        "Stake trajectories of active/semi-active/inactive validators (Figure 2)",
        fig2_stake_trajectories.run,
    ),
    "fig3": Experiment(
        "fig3",
        "Active-validator stake ratio per initial split p0 (Figure 3)",
        fig3_active_ratio.run,
    ),
    "table1": Experiment(
        "table1",
        "The five analysed scenarios and their outcomes (Table 1)",
        table1_scenarios.run,
    ),
    "table2": Experiment(
        "table2",
        "Epochs to conflicting finalization, slashable Byzantine (Table 2)",
        table2_slashing_times.run,
    ),
    "table3": Experiment(
        "table3",
        "Epochs to conflicting finalization, non-slashable Byzantine (Table 3)",
        table3_nonslashing_times.run,
    ),
    "fig6": Experiment(
        "fig6",
        "Conflicting-finalization time vs beta0, both strategies (Figure 6)",
        fig6_finalization_times.run,
    ),
    "fig7": Experiment(
        "fig7",
        "(p0, beta0) region where the Byzantine proportion can exceed 1/3 (Figure 7)",
        fig7_threshold_region.run,
    ),
    "fig8": Experiment(
        "fig8",
        "Markov bounce model of honest validators and Equation-15 increments (Figure 8)",
        fig8_markov_bounce.run,
    ),
    "fig9": Experiment(
        "fig9",
        "Honest-stake distribution under the bouncing attack at t=4024 (Figure 9)",
        fig9_stake_distribution.run,
    ),
    "fig10": Experiment(
        "fig10",
        "Probability of exceeding 1/3 Byzantine stake over time (Figure 10)",
        fig10_exceed_probability.run,
    ),
    "bouncing-duration": Experiment(
        "bouncing-duration",
        "Bouncing-attack duration probabilities (Section 5.3)",
        bouncing_duration.run,
    ),
    "safety-bound": Experiment(
        "safety-bound",
        "GST upper bound for Safety with only honest validators (Section 5.1)",
        safety_bounds.run,
    ),
    "ablations": Experiment(
        "ablations",
        "Ablations: discrete vs continuous model, p0 sensitivity, footnote-12 corner case",
        ablations.run,
    ),
    "fig10-montecarlo": Experiment(
        "fig10-montecarlo",
        "Monte-Carlo validation of the Figure-10 closed form (Equation 24)",
        fig10_montecarlo.run,
    ),
    "generalized-mechanism": Experiment(
        "generalized-mechanism",
        "The paper's headline quantities under alternative penalty mechanisms",
        generalized_mechanism.run,
    ),
    "recovery-tail": Experiment(
        "recovery-tail",
        "Post-leak recovery tail: residual penalties after finality resumes",
        recovery_tail.run,
    ),
    "sweep-grid": Experiment(
        "sweep-grid",
        "(p0, beta0) sweep of the conflicting-finalization time (Figure-6 extension)",
        sweep_grid.run,
    ),
    "balancing-feasibility": Experiment(
        "balancing-feasibility",
        "Gasper balancing-attack role feasibility over (C, N, F)",
        balancing_feasibility.run,
    ),
    "balancing-duration": Experiment(
        "balancing-duration",
        "Balancing-attack hold duration vs committee size and sway-delay budget",
        balancing_duration.run,
    ),
}


def get(experiment_id: str) -> Experiment:
    """Return the experiment registered under ``experiment_id``."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known ids: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run(experiment_id: str) -> object:
    """Run the experiment registered under ``experiment_id`` and return its result."""
    return get(experiment_id).run()


def list_ids() -> List[str]:
    """All registered experiment ids."""
    return sorted(EXPERIMENTS)
