"""Figure 2: stake trajectories of active, semi-active, and inactive validators.

The figure shows the stake of the three reference behaviours during an
inactivity leak that never ends, together with the expulsion limit.  The
paper reports the ejection of inactive validators at epoch 4685 and of
semi-active validators at epoch 7652.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import constants
from repro.leak.stake import Behavior, StakeTrajectory, continuous_ejection_epoch, sample_trajectory
from repro.spec.inactivity import discrete_ejection_epoch


@dataclass
class Figure2Result:
    """Series and ejection epochs reproducing Figure 2."""

    max_epoch: int
    trajectories: Dict[str, StakeTrajectory]
    continuous_ejection_epochs: Dict[str, Optional[float]]
    discrete_ejection_epochs: Dict[str, Optional[int]]
    paper_ejection_epochs: Dict[str, Optional[int]]
    expulsion_limit: float = constants.EJECTION_BALANCE_ETH

    def rows(self) -> List[Dict[str, object]]:
        """One row per behaviour: measured vs paper ejection epochs."""
        rows = []
        for behavior in ("active", "semi-active", "inactive"):
            rows.append(
                {
                    "behavior": behavior,
                    "continuous_ejection_epoch": self.continuous_ejection_epochs[behavior],
                    "discrete_ejection_epoch": self.discrete_ejection_epochs[behavior],
                    "paper_ejection_epoch": self.paper_ejection_epochs[behavior],
                    "final_stake_eth": self.trajectories[behavior].final_stake(),
                }
            )
        return rows

    def format_text(self) -> str:
        """Human-readable summary of the figure's headline numbers."""
        lines = ["Figure 2 — stake trajectories during an inactivity leak"]
        for row in self.rows():
            lines.append(
                f"  {row['behavior']:<12} ejection: continuous="
                f"{row['continuous_ejection_epoch']}, discrete={row['discrete_ejection_epoch']}, "
                f"paper={row['paper_ejection_epoch']}, final stake="
                f"{row['final_stake_eth']:.2f} ETH"
            )
        return "\n".join(lines)


def run(max_epoch: int = 8000, step: int = 10) -> Figure2Result:
    """Reproduce the Figure-2 series."""
    behaviors = {
        "active": Behavior.ACTIVE,
        "semi-active": Behavior.SEMI_ACTIVE,
        "inactive": Behavior.INACTIVE,
    }
    trajectories = {
        name: sample_trajectory(behavior, max_epoch=max_epoch, step=step)
        for name, behavior in behaviors.items()
    }
    continuous = {
        name: continuous_ejection_epoch(behavior) for name, behavior in behaviors.items()
    }
    discrete = {
        name: discrete_ejection_epoch(name, max_epochs=max_epoch + 2000)
        for name in behaviors
    }
    paper = {
        "active": None,
        "semi-active": constants.PAPER_SEMI_ACTIVE_EJECTION_EPOCH,
        "inactive": constants.PAPER_INACTIVE_EJECTION_EPOCH,
    }
    return Figure2Result(
        max_epoch=max_epoch,
        trajectories=trajectories,
        continuous_ejection_epochs=continuous,
        discrete_ejection_epochs=discrete,
        paper_ejection_epochs=paper,
    )
