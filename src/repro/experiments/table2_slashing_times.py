"""Table 2: epochs to conflicting finalization with slashable Byzantine behaviour.

For p0 = 0.5 and beta0 in {0, 0.1, 0.15, 0.2, 0.33} the paper reports
4685, 4066, 3622, 3107 and 502 epochs respectively (Equation 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Dict, List, Optional, Sequence

from repro.analysis.finalization_time import (
    ByzantineStrategy,
    epochs_to_conflicting_finalization,
    threshold_epoch_slashing,
)
from repro.analysis.partition_scenarios import run_slashable_byzantine_scenario
from repro.core.trials import parallel_map

PAPER_ROWS: Dict[float, int] = {0.0: 4685, 0.1: 4066, 0.15: 3622, 0.2: 3107, 0.33: 502}


@dataclass
class Table2Result:
    """Measured vs paper epochs for the slashable-Byzantine strategy.

    ``network_validation`` (present when a ``--latency-model`` was
    requested) holds a measured mainnet-scale partitioned slot-simulation
    run under that model, confirming the table's premise — no epoch
    finalizes while the partition holds — under realistic propagation.
    """

    p0: float
    beta0_values: Sequence[float]
    analytical_epochs: Dict[float, int]
    simulated_threshold_epochs: Dict[float, Optional[int]]
    paper_epochs: Dict[float, Optional[int]]
    network_validation: Optional[Dict[str, object]] = None

    def rows(self) -> List[Dict[str, object]]:
        """The Table-2 rows: beta0 and the epoch of conflicting finalization."""
        return [
            {
                "beta0": beta0,
                "epochs_analytical": self.analytical_epochs[beta0],
                "epochs_simulated": self.simulated_threshold_epochs.get(beta0),
                "epochs_paper": self.paper_epochs.get(beta0),
            }
            for beta0 in self.beta0_values
        ]

    def format_text(self) -> str:
        lines = [
            "Table 2 — epochs to conflicting finalization (slashable Byzantine, p0=0.5)",
            f"  {'beta0':>6}  {'analytical':>10}  {'simulated':>10}  {'paper':>6}",
        ]
        for row in self.rows():
            simulated = row["epochs_simulated"]
            lines.append(
                f"  {row['beta0']:>6}  {row['epochs_analytical']:>10}  "
                f"{simulated if simulated is not None else '-':>10}  "
                f"{row['epochs_paper'] if row['epochs_paper'] is not None else '-':>6}"
            )
        if self.network_validation is not None:
            v = self.network_validation
            lines.append(
                f"  network validation ({v['latency_model']}, "
                f"{v['n_validators']} validators, p0={v['p0']}): "
                f"finalization stalled={v['finalization_stalled']}, "
                f"{v['delayed_across_partition']} deliveries held to GST, "
                f"{v['slots_per_second']:.0f} slots/s"
            )
        return "\n".join(lines)


def _simulate_row(p0: float, max_epochs: int, beta0: float) -> Optional[int]:
    """Simulated threshold epoch for one beta0 (picklable for workers)."""
    outcome = run_slashable_byzantine_scenario(beta0=beta0, p0=p0, max_epochs=max_epochs)
    branches = outcome.simulation.branches if outcome.simulation else {}
    threshold_epochs = [
        branch.threshold_epoch
        for branch in branches.values()
        if branch.threshold_epoch is not None
    ]
    return max(threshold_epochs) if len(threshold_epochs) == len(branches) else None


def run(
    beta0_values: Sequence[float] = tuple(PAPER_ROWS),
    p0: float = 0.5,
    include_simulation: bool = True,
    simulation_max_epochs: int = 6000,
    jobs: Optional[int] = None,
    latency_model: Optional[str] = None,
    latency_seed: int = 0,
    latency_validators: int = 10_000,
) -> Table2Result:
    """Reproduce Table 2.

    ``include_simulation`` additionally cross-checks each row against the
    discrete aggregate simulator (scenario 5.2.1), reporting the epoch at
    which the slower branch regains the supermajority; ``jobs`` fans
    those per-beta0 simulations (the dominant cost — thousands of epochs
    each) across worker processes without changing any result.
    ``latency_model`` adds a measured partitioned slot-simulation at
    mainnet scale under the named latency model, re-validating the
    table's partition-stalls-finalization premise under realistic
    propagation.
    """
    analytical = {
        beta0: epochs_to_conflicting_finalization(ByzantineStrategy.SLASHING, p0, beta0)
        for beta0 in beta0_values
    }
    simulated: Dict[float, Optional[int]] = {}
    if include_simulation:
        thresholds = parallel_map(
            partial(_simulate_row, p0, simulation_max_epochs),
            beta0_values,
            jobs=jobs,
            chunk_size=1,
        )
        simulated = dict(zip(beta0_values, thresholds))
    validation: Optional[Dict[str, object]] = None
    if latency_model is not None:
        from repro.experiments.network_measure import measure_partitioned_premise

        validation = measure_partitioned_premise(
            latency_model,
            latency_seed=latency_seed,
            n_validators=latency_validators,
            p0=p0,
        )
    return Table2Result(
        p0=p0,
        beta0_values=list(beta0_values),
        analytical_epochs=analytical,
        simulated_threshold_epochs=simulated,
        paper_epochs={beta0: PAPER_ROWS.get(beta0) for beta0 in beta0_values},
        network_validation=validation,
    )
