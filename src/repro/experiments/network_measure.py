"""Measured slot-level network validation under realistic latency models.

The paper's finalization-time results (Tables 2–3, Figure 6) are derived
under a uniform-delay network.  This module runs the view-sharded slot
simulator at mainnet scale under a configurable latency model and
reports the observables those derivations rest on:

* on a *healthy* network, finalization keeps its normal ~2-epoch lag —
  realistic propagation does not break Liveness (Figure 6's baseline),
* on a *partitioned* network, no epoch finalizes while the partition
  holds — realistic propagation does not leak votes across the split,
  which is the premise of the Table 2/3 timeline equations.

Both helpers return flat dictionaries ready for ``rows()`` export.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Union

from repro.network.latency import LatencyModel, resolve_latency_model
from repro.sim.scenarios import build_honest_simulation, build_partitioned_simulation
from repro.spec.config import SpecConfig


def _model_name(model: Union[str, LatencyModel]) -> str:
    return model if isinstance(model, str) else type(model).__name__


def measure_healthy_finalization(
    latency_model: Union[str, LatencyModel],
    latency_seed: int = 0,
    n_validators: int = 10_000,
    epochs: int = 4,
    config: Optional[SpecConfig] = None,
) -> Dict[str, object]:
    """Finalization progress of a healthy mainnet-scale network under latency."""
    engine = build_honest_simulation(
        n_validators=n_validators,
        config=config or SpecConfig.mainnet(),
        latency_model=latency_model,
        latency_seed=latency_seed,
    )
    start = time.perf_counter()
    result = engine.run(epochs)
    elapsed = time.perf_counter() - start
    finalized = result.max_finalized_epoch()
    stats = result.transport_stats
    return {
        "scenario": "healthy",
        "latency_model": _model_name(latency_model),
        "latency_seed": latency_seed,
        "n_validators": n_validators,
        "epochs": epochs,
        "finalized_epoch": finalized,
        "finalization_lag_epochs": epochs - 1 - finalized,
        "seconds": elapsed,
        "slots_per_second": epochs * engine.config.slots_per_epoch / elapsed,
        "messages_delivered": stats.delivered,
        "latency_delayed": stats.latency_delayed,
        "peak_view_count": result.peak_view_count,
    }


def measure_partitioned_premise(
    latency_model: Union[str, LatencyModel],
    latency_seed: int = 0,
    n_validators: int = 10_000,
    p0: float = 0.5,
    epochs: int = 2,
    config: Optional[SpecConfig] = None,
) -> Dict[str, object]:
    """The Table 2/3 premise under latency: a partition stalls finalization."""
    engine = build_partitioned_simulation(
        n_validators=n_validators,
        p0=p0,
        config=config or SpecConfig.mainnet(),
        latency_model=latency_model,
        latency_seed=latency_seed,
    )
    start = time.perf_counter()
    result = engine.run(epochs)
    elapsed = time.perf_counter() - start
    stats = result.transport_stats
    return {
        "scenario": "partitioned",
        "latency_model": _model_name(latency_model),
        "latency_seed": latency_seed,
        "n_validators": n_validators,
        "p0": p0,
        "epochs": epochs,
        "finalized_epoch": result.max_finalized_epoch(),
        "finalization_stalled": result.max_finalized_epoch() == 0,
        "seconds": elapsed,
        "slots_per_second": epochs * engine.config.slots_per_epoch / elapsed,
        "messages_delivered": stats.delivered,
        "delayed_across_partition": stats.delayed_across_partition,
        "latency_delayed": stats.latency_delayed,
    }


def resolve_for_report(
    latency_model: Union[None, str, LatencyModel], latency_seed: int
) -> Optional[LatencyModel]:
    """Factory passthrough used by experiments accepting ``--latency-model``."""
    return resolve_latency_model(latency_model, seed=latency_seed)
