"""Command-line entry point: run reproduction experiments and print their tables.

Usage::

    repro-experiments --list
    repro-experiments table2 table3
    repro-experiments --all
    repro-experiments fig10-montecarlo --jobs 8 --seed 7
    repro-experiments fig10-montecarlo --jobs 0 --trials 1024 --record-every 250
    repro-experiments balancing-duration --jobs 4 --cache-dir .repro-cache

``--jobs``/``--seed``/``--trials``/``--record-every``/``--latency-model``
are forwarded to every selected experiment that accepts them (``--list``
marks those with ``[parallel]`` / ``[seeded]`` / ``[trials]`` /
``[curve]`` / ``[latency]``).
Seeded experiments produce identical results at any ``--jobs`` level: the
parallel trial runner (:mod:`repro.core.trials`) spawns per-chunk seeds
deterministically.

``--cache-dir`` adds a content-addressed result cache
(:mod:`repro.cache`): every experiment is a deterministic function of its
id, forwarded options and the implementing code, so a repeated invocation
replays the stored rows and report instead of recomputing (``[cache]`` in
``--list``; a ``[cache] N hits, M misses`` summary line reports what the
store served).  Editing any source file under ``repro`` invalidates the
affected entries automatically via the code fingerprint.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.cache import ResultCache
from repro.experiments import registry
from repro.experiments.export import _jsonable, export_csv, export_json
from repro.network.latency import LATENCY_MODEL_NAMES


def _format_result(result: object) -> str:
    """Render an experiment result as text (every result has format_text)."""
    formatter = getattr(result, "format_text", None)
    if callable(formatter):
        return str(formatter())
    return repr(result)


def _result_payload(result: object) -> Dict[str, Any]:
    """The cacheable essence of a result: its rows and rendered report."""
    rows_method = getattr(result, "rows", None)
    rows = rows_method() if callable(rows_method) else []
    return {
        "rows": [_jsonable(row) for row in rows],
        "report": _format_result(result),
    }


class CachedResult:
    """An experiment result replayed from the content-addressed cache.

    Exposes the same ``rows()`` / ``format_text()`` surface the export
    and report paths consume, backed by the stored payload — so a cache
    hit flows through the runner identically to a fresh computation.
    """

    def __init__(self, payload: Dict[str, Any]) -> None:
        self._payload = payload

    def rows(self) -> List[Dict[str, Any]]:
        return self._payload.get("rows") or []

    def format_text(self) -> str:
        return str(self._payload.get("report", ""))


def experiment_cache_query(options: Dict[str, Any]) -> tuple:
    """The ``(config, seed)`` cache address of one experiment run.

    ``jobs`` is deliberately excluded — results are jobs-invariant by
    contract, so runs at different parallelism levels share entries.
    Shared by the CLI runner and the experiment service so a job
    submitted to the service replays a result the CLI computed (and
    vice versa).
    """
    key_options = {k: v for k, v in options.items() if k != "jobs"}
    return {"options": key_options}, key_options.get("seed")


def run_cached_experiment(
    experiment_id: str, options: Dict[str, Any], cache: ResultCache
) -> tuple:
    """Run one registered experiment through the result cache.

    Returns ``(payload, hit)`` where the payload is the experiment's
    rows + rendered report (see :func:`_result_payload`).
    """
    experiment = registry.get(experiment_id)
    config, seed = experiment_cache_query(options)
    return cache.fetch_or_compute(
        experiment_id,
        config,
        lambda: _result_payload(experiment.run(**options)),
        seed=seed,
    )


def run_experiments(
    experiment_ids: Sequence[str],
    output_dir: Optional[pathlib.Path] = None,
    formats: Sequence[str] = ("json", "csv"),
    jobs: Optional[int] = None,
    seed: Optional[int] = None,
    trials: Optional[int] = None,
    record_every: Optional[int] = None,
    batch: Optional[int] = None,
    backend: Optional[str] = None,
    latency_model: Optional[str] = None,
    latency_seed: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    cache_dir: Optional[pathlib.Path] = None,
) -> List[str]:
    """Run the requested experiments and return their textual reports.

    When ``output_dir`` is given, each result is also exported there as JSON
    and/or CSV (see :mod:`repro.experiments.export`).  ``jobs``, ``seed``,
    ``trials``, ``record_every``, ``batch``, ``backend``, ``latency_model``
    and ``latency_seed`` are passed through to experiments that accept
    them and silently ignored by the rest.

    With a ``cache`` (or ``cache_dir``), each cacheable experiment's rows
    and report are served from the content-addressed store when an entry
    matching (id, forwarded options, code fingerprint) exists, and stored
    after computing otherwise.  ``jobs`` is deliberately excluded from
    the cache key — results are jobs-invariant by contract, so runs at
    different parallelism levels share entries.
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    reports = []
    for experiment_id in experiment_ids:
        experiment = registry.get(experiment_id)
        options = {}
        accepted = experiment.accepted_options()
        if jobs is not None and "jobs" in accepted:
            options["jobs"] = jobs
        if seed is not None and "seed" in accepted:
            options["seed"] = seed
        if trials is not None and "n_trials" in accepted:
            options["n_trials"] = trials
        if record_every is not None and "record_every" in accepted:
            options["record_every"] = record_every
        if batch is not None and "batch" in accepted:
            options["batch"] = batch
        if backend is not None and "backend" in accepted:
            options["backend"] = backend
        if latency_model is not None and "latency_model" in accepted:
            options["latency_model"] = latency_model
        if latency_seed is not None and "latency_seed" in accepted:
            options["latency_seed"] = latency_seed
        if cache is not None and experiment.cacheable:
            payload, _hit = run_cached_experiment(experiment_id, options, cache)
            result: object = CachedResult(payload)
        else:
            result = experiment.run(**options)
        reports.append(_format_result(result))
        if output_dir is not None:
            if "json" in formats:
                export_json(experiment_id, result, output_dir)
            if "csv" in formats:
                export_csv(experiment_id, result, output_dir)
    return reports


def _positive_int(value: str) -> int:
    """argparse type for options that must be strictly positive."""
    parsed = int(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer, got {value}")
    return parsed


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Byzantine Attacks Exploiting "
            "Penalties in Ethereum PoS' (DSN 2024)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="directory to export results (JSON + CSV) in addition to printing them",
    )
    parser.add_argument(
        "--format",
        choices=("json", "csv", "both"),
        default="both",
        help="export format used with --output-dir (default: both)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for experiments that parallelize "
            "(default: serial; 0 or negative: all cores; seeded results are "
            "identical at any level)"
        ),
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="S",
        help="root RNG seed for experiments that accept one (default: each experiment's own)",
    )
    parser.add_argument(
        "--trials",
        type=_positive_int,
        default=None,
        metavar="T",
        help=(
            "number of Monte-Carlo trials for experiments that accept one "
            "(default: each experiment's own)"
        ),
    )
    parser.add_argument(
        "--record-every",
        type=_positive_int,
        default=None,
        metavar="E",
        help=(
            "record-epoch spacing of exceed-probability curves for "
            "experiments that accept one (default: each experiment's own)"
        ),
    )
    parser.add_argument(
        "--batch",
        type=_positive_int,
        default=None,
        metavar="B",
        help=(
            "trials stacked into one kernel batch for Monte-Carlo "
            "experiments (default: a cache-budgeted width; results are "
            "identical at any batch)"
        ),
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        metavar="NAME",
        help=(
            "stake-dynamics kernel for experiments that accept one: "
            "numpy, python, or numba when installed "
            "(default: each experiment's own)"
        ),
    )
    parser.add_argument(
        "--latency-model",
        choices=LATENCY_MODEL_NAMES,
        default=None,
        metavar="MODEL",
        help=(
            "network latency model for experiments that run the slot "
            "simulator: "
            + ", ".join(LATENCY_MODEL_NAMES)
            + " (default: the uniform-delay network of the paper)"
        ),
    )
    parser.add_argument(
        "--latency-seed",
        type=int,
        default=None,
        metavar="S",
        help="RNG seed of the latency model (default: 0)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help=(
            "content-addressed result cache: replay stored rows/reports for "
            "repeated (experiment, options, code) invocations; entries are "
            "invalidated automatically when any repro source file changes"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in registry.list_ids():
            experiment = registry.get(experiment_id)
            accepted = experiment.accepted_options()
            markers = "".join(
                f" [{label}]"
                for option, label in (
                    ("jobs", "parallel"),
                    ("seed", "seeded"),
                    ("n_trials", "trials"),
                    ("record_every", "curve"),
                    ("batch", "batch"),
                    ("backend", "backend"),
                    ("latency_model", "latency"),
                )
                if option in accepted
            )
            if experiment.cacheable:
                markers += " [cache]"
            print(f"{experiment_id:<22} {experiment.description}{markers}")
        print()
        print(
            "[parallel] experiments honour --jobs; [seeded] ones --seed; "
            "[trials] ones --trials; [curve] ones --record-every; "
            "[batch] ones --batch; [backend] ones --backend; "
            "[latency] ones --latency-model/--latency-seed; "
            "[cache] ones replay from --cache-dir."
        )
        return 0

    experiment_ids = list(args.experiments)
    if args.all:
        experiment_ids = registry.list_ids()
    if not experiment_ids:
        parser.print_help()
        return 1

    formats = ("json", "csv") if args.format == "both" else (args.format,)
    cache = ResultCache(args.cache_dir) if args.cache_dir is not None else None
    for report in run_experiments(
        experiment_ids,
        output_dir=args.output_dir,
        formats=formats,
        jobs=args.jobs,
        seed=args.seed,
        trials=args.trials,
        record_every=args.record_every,
        batch=args.batch,
        backend=args.backend,
        latency_model=args.latency_model,
        latency_seed=args.latency_seed,
        cache=cache,
    ):
        print(report)
        print()
    if cache is not None:
        stats = cache.stats
        print(
            f"[cache] {stats.hits} hits, {stats.misses} misses, "
            f"{stats.stores} stores ({cache.cache_dir})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
