"""Command-line entry point: run reproduction experiments and print their tables.

Usage::

    repro-experiments --list
    repro-experiments table2 table3
    repro-experiments --all
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.export import export_csv, export_json


def _format_result(result: object) -> str:
    """Render an experiment result as text (every result has format_text)."""
    formatter = getattr(result, "format_text", None)
    if callable(formatter):
        return str(formatter())
    return repr(result)


def run_experiments(
    experiment_ids: Sequence[str],
    output_dir: Optional[pathlib.Path] = None,
    formats: Sequence[str] = ("json", "csv"),
) -> List[str]:
    """Run the requested experiments and return their textual reports.

    When ``output_dir`` is given, each result is also exported there as JSON
    and/or CSV (see :mod:`repro.experiments.export`).
    """
    reports = []
    for experiment_id in experiment_ids:
        experiment = registry.get(experiment_id)
        result = experiment.run()
        reports.append(_format_result(result))
        if output_dir is not None:
            if "json" in formats:
                export_json(experiment_id, result, output_dir)
            if "csv" in formats:
                export_csv(experiment_id, result, output_dir)
    return reports


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=(
            "Reproduce the tables and figures of 'Byzantine Attacks Exploiting "
            "Penalties in Ethereum PoS' (DSN 2024)."
        ),
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments")
    parser.add_argument("--all", action="store_true", help="run every experiment")
    parser.add_argument(
        "--output-dir",
        type=pathlib.Path,
        default=None,
        help="directory to export results (JSON + CSV) in addition to printing them",
    )
    parser.add_argument(
        "--format",
        choices=("json", "csv", "both"),
        default="both",
        help="export format used with --output-dir (default: both)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in registry.list_ids():
            print(f"{experiment_id:<20} {registry.get(experiment_id).description}")
        return 0

    experiment_ids = list(args.experiments)
    if args.all:
        experiment_ids = registry.list_ids()
    if not experiment_ids:
        parser.print_help()
        return 1

    formats = ("json", "csv") if args.format == "both" else (args.format,)
    for report in run_experiments(
        experiment_ids, output_dir=args.output_dir, formats=formats
    ):
        print(report)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
