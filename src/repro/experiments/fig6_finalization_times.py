"""Figure 6: time to conflicting finalization vs beta0 for both Byzantine strategies.

The figure sweeps beta0 from 0 to 1/3 and plots, for p0 = 0.5, the epoch at
which conflicting finalization occurs when the Byzantine validators engage
in slashable behaviour (Equation 9) and when they do not (Equation 10).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.finalization_time import (
    ByzantineStrategy,
    threshold_epoch_non_slashing,
    threshold_epoch_slashing,
)


@dataclass
class Figure6Result:
    """Crossing-time curves for the two Byzantine strategies."""

    p0: float
    beta0_values: Sequence[float]
    slashing_epochs: List[float]
    non_slashing_epochs: List[float]

    def rows(self) -> List[Dict[str, float]]:
        """One row per beta0 with both curves."""
        return [
            {
                "beta0": beta0,
                "epochs_slashing": self.slashing_epochs[i],
                "epochs_non_slashing": self.non_slashing_epochs[i],
            }
            for i, beta0 in enumerate(self.beta0_values)
        ]

    def format_text(self) -> str:
        lines = [
            "Figure 6 — time to conflicting finalization vs beta0 (p0=0.5)",
            f"  {'beta0':>6}  {'slashing':>9}  {'non-slashing':>12}",
        ]
        for row in self.rows()[:: max(1, len(self.rows()) // 12)]:
            lines.append(
                f"  {row['beta0']:>6.3f}  {row['epochs_slashing']:>9.0f}  "
                f"{row['epochs_non_slashing']:>12.0f}"
            )
        return "\n".join(lines)

    def non_slashing_always_slower(self) -> bool:
        """Sanity property: the non-slashable strategy is never faster."""
        return all(
            non_slashing >= slashing - 1e-9
            for slashing, non_slashing in zip(self.slashing_epochs, self.non_slashing_epochs)
        )


def run(
    beta0_max: float = 0.33,
    n_points: int = 67,
    p0: float = 0.5,
) -> Figure6Result:
    """Reproduce the Figure-6 curves."""
    beta0_values = [float(b) for b in np.linspace(0.0, beta0_max, n_points)]
    slashing = [threshold_epoch_slashing(p0, beta0) for beta0 in beta0_values]
    non_slashing = [threshold_epoch_non_slashing(p0, beta0) for beta0 in beta0_values]
    return Figure6Result(
        p0=p0,
        beta0_values=beta0_values,
        slashing_epochs=slashing,
        non_slashing_epochs=non_slashing,
    )
