"""Figure 6: time to conflicting finalization vs beta0 for both Byzantine strategies.

The figure sweeps beta0 from 0 to 1/3 and plots, for p0 = 0.5, the epoch at
which conflicting finalization occurs when the Byzantine validators engage
in slashable behaviour (Equation 9) and when they do not (Equation 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.finalization_time import (
    ByzantineStrategy,
    threshold_epoch_non_slashing,
    threshold_epoch_slashing,
)
from repro.core.trials import parallel_map


@dataclass
class Figure6Result:
    """Crossing-time curves for the two Byzantine strategies.

    ``network_validation`` (present when a ``--latency-model`` was
    requested) holds a measured mainnet-scale slot-simulation run under
    that model: the finalization lag of a healthy network, confirming
    that the closed-form curves' Liveness baseline survives realistic
    propagation.
    """

    p0: float
    beta0_values: Sequence[float]
    slashing_epochs: List[float]
    non_slashing_epochs: List[float]
    network_validation: Optional[Dict[str, object]] = None

    def rows(self) -> List[Dict[str, float]]:
        """One row per beta0 with both curves."""
        return [
            {
                "beta0": beta0,
                "epochs_slashing": self.slashing_epochs[i],
                "epochs_non_slashing": self.non_slashing_epochs[i],
            }
            for i, beta0 in enumerate(self.beta0_values)
        ]

    def format_text(self) -> str:
        lines = [
            "Figure 6 — time to conflicting finalization vs beta0 (p0=0.5)",
            f"  {'beta0':>6}  {'slashing':>9}  {'non-slashing':>12}",
        ]
        for row in self.rows()[:: max(1, len(self.rows()) // 12)]:
            lines.append(
                f"  {row['beta0']:>6.3f}  {row['epochs_slashing']:>9.0f}  "
                f"{row['epochs_non_slashing']:>12.0f}"
            )
        if self.network_validation is not None:
            v = self.network_validation
            lines.append(
                f"  network validation ({v['latency_model']}, "
                f"{v['n_validators']} validators, {v['epochs']} epochs): "
                f"finalized epoch {v['finalized_epoch']} "
                f"(lag {v['finalization_lag_epochs']}), "
                f"{v['slots_per_second']:.0f} slots/s, "
                f"{v['latency_delayed']} deliveries past the uniform bound"
            )
        return "\n".join(lines)

    def non_slashing_always_slower(self) -> bool:
        """Sanity property: the non-slashable strategy is never faster."""
        return all(
            non_slashing >= slashing - 1e-9
            for slashing, non_slashing in zip(self.slashing_epochs, self.non_slashing_epochs)
        )


def _curve_point(p0: float, beta0: float) -> Tuple[float, float]:
    """Both Figure-6 curves at one beta0 (picklable for worker processes)."""
    return (
        threshold_epoch_slashing(p0, beta0),
        threshold_epoch_non_slashing(p0, beta0),
    )


def run(
    beta0_max: float = 0.33,
    n_points: int = 67,
    p0: float = 0.5,
    jobs: Optional[int] = None,
    latency_model: Optional[str] = None,
    latency_seed: int = 0,
    latency_validators: int = 10_000,
    latency_epochs: int = 4,
) -> Figure6Result:
    """Reproduce the Figure-6 curves.

    ``jobs`` fans the beta0 grid across worker processes; the curves are
    closed-form, so results never depend on the parallelism level.  With
    ``latency_model`` set (``"uniform"``, ``"jitter"``,
    ``"lognormal"`` or ``"gossip"``) the closed-form curves are
    accompanied by a measured mainnet-scale (default 10k validators)
    slot-simulation run under that model, validating the Liveness
    baseline the curves extrapolate from.
    """
    beta0_values = [float(b) for b in np.linspace(0.0, beta0_max, n_points)]
    points = parallel_map(partial(_curve_point, p0), beta0_values, jobs=jobs)
    slashing = [point[0] for point in points]
    non_slashing = [point[1] for point in points]
    validation: Optional[Dict[str, object]] = None
    if latency_model is not None:
        from repro.experiments.network_measure import measure_healthy_finalization

        validation = measure_healthy_finalization(
            latency_model,
            latency_seed=latency_seed,
            n_validators=latency_validators,
            epochs=latency_epochs,
        )
    return Figure6Result(
        p0=p0,
        beta0_values=beta0_values,
        slashing_epochs=slashing,
        non_slashing_epochs=non_slashing,
        network_validation=validation,
    )
