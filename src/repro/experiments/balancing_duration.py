"""How long the Gasper balancing attack holds balance, swept over
committee size and sway-delay budget.

The ``balancing-feasibility`` experiment answers whether the adversary
can *staff* the attack from a random duty assignment; this experiment
answers the follow-up the ROADMAP's attack library calls for: once
staffed, **how long does the attack actually hold the fork balanced**?
Each grid point runs ``n_trials`` seeded slot-simulation trials of
:func:`repro.sim.scenarios.build_balancing_attack_simulation` through the
trial-parallel sweep engine (:mod:`repro.sim.sweeps`) and reports
hold-duration statistics:

* ``mean/min/max balance_held_epochs`` — leading epochs with no honest
  finalization anywhere (the attack's lifetime),
* ``held_full_horizon_fraction`` — the probability the adversary kept
  balance through the whole simulated horizon,
* ``peak view count`` — how far the honest views fragmented.

The sweep axes are the committee size (via the validator count — one
committee per slot, so ``n_validators = committee_size x slots_per_epoch``)
and the swayers' delay budget (seconds of deliberate lateness on the
balancing votes).  Trials parallelize across worker processes with
``--jobs`` and rows are byte-identical at any parallelism level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.sim.sweeps import ScenarioSpec, SweepResult, run_sweep_grid
from repro.spec.config import SpecConfig


@dataclass
class BalancingDurationResult:
    """Hold-duration statistics per (committee size, sway delay) point."""

    committee_sizes: Sequence[int]
    sway_delays: Sequence[float]
    byzantine_fraction: float
    epochs: int
    n_trials: int
    sweep: SweepResult

    def trial_rows(self) -> List[Dict[str, Any]]:
        """The underlying per-trial sweep rows."""
        return self.sweep.rows()

    def rows(self) -> List[Dict[str, Any]]:
        """One aggregated row per (committee size, sway delay) grid point."""
        aggregates = {summary["scenario"]: summary for summary in self.sweep.aggregate()}
        rows: List[Dict[str, Any]] = []
        for committee_size in self.committee_sizes:
            for sway_delay in self.sway_delays:
                summary = aggregates[_label(committee_size, sway_delay)]
                rows.append(
                    {
                        "committee_size": committee_size,
                        "sway_delay": sway_delay,
                        "byzantine_fraction": self.byzantine_fraction,
                        "epochs": self.epochs,
                        "n_trials": summary["n_trials"],
                        "mean_balance_held_epochs": summary["mean_balance_held_epochs"],
                        "min_balance_held_epochs": summary["min_balance_held_epochs"],
                        "max_balance_held_epochs": summary["max_balance_held_epochs"],
                        "held_full_horizon_fraction": summary[
                            "held_full_horizon_fraction"
                        ],
                        "mean_peak_view_count": summary["mean_peak_view_count"],
                        "any_safety_violated": summary["any_safety_violated"],
                    }
                )
        return rows

    def format_text(self) -> str:
        lines = [
            "Balancing-attack hold duration vs committee size and sway-delay budget",
            f"  ({self.n_trials} trials per point, beta0={self.byzantine_fraction}, "
            f"{self.epochs}-epoch horizon)",
            f"  {'committee':>9}  {'sway delay':>10}  {'held (mean/min/max)':>20}  "
            f"{'P[held full]':>12}  {'views':>6}",
        ]
        for row in self.rows():
            lines.append(
                f"  {row['committee_size']:>9d}  {row['sway_delay']:>10.1f}  "
                f"{row['mean_balance_held_epochs']:>8.2f}/"
                f"{row['min_balance_held_epochs']:>3d}/"
                f"{row['max_balance_held_epochs']:>3d}     "
                f"{row['held_full_horizon_fraction']:>12.2f}  "
                f"{row['mean_peak_view_count']:>6.1f}"
            )
        return "\n".join(lines)


def _label(committee_size: int, sway_delay: float) -> str:
    return f"c{committee_size}-sway{sway_delay:g}"


def run(
    committee_sizes: Sequence[int] = (8, 16),
    sway_delays: Sequence[float] = (0.0, 2.0, 4.0),
    byzantine_fraction: float = 0.2,
    epochs: int = 4,
    n_trials: int = 8,
    seed: int = 0,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
) -> BalancingDurationResult:
    """Sweep balancing-attack hold duration over (committee size, sway delay).

    Committees are per-slot, so a committee of size ``c`` under the
    minimal config (4-slot epochs) means ``4c`` validators.  ``jobs``
    parallelizes the trial grid across worker processes; rows are
    byte-identical at any level.  ``seed`` decorrelates the whole sweep;
    each trial additionally derives its own duty/latency seed from its
    index.
    """
    if not committee_sizes or not sway_delays:
        raise ValueError("committee_sizes and sway_delays must be non-empty")
    config = SpecConfig.minimal()
    specs = []
    for committee_size in committee_sizes:
        if committee_size < 2:
            raise ValueError("committee_size must be at least 2")
        for sway_delay in sway_delays:
            if sway_delay < 0:
                raise ValueError("sway_delay must be non-negative")
            kwargs: Dict[str, Any] = {
                "n_validators": committee_size * config.slots_per_epoch,
                "byzantine_fraction": byzantine_fraction,
                "sway_delay": float(sway_delay),
                "config": config,
            }
            if backend is not None:
                kwargs["backend"] = backend
            specs.append(
                ScenarioSpec(
                    builder="balancing",
                    kwargs=kwargs,
                    epochs=epochs,
                    seed=f"balancing-duration/{seed}",
                    label=_label(committee_size, sway_delay),
                )
            )
    sweep = run_sweep_grid(specs, n_trials, jobs=jobs)
    return BalancingDurationResult(
        committee_sizes=list(committee_sizes),
        sway_delays=[float(d) for d in sway_delays],
        byzantine_fraction=byzantine_fraction,
        epochs=epochs,
        n_trials=n_trials,
        sweep=sweep,
    )
