"""Ablation: the paper's analysis under alternative penalty mechanisms.

The paper's discussion (Sections 1 and 6) points out that other PoS designs
penalise inactive validators too, and that the interplay of such penalties
with Byzantine behaviour deserves analysis.  This experiment replays the
paper's headline quantities under a family of mechanisms parameterised by
the penalty quotient (leak speed) and score dynamics:

* how long a partition must last before Safety is lost (Section 5.1 bound),
* when inactive / semi-active validators get ejected (Figure 2),
* the critical Byzantine proportion of Section 5.2.3 (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.leak.generalized import PenaltyMechanism


@dataclass
class GeneralizedMechanismResult:
    """Headline quantities per penalty mechanism."""

    mechanisms: Dict[str, PenaltyMechanism]
    safety_bounds: Dict[str, float]
    inactive_ejections: Dict[str, float]
    semi_active_ejections: Dict[str, Optional[float]]
    critical_beta0s: Dict[str, float]

    def rows(self) -> List[Dict[str, object]]:
        return [
            {
                "mechanism": name,
                "penalty_quotient": self.mechanisms[name].penalty_quotient,
                "score_bias": self.mechanisms[name].score_bias,
                "safety_bound_epochs": self.safety_bounds[name],
                "inactive_ejection_epoch": self.inactive_ejections[name],
                "semi_active_ejection_epoch": self.semi_active_ejections[name],
                "critical_beta0": self.critical_beta0s[name],
            }
            for name in self.mechanisms
        ]

    def format_text(self) -> str:
        lines = ["Generalized penalty mechanisms — Safety bound, ejections, critical beta0"]
        for row in self.rows():
            semi = row["semi_active_ejection_epoch"]
            lines.append(
                f"  {row['mechanism']:<22} quotient=2^{_log2(row['penalty_quotient']):<4.0f} "
                f"safety bound={row['safety_bound_epochs']:>8.0f} epochs, "
                f"ejection (inactive/semi)={row['inactive_ejection_epoch']:>7.0f}/"
                f"{semi if semi is None else format(semi, '.0f'):>7}, "
                f"critical beta0={row['critical_beta0']:.4f}"
            )
        return "\n".join(lines)


def _log2(value: object) -> float:
    import math

    return math.log2(float(value))  # type: ignore[arg-type]


DEFAULT_MECHANISMS: Dict[str, PenaltyMechanism] = {
    "ethereum (2**26)": PenaltyMechanism.ethereum(),
    "aggressive (2**20)": PenaltyMechanism.aggressive(),
    "moderate (2**24)": PenaltyMechanism.with_quotient(float(2 ** 24)),
    "lenient (2**28)": PenaltyMechanism.lenient(),
    "strict quorum (3/4)": PenaltyMechanism(supermajority=0.75),
}


def run(
    mechanisms: Optional[Dict[str, PenaltyMechanism]] = None,
    p0: float = 0.5,
) -> GeneralizedMechanismResult:
    """Evaluate the headline quantities for every mechanism."""
    chosen = dict(DEFAULT_MECHANISMS if mechanisms is None else mechanisms)
    return GeneralizedMechanismResult(
        mechanisms=chosen,
        safety_bounds={name: m.safety_bound_epochs(p0) for name, m in chosen.items()},
        inactive_ejections={name: m.ejection_epoch_inactive() for name, m in chosen.items()},
        semi_active_ejections={
            name: m.ejection_epoch_semi_active() for name, m in chosen.items()
        },
        critical_beta0s={name: m.critical_beta0(p0) for name, m in chosen.items()},
    )
