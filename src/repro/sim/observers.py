"""Pluggable observers for the slot-level simulation engine.

Observers collect per-epoch measurements from the engine's nodes without
the engine having to know what an experiment cares about.  They are plain
callables invoked at every epoch boundary with the engine and the epoch
number; the provided implementations cover the quantities the paper tracks
(finality progress, stake of validator classes, Byzantine proportion,
Safety) and can dump their history as rows for export.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationEngine

#: An observer is called as ``observer(engine, epoch)`` after epoch processing.
Observer = Callable[["SimulationEngine", int], None]


@dataclass
class FinalityObserver:
    """Tracks justification/finalization progress of every honest node."""

    history: List[Dict[str, object]] = field(default_factory=list)

    def __call__(self, engine: "SimulationEngine", epoch: int) -> None:
        finalized = {
            index: engine.nodes[index].state.finalized_checkpoint.epoch
            for index in engine.honest_indices()
        }
        justified = {
            index: engine.nodes[index].state.current_justified_checkpoint.epoch
            for index in engine.honest_indices()
        }
        self.history.append(
            {
                "epoch": epoch,
                "min_finalized": min(finalized.values()) if finalized else 0,
                "max_finalized": max(finalized.values()) if finalized else 0,
                "min_justified": min(justified.values()) if justified else 0,
                "max_justified": max(justified.values()) if justified else 0,
            }
        )

    def finalization_lag(self) -> List[int]:
        """Per-epoch lag between the epoch number and the best finalized epoch."""
        return [int(row["epoch"]) - int(row["max_finalized"]) for row in self.history]

    def rows(self) -> List[Dict[str, object]]:
        return list(self.history)


@dataclass
class StakeObserver:
    """Tracks the stake of labelled validator groups, as seen by one node."""

    observer_index: int = 0
    history: List[Dict[str, object]] = field(default_factory=list)

    def __call__(self, engine: "SimulationEngine", epoch: int) -> None:
        index = (
            self.observer_index
            if self.observer_index in engine.nodes
            else engine.honest_indices()[0]
        )
        state = engine.nodes[index].state
        by_label: Dict[str, float] = {}
        for validator in state.validators:
            by_label.setdefault(validator.label, 0.0)
            if validator.is_active(epoch):
                by_label[validator.label] += validator.stake
        row: Dict[str, object] = {"epoch": epoch, "observer": index}
        row.update({f"stake_{label}": stake for label, stake in sorted(by_label.items())})
        row["byzantine_proportion"] = state.byzantine_stake_proportion()
        self.history.append(row)

    def byzantine_proportion_series(self) -> List[float]:
        return [float(row["byzantine_proportion"]) for row in self.history]

    def rows(self) -> List[Dict[str, object]]:
        return list(self.history)


@dataclass
class SafetyObserver:
    """Records the first epoch at which conflicting finalization is detected."""

    first_violation_epoch: Optional[int] = None
    history: List[Dict[str, object]] = field(default_factory=list)

    def __call__(self, engine: "SimulationEngine", epoch: int) -> None:
        violated = engine._finalized_chains_conflict()
        if violated and self.first_violation_epoch is None:
            self.first_violation_epoch = epoch
        self.history.append({"epoch": epoch, "safety_violated": violated})

    @property
    def violated(self) -> bool:
        return self.first_violation_epoch is not None

    def rows(self) -> List[Dict[str, object]]:
        return list(self.history)


@dataclass
class LeakObserver:
    """Tracks which honest nodes are in an inactivity leak and the penalties paid."""

    history: List[Dict[str, object]] = field(default_factory=list)

    def __call__(self, engine: "SimulationEngine", epoch: int) -> None:
        in_leak = [
            index
            for index in engine.honest_indices()
            if engine.nodes[index].state.is_in_inactivity_leak()
        ]
        total_stake = sum(
            engine.nodes[index].state.total_active_stake()
            for index in engine.honest_indices()[:1]
        )
        self.history.append(
            {
                "epoch": epoch,
                "nodes_in_leak": len(in_leak),
                "observer_total_stake": total_stake,
            }
        )

    def leak_epochs(self) -> List[int]:
        return [int(row["epoch"]) for row in self.history if row["nodes_in_leak"]]

    def rows(self) -> List[Dict[str, object]]:
        return list(self.history)


class ObserverSet:
    """A bundle of observers sharing the same invocation."""

    def __init__(self, observers: Optional[Sequence[Observer]] = None) -> None:
        self.observers: List[Observer] = list(observers or [])

    def add(self, observer: Observer) -> Observer:
        """Register an observer and return it (for chaining)."""
        self.observers.append(observer)
        return observer

    def __call__(self, engine: "SimulationEngine", epoch: int) -> None:
        for observer in self.observers:
            observer(engine, epoch)

    def __len__(self) -> int:
        return len(self.observers)
