"""The view-sharded, slot-level simulation engine.

The engine advances the synchronized slot clock, asks the scheduled
proposer and attesters of each slot for their actions (through their
agents), pushes the resulting messages through the partially-synchronous
network, delivers due messages to every *view*, and runs epoch processing
per view at epoch boundaries.  Per-epoch global observables (finality
progress, Byzantine proportion, Safety violations) are recorded into a
:class:`~repro.sim.results.SimulationResult`.

**View sharding.**  Validators on the same partition side receive the
identical message stream — every message is either broadcast, targeted at
a whole partition, or withheld from everyone, and senders receive their
own messages through the network with the same delay as their peers — so
their local views are provably equal.  With ``view_sharding=True``
(default) the engine therefore simulates one :class:`~repro.sim.node.Node`
per *view group* (one per partition, plus one per bridge class; a healthy
network is a single group) instead of one per validator, registering one
delivery endpoint per group with the transport.  Per-validator identity
survives through :class:`~repro.sim.node.MemberView` facades
(``engine.nodes``) and per-member inclusion cursors inside the shared
nodes.  ``view_sharding=False`` falls back to one node per validator —
the configuration for differential testing (``tests/test_sim_view_groups``
pins both modes bit-identical) and the only mode whose cost scales with
O(N²).

**Dynamic view splitting.**  Static groups only stay valid while every
message reaches a group's members uniformly.  When the adversary targets
an exact validator subset (``recipients`` on an action), any group the
audience partially covers is copy-on-write split at send time
(:meth:`SimulationEngine._ensure_exact_audience`): the covered members
fork off with a full ``Node.split_clone`` under a fresh endpoint, and
in-flight traffic to the old endpoint is duplicated so both children see
the same past.  With ``merge_views=True``, groups whose state
fingerprints and in-flight streams re-converge are fused back at epoch
starts.  Per-slot cost stays O(live groups): a balancing attack at 10k
validators runs with ~3 groups, not 10k nodes.

**Batch-native message flow.**  Honest committee members of one view are
clustered per slot and their identical votes travel as a single
:class:`~repro.core.attestation_batch.AttestationBatch` message; Byzantine
(non-uniform) votes keep per-validator messages.  Both modes share this
flow — sharding changes who ingests a message, never what is sent.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Set, Tuple, Union

#: Observers are called as ``observer(engine, epoch)`` after each epoch's
#: processing (see :mod:`repro.sim.observers` for ready-made ones).
EngineObserver = Callable[["SimulationEngine", int], None]

from repro.agents.base import (
    AgentContext,
    AttestationAction,
    AttestationBatchAction,
    ProposalAction,
    ValidatorAgent,
)
from repro.network.adversary import Adversary
from repro.network.clock import SlotClock
from repro.network.latency import LatencyModel, resolve_latency_model
from repro.network.message import Message
from repro.network.partition import PartitionSchedule
from repro.network.transport import Network
from repro.sim.node import MemberView, Node
from repro.sim.results import EpochSnapshot, SimulationResult, ViewEvent
from repro.spec.blocktree import BlockTree
from repro.spec.committees import DutyScheduler, EpochDuties
from repro.spec.config import SpecConfig
from repro.spec.finality import conflicting_finalized_checkpoints
from repro.spec.validator import Validator


def _copy_registry(registry: List[Validator]) -> List[Validator]:
    """Deep-copy a registry: stakes evolve independently per view."""
    return [
        Validator(
            index=v.index,
            stake=v.stake,
            inactivity_score=v.inactivity_score,
            slashed=v.slashed,
            exit_epoch=v.exit_epoch,
            label=v.label,
        )
        for v in registry
    ]


class SimulationEngine:
    """Drives validator agents through slots and epochs over shared views."""

    def __init__(
        self,
        registry: List[Validator],
        agents: Dict[int, ValidatorAgent],
        schedule: Optional[PartitionSchedule] = None,
        config: Optional[SpecConfig] = None,
        seed: str = "repro",
        release_withheld_at_epoch_start: bool = True,
        observers: Optional[Sequence["EngineObserver"]] = None,
        view_sharding: bool = True,
        backend: str = "numpy",
        merge_views: bool = False,
        inclusion_horizon_epochs: Optional[int] = 2,
        latency_model: Union[None, str, LatencyModel] = None,
        latency_seed: int = 0,
    ) -> None:
        if set(agents) != {validator.index for validator in registry}:
            raise ValueError("every validator in the registry needs exactly one agent")
        self.config = config or SpecConfig.mainnet()
        self.registry = registry
        self.agents = agents
        self.schedule = schedule or PartitionSchedule.fully_connected()
        self.clock = SlotClock(config=self.config)
        self.scheduler = DutyScheduler(config=self.config, seed=seed)
        self.view_sharding = view_sharding
        self.backend = backend
        #: Re-fuse view groups whose states and in-flight streams have
        #: re-converged (checked at epoch starts).  Off by default: merging
        #: is pure optimisation and the fingerprint comparison costs more
        #: than it saves for scenarios that never re-converge.
        self.merge_views = merge_views
        self.inclusion_horizon_epochs = inclusion_horizon_epochs
        self.release_withheld_at_epoch_start = release_withheld_at_epoch_start
        self.observers: List[EngineObserver] = list(observers or [])
        self._partition_names: Tuple[str, ...] = tuple(self.schedule.partition_names())
        # Global observer tree: every published block, regardless of which
        # nodes received it.  Used to detect conflicting finalized chains
        # even while the partition still hides one branch from the other.
        self._global_tree = BlockTree()

        # ------------------------------------------------------------------
        # View groups: one node per set of validators provably sharing a
        # message stream; each view's registry copy evolves independently
        # per local view (per branch), exactly as in the paper.
        # ------------------------------------------------------------------
        self.view_groups: Dict[str, Tuple[int, ...]] = self._compute_view_groups()
        self.views: Dict[str, Node] = {
            name: Node(
                validator_index=min(members),
                registry=_copy_registry(registry),
                config=self.config,
                backend=backend,
                members=members,
                inclusion_horizon_epochs=inclusion_horizon_epochs,
            )
            for name, members in self.view_groups.items()
        }
        #: Origin class of each live group: split children inherit their
        #: parent's class, and only groups of the same class are merge
        #: candidates (groups born from different reachability classes
        #: have different future delay behaviour even with equal state).
        self._class_of: Dict[str, str] = {name: name for name in self.view_groups}
        self.group_of: Dict[int, str] = {
            index: name
            for name, members in self.view_groups.items()
            for index in members
        }
        #: Per-validator facades over the shared views (the public,
        #: per-node-compatible surface used by agents and observers).
        self.nodes: Dict[int, Union[Node, MemberView]] = {
            validator.index: self.views[self.group_of[validator.index]].for_member(
                validator.index
            )
            for validator in registry
        }
        self._endpoint_of: Dict[int, int] = {
            index: self.views[name].validator_index
            for index, name in self.group_of.items()
        }
        self._view_by_endpoint: Dict[int, Node] = {
            view.validator_index: view for view in self.views.values()
        }
        self._endpoints: Tuple[int, ...] = tuple(sorted(self._view_by_endpoint))

        #: Optional realistic-latency model (a name like ``"gossip"`` or
        #: a bound/unbound :class:`~repro.network.latency.LatencyModel`).
        #: ``None`` keeps the legacy uniform-delay rule byte-for-byte.
        self.latency_model = resolve_latency_model(latency_model, seed=latency_seed)
        if self.latency_model is not None:
            self.latency_model.bind(
                self.schedule,
                [validator.index for validator in registry],
                self.config.seconds_per_slot,
            )
        self.network = Network(
            self.schedule,
            participants=list(self._endpoints),
            latency_model=self.latency_model,
        )
        self.network.set_view_hooks(
            lambda endpoint: self._view_by_endpoint[endpoint].members,
            self._ensure_exact_audience,
        )
        byzantine_indices = {
            index for index, agent in agents.items() if agent.is_byzantine
        }
        self.adversary = Adversary(
            byzantine_indices=byzantine_indices,
            network=self.network,
            schedule=self.schedule,
        )
        self.adversary.set_endpoint_resolver(self._endpoint_of.__getitem__)
        self.adversary.set_split_hook(self._ensure_exact_audience)

        #: Timeline of dynamic view splits/merges, in occurrence order.
        self.view_events: List[ViewEvent] = []
        self._peak_views = len(self.views)
        self._current_slot = 0
        self._current_time = 0.0

        # Views containing at least one honest member drive the global
        # Safety/Liveness observables (duplicated states add nothing).
        self._honest_views: List[Node] = [
            view
            for view in self.views.values()
            if any(not self.agents[m].is_byzantine for m in view.members)
        ]
        # Memoized safety check (see _finalized_chains_conflict).
        self._safety_latched = False
        self._safety_cache: Optional[Tuple[Tuple, bool, bool]] = None
        # Per-epoch duty cache: duties plus per-slot committee sets, so a
        # slot's contexts stop recomputing/rescannning committees per
        # validator.
        self._duty_cache: Dict[int, Tuple[EpochDuties, List[frozenset]]] = {}

    # ------------------------------------------------------------------
    # View-group computation
    # ------------------------------------------------------------------
    def _compute_view_groups(self) -> Dict[str, Tuple[int, ...]]:
        """Partition the registry into groups with identical message streams.

        Reachability is uniform inside a partition and among bridge
        validators, but the adversary's partition-targeted audiences
        additionally include every *Byzantine* validator — so each
        reachability class splits by control: a Byzantine validator inside
        a partition receives cross-branch Byzantine traffic its honest
        partition peers never see (an all-honest group is the common case
        and stays whole).  Without sharding every validator is its own
        group — the per-node fallback for views that must be allowed to
        diverge.
        """
        indices = [validator.index for validator in self.registry]
        if not self.view_sharding:
            return {f"node-{index}": (index,) for index in indices}

        groups: Dict[str, Tuple[int, ...]] = {}

        def unique_name(base: str) -> str:
            # Partition names are user-chosen, so derived names ("bridge",
            # "<name>-byzantine") can collide with them; disambiguate
            # deterministically instead of silently dropping a group.
            name = base
            suffix = 2
            while name in groups:
                name = f"{base}~{suffix}"
                suffix += 1
            return name

        def add_split_by_control(name: str, members: Sequence[int]) -> None:
            byzantine = tuple(i for i in members if self.agents[i].is_byzantine)
            honest = tuple(i for i in members if not self.agents[i].is_byzantine)
            if honest:
                groups[unique_name(name)] = honest
            if byzantine:
                groups[unique_name(f"{name}-byzantine")] = byzantine

        if not self._partition_names:
            add_split_by_control("global", indices)
            return groups
        index_set = set(indices)
        assigned: Set[int] = set()
        for name in self._partition_names:
            members = sorted(set(self.schedule.members_of(name)) & index_set)
            if members:
                add_split_by_control(name, members)
                assigned |= set(members)
        bridge = [index for index in indices if index not in assigned]
        add_split_by_control("bridge", bridge)
        return groups

    # ------------------------------------------------------------------
    # Dynamic view splitting / merging
    # ------------------------------------------------------------------
    def _ensure_exact_audience(self, recipients: Tuple[int, ...]) -> Tuple[int, ...]:
        """Endpoints covering exactly ``recipients``, splitting groups as needed.

        Installed as the adversary's split hook.  Any view group the
        audience only partially covers is copy-on-write split *before*
        the message is scheduled: the split happens at send time, which
        is safe because the clone is exact and deliveries only occur
        between slot phases — the two children stay bit-identical until
        the diverging message actually lands.  Per-node simulations have
        singleton groups, which a subset always covers fully or not at
        all, so this degenerates to plain endpoint resolution there.
        """
        target = set(recipients)
        partial = [
            name
            for name, members in self.view_groups.items()
            if 0 < len(target.intersection(members)) < len(members)
        ]
        for name in partial:
            inside = tuple(i for i in self.view_groups[name] if i in target)
            self._split_group(name, inside)
        seen: Set[int] = set()
        endpoints: List[int] = []
        for index in recipients:
            endpoint = self._endpoint_of[index]
            if endpoint not in seen:
                seen.add(endpoint)
                endpoints.append(endpoint)
        return tuple(endpoints)

    def _split_group(self, name: str, subset: Tuple[int, ...]) -> str:
        """Fork the group ``name`` along ``subset`` (a strict, nonempty subset).

        The side keeping the old representative keeps the existing node
        and transport endpoint; the other side gets a ``split_clone``
        registered under a new endpoint (its lowest member, which — being
        a non-representative — cannot collide with any live endpoint).
        In-flight and withheld messages addressed to the old endpoint are
        duplicated for the new one, and every endpoint-derived cache
        (audiences, facades, honest-view list) is rebuilt.  Returns the
        child group's name.
        """
        members = self.view_groups[name]
        subset_set = set(subset)
        node = self.views[name]
        old_rep = node.validator_index
        if old_rep in subset_set:
            stay = tuple(i for i in members if i in subset_set)
            move = tuple(i for i in members if i not in subset_set)
        else:
            stay = tuple(i for i in members if i not in subset_set)
            move = tuple(i for i in members if i in subset_set)
        new_rep = min(move)
        child_name = f"{name}/{new_rep}"
        while child_name in self.view_groups:  # pragma: no cover - defensive
            child_name = f"{child_name}~2"

        clone = node.split_clone(move, new_rep)
        node.restrict_members(stay)
        self.view_groups[name] = stay
        self.view_groups[child_name] = move
        self.views[child_name] = clone
        self._class_of[child_name] = self._class_of[name]
        for index in move:
            self.group_of[index] = child_name
            self.nodes[index] = clone.for_member(index)
            self._endpoint_of[index] = new_rep
        self._view_by_endpoint[new_rep] = clone
        self._endpoints = tuple(sorted(self._view_by_endpoint))
        self.network.split_endpoint(old_rep, new_rep)
        self.adversary.notify_topology_changed()
        self._refresh_honest_views()
        self.view_events.append(
            ViewEvent(
                slot=self._current_slot,
                time=self._current_time,
                kind="split",
                parent=name,
                child=child_name,
                members=move,
            )
        )
        self._peak_views = max(self._peak_views, len(self.views))
        return child_name

    def _try_merges(self) -> None:
        """Re-fuse view groups whose observable futures have re-converged.

        Two groups of the same origin class may merge when their nodes'
        state fingerprints are equal *and* their endpoints' in-flight and
        withheld message streams are identical — the exact converse of
        the split condition, so the grouped==per-node contract is
        untouched (per-node runs never merge: singleton groups of
        distinct validators never share a class).  Runs at epoch starts
        only; fingerprints are computed once per group per attempt.
        """
        by_class: Dict[str, List[str]] = {}
        for group_name in self.view_groups:
            by_class.setdefault(self._class_of[group_name], []).append(group_name)
        fingerprints: Dict[str, Tuple] = {}
        for names in by_class.values():
            if len(names) < 2:
                continue
            # Lowest representative first: the survivor of every merge is
            # the lower-endpoint node, preserving the rep = min(members)
            # convention transitively.
            names.sort(key=lambda n: self.views[n].validator_index)
            survivors: List[str] = []
            for candidate in names:
                merged = False
                for keeper in survivors:
                    if self._can_merge(keeper, candidate, fingerprints):
                        self._merge_groups(keeper, candidate)
                        merged = True
                        break
                if not merged:
                    survivors.append(candidate)

    def _can_merge(
        self, keep_name: str, drop_name: str, fingerprints: Dict[str, Tuple]
    ) -> bool:
        keep, drop = self.views[keep_name], self.views[drop_name]
        if self.network.pending_for(keep.validator_index) != self.network.pending_for(
            drop.validator_index
        ):
            return False
        if self.network.withheld_for(keep.validator_index) != self.network.withheld_for(
            drop.validator_index
        ):
            return False
        for name, view in ((keep_name, keep), (drop_name, drop)):
            if name not in fingerprints:
                fingerprints[name] = view.state_fingerprint()
        return fingerprints[keep_name] == fingerprints[drop_name]

    def _merge_groups(self, keep_name: str, drop_name: str) -> None:
        """Absorb ``drop_name`` into ``keep_name`` (caller checked legality)."""
        keep, drop = self.views[keep_name], self.views[drop_name]
        drop_rep = drop.validator_index
        moved = drop.members
        keep.absorb_members(drop)
        self.view_groups[keep_name] = keep.members
        del self.view_groups[drop_name]
        del self.views[drop_name]
        del self._class_of[drop_name]
        for index in moved:
            self.group_of[index] = keep_name
            self.nodes[index] = keep.for_member(index)
            self._endpoint_of[index] = keep.validator_index
        del self._view_by_endpoint[drop_rep]
        self._endpoints = tuple(sorted(self._view_by_endpoint))
        # In-flight duplicates addressed to the dead endpoint are dropped
        # by _deliver_due (the stream equality check guarantees the
        # surviving endpoint carries identical copies).
        self.network.deregister_endpoint(drop_rep)
        self.adversary.notify_topology_changed()
        self._refresh_honest_views()
        self.view_events.append(
            ViewEvent(
                slot=self._current_slot,
                time=self._current_time,
                kind="merge",
                parent=keep_name,
                child=drop_name,
                members=moved,
            )
        )

    def _refresh_honest_views(self) -> None:
        self._honest_views = [
            view
            for view in self.views.values()
            if any(not self.agents[m].is_byzantine for m in view.members)
        ]
        # The safety fingerprint is positional over the honest views, so a
        # topology change invalidates the memo (the latch survives).
        self._safety_cache = None

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def honest_indices(self) -> List[int]:
        """Indices of honest validators."""
        return [index for index, agent in self.agents.items() if not agent.is_byzantine]

    def byzantine_indices(self) -> List[int]:
        """Indices of Byzantine validators."""
        return [index for index, agent in self.agents.items() if agent.is_byzantine]

    def _duties_for_epoch(self, epoch: int) -> Tuple[EpochDuties, List[frozenset]]:
        cached = self._duty_cache.get(epoch)
        if cached is None:
            duties = self.scheduler.duties_for_epoch(epoch, self.registry)
            cached = (duties, duties.committee_sets())
            self._duty_cache[epoch] = cached
        return cached

    def _context_for(self, validator_index: int, slot: int, time: float) -> AgentContext:
        epoch = self.config.epoch_of_slot(slot)
        duties, committee_sets = self._duties_for_epoch(epoch)
        offset = slot % self.config.slots_per_epoch
        return AgentContext(
            validator_index=validator_index,
            slot=slot,
            epoch=epoch,
            time=time,
            node=self.nodes[validator_index],
            duties=duties,
            is_proposer=duties.proposers[offset] == validator_index,
            is_attester=validator_index in committee_sets[offset],
            partition_names=self._partition_names,
        )

    def _deliver_due(self, time: float) -> None:
        for delivery in self.network.deliveries_until(time):
            view = self._view_by_endpoint.get(delivery.recipient)
            if view is not None:
                view.receive(delivery.message)

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------
    def _publish_proposal(self, action: ProposalAction, sender: int, time: float) -> None:
        message = Message.block(action.block, sender=sender, sent_at=time)
        if action.block.parent_root in self._global_tree:
            self._global_tree.add_block(action.block)
        if action.recipients is not None:
            self.adversary.send_to_validators(message, action.recipients, action.delay)
        elif action.audience is None:
            self.network.broadcast(message, delay=action.delay)
        else:
            self.adversary.send_to_partition(message, action.audience, delay=action.delay)

    def _route_attestation_message(
        self,
        message: Message,
        audience: Optional[str],
        withhold: bool,
        recipients: Optional[Tuple[int, ...]] = None,
        delay: float = 0.0,
    ) -> None:
        if withhold:
            self.adversary.withhold(message, self._endpoints)
            return
        if recipients is not None:
            self.adversary.send_to_validators(message, recipients, delay)
        elif audience is None:
            self.network.broadcast(message, delay=delay)
        else:
            self.adversary.send_to_partition(message, audience, delay=delay)

    def _publish_attestation(
        self, action: AttestationAction, sender: int, time: float
    ) -> None:
        message = Message.attestation(action.attestation, sender=sender, sent_at=time)
        self._route_attestation_message(
            message,
            action.audience,
            action.withhold,
            action.recipients,
            action.delay,
        )

    def _publish_batch(self, action: AttestationBatchAction, time: float) -> None:
        batch = action.batch
        message = Message.attestation_batch(
            batch, sender=int(batch.validators[0]), sent_at=time
        )
        self._route_attestation_message(
            message,
            action.audience,
            action.withhold,
            action.recipients,
            action.delay,
        )

    # ------------------------------------------------------------------
    # Slot phases
    # ------------------------------------------------------------------
    def _run_proposals(self, slot: int, time: float) -> None:
        duties, _ = self._duties_for_epoch(self.config.epoch_of_slot(slot))
        proposer = duties.proposer_for_slot(slot, self.config.slots_per_epoch)
        agent = self.agents[proposer]
        ctx = self._context_for(proposer, slot, time)
        for action in agent.propose(ctx):
            self._publish_proposal(action, sender=proposer, time=time)

    def _run_attestations(self, slot: int, time: float) -> None:
        """Collect and publish the slot committee's attestations.

        Batch-capable committee members are clustered per (view group,
        committee key) and asked once per cluster; per-validator agents
        keep the per-member path.  Clusters publish after the singles, in
        first-appearance order — a fixed, deterministic schedule shared by
        both sharding modes.
        """
        duties, _ = self._duties_for_epoch(self.config.epoch_of_slot(slot))
        committee = duties.committee_for_slot(slot, self.config.slots_per_epoch)
        # Insertion order of the dict IS the first-appearance order.
        clusters: Dict[Tuple[str, Hashable], List[int]] = {}
        for index in committee:
            agent = self.agents[index]
            key = agent.committee_key()
            if key is None:
                ctx = self._context_for(index, slot, time)
                for action in agent.attest(ctx):
                    self._publish_attestation(action, sender=index, time=time)
                continue
            clusters.setdefault((self.group_of[index], key), []).append(index)
        for members in clusters.values():
            leader = members[0]
            ctx = self._context_for(leader, slot, time)
            for action in self.agents[leader].attest_committee(ctx, members):
                if isinstance(action, AttestationBatchAction):
                    self._publish_batch(action, time=time)
                else:
                    self._publish_attestation(
                        action, sender=action.attestation.validator_index, time=time
                    )

    # ------------------------------------------------------------------
    # Epoch bookkeeping
    # ------------------------------------------------------------------
    def _process_epoch_on_all_nodes(self, epoch: int) -> None:
        for view in self.views.values():
            view.process_epoch_end(epoch)

    def _safety_fingerprint(self) -> Tuple:
        """Cheap summary of everything the safety check depends on."""
        return tuple(
            (len(view.state.finalized_checkpoints), view.state.finalized_checkpoint)
            for view in self._honest_views
        )

    def _finalized_chains_conflict(self) -> bool:
        """Global Safety check over the honest views' finalized checkpoints.

        Two finalized chains conflict when neither finalized checkpoint is an
        ancestor of (or equal to) the other in the global block tree — the
        paper's Safety property (one finalized chain must be a prefix of the
        other).  Checkpoints for blocks the global tree has not recorded are
        compared by epoch/root only.

        Memoized: finalized checkpoints only accumulate, so a detected
        violation latches, and epochs on which no view's finalized
        checkpoints changed skip the O(views²) rescan entirely (unless a
        previous scan had to skip an unresolved root, which the growing
        global tree could since have resolved).
        """
        if self._safety_latched:
            return True
        fingerprint = self._safety_fingerprint()
        if self._safety_cache is not None:
            cached_fingerprint, cached_result, cached_unresolved = self._safety_cache
            if cached_fingerprint == fingerprint and not cached_unresolved:
                return cached_result
        result, unresolved = self._scan_finalized_conflicts()
        self._safety_cache = (fingerprint, result, unresolved)
        if result:
            self._safety_latched = True
        return result

    def _scan_finalized_conflicts(self) -> Tuple[bool, bool]:
        checkpoints = [view.state.finalized_checkpoint for view in self._honest_views]
        unresolved = False
        for i, first in enumerate(checkpoints):
            for second in checkpoints[i + 1 :]:
                if first == second:
                    continue
                if first.epoch == second.epoch and first.root != second.root:
                    return True, unresolved
                low, high = sorted((first, second), key=lambda c: c.epoch)
                if low.root not in self._global_tree or high.root not in self._global_tree:
                    unresolved = True
                    continue
                if not self._global_tree.is_ancestor(low.root, high.root):
                    return True, unresolved
        # Also cover conflicts at intermediate finalized epochs.
        honest_states = [view.state for view in self._honest_views]
        return bool(conflicting_finalized_checkpoints(honest_states)), unresolved

    def _snapshot(self, epoch: int) -> EpochSnapshot:
        finalized_epoch_by_node: Dict[int, int] = {}
        for view in self.views.values():
            finalized = view.state.finalized_checkpoint.epoch
            for member in view.members:
                finalized_epoch_by_node[member] = finalized
        honest = self.honest_indices()
        representative = self.nodes[honest[0]].state if honest else None
        return EpochSnapshot(
            epoch=epoch,
            finalized_epoch_by_node=finalized_epoch_by_node,
            byzantine_proportion=(
                representative.byzantine_stake_proportion() if representative else 0.0
            ),
            any_in_leak=any(
                view.state.is_in_inactivity_leak() for view in self._honest_views
            ),
            safety_violated=self._finalized_chains_conflict(),
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, num_epochs: int) -> SimulationResult:
        """Run the simulation for ``num_epochs`` epochs and return the result."""
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        snapshots: List[EpochSnapshot] = []
        slots_per_epoch = self.config.slots_per_epoch
        total_slots = num_epochs * slots_per_epoch

        for slot in range(total_slots):
            slot_start = self.clock.start_of_slot(slot)
            epoch = self.config.epoch_of_slot(slot)
            self._current_slot = slot
            self._current_time = slot_start

            if self.clock.is_epoch_start(slot):
                if epoch > 0:
                    # Close the books on the previous epoch on every view.
                    self._process_epoch_on_all_nodes(epoch - 1)
                    snapshots.append(self._snapshot(epoch - 1))
                    for observer in self.observers:
                        observer(self, epoch - 1)
                if self.release_withheld_at_epoch_start and self.network.withheld_count():
                    self.adversary.release_all(slot_start)
                if self.merge_views:
                    self._try_merges()
                for index, agent in self.agents.items():
                    agent.on_epoch_start(self._context_for(index, slot, slot_start))

            # Deliver messages due by the start of the slot, then propose.
            # Slot 0 is occupied by the genesis block, so proposals start at slot 1.
            self._deliver_due(slot_start)
            if slot > 0:
                self._run_proposals(slot, slot_start)

            # Attestations are produced a third of the way into the slot.
            attestation_time = self.clock.attestation_deadline(slot)
            self._current_time = attestation_time
            self._deliver_due(attestation_time)
            self._run_attestations(slot, attestation_time)

            # Flush deliveries due before the end of the slot.
            self._deliver_due(self.clock.start_of_slot(slot + 1))

        # Final epoch processing.
        self._process_epoch_on_all_nodes(num_epochs - 1)
        snapshots.append(self._snapshot(num_epochs - 1))
        for observer in self.observers:
            observer(self, num_epochs - 1)

        slashed: Set[int] = set()
        for view in self._honest_views:
            for validator in view.state.validators:
                if validator.slashed:
                    slashed.add(validator.index)

        return SimulationResult(
            epochs_run=num_epochs,
            honest_indices=self.honest_indices(),
            byzantine_indices=self.byzantine_indices(),
            final_states={index: node.state for index, node in self.nodes.items()},
            snapshots=snapshots,
            transport_stats=self.network.stats,
            slashed_indices=slashed,
            view_groups=dict(self.view_groups),
            view_events=list(self.view_events),
            peak_view_count=self._peak_views,
        )
