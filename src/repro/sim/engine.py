"""The slot-level simulation engine.

The engine advances the synchronized slot clock, asks the scheduled
proposer and attesters of each slot for their actions (through their
agents), pushes the resulting messages through the partially-synchronous
network, delivers due messages to every node, and runs epoch processing on
each node at epoch boundaries.  Per-epoch global observables (finality
progress, Byzantine proportion, Safety violations) are recorded into a
:class:`~repro.sim.results.SimulationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

#: Observers are called as ``observer(engine, epoch)`` after each epoch's
#: processing (see :mod:`repro.sim.observers` for ready-made ones).
EngineObserver = Callable[["SimulationEngine", int], None]

from repro.agents.base import AgentContext, AttestationAction, ProposalAction, ValidatorAgent
from repro.network.adversary import Adversary
from repro.network.clock import SlotClock
from repro.network.message import Message
from repro.network.partition import PartitionSchedule
from repro.network.transport import Network
from repro.sim.node import Node
from repro.sim.results import EpochSnapshot, SimulationResult
from repro.spec.blocktree import BlockTree
from repro.spec.committees import DutyScheduler
from repro.spec.config import SpecConfig
from repro.spec.finality import conflicting_finalized_checkpoints
from repro.spec.validator import Validator


class SimulationEngine:
    """Drives validator agents through slots and epochs."""

    def __init__(
        self,
        registry: List[Validator],
        agents: Dict[int, ValidatorAgent],
        schedule: Optional[PartitionSchedule] = None,
        config: Optional[SpecConfig] = None,
        seed: str = "repro",
        release_withheld_at_epoch_start: bool = True,
        observers: Optional[Sequence["EngineObserver"]] = None,
    ) -> None:
        if set(agents) != {validator.index for validator in registry}:
            raise ValueError("every validator in the registry needs exactly one agent")
        self.config = config or SpecConfig.mainnet()
        self.registry = registry
        self.agents = agents
        self.schedule = schedule or PartitionSchedule.fully_connected()
        self.clock = SlotClock(config=self.config)
        self.scheduler = DutyScheduler(config=self.config, seed=seed)
        self.network = Network(self.schedule, participants=[v.index for v in registry])
        byzantine_indices = {
            index for index, agent in agents.items() if agent.is_byzantine
        }
        self.adversary = Adversary(
            byzantine_indices=byzantine_indices,
            network=self.network,
            schedule=self.schedule,
        )
        self.release_withheld_at_epoch_start = release_withheld_at_epoch_start
        self.observers: List[EngineObserver] = list(observers or [])
        # Global observer tree: every published block, regardless of which
        # nodes received it.  Used to detect conflicting finalized chains
        # even while the partition still hides one branch from the other.
        self._global_tree = BlockTree()
        # Every node gets its own copy of the registry: stakes evolve
        # independently per local view (per branch), exactly as in the paper.
        self.nodes: Dict[int, Node] = {
            validator.index: Node(
                validator_index=validator.index,
                registry=[
                    Validator(
                        index=v.index,
                        stake=v.stake,
                        inactivity_score=v.inactivity_score,
                        slashed=v.slashed,
                        exit_epoch=v.exit_epoch,
                        label=v.label,
                    )
                    for v in registry
                ],
                config=self.config,
            )
            for validator in registry
        }

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def honest_indices(self) -> List[int]:
        """Indices of honest validators."""
        return [index for index, agent in self.agents.items() if not agent.is_byzantine]

    def byzantine_indices(self) -> List[int]:
        """Indices of Byzantine validators."""
        return [index for index, agent in self.agents.items() if agent.is_byzantine]

    def _context_for(self, validator_index: int, slot: int, time: float) -> AgentContext:
        epoch = self.config.epoch_of_slot(slot)
        duties = self.scheduler.duties_for_epoch(epoch, self.registry)
        proposer = duties.proposer_for_slot(slot, self.config.slots_per_epoch)
        committee = duties.committee_for_slot(slot, self.config.slots_per_epoch)
        return AgentContext(
            validator_index=validator_index,
            slot=slot,
            epoch=epoch,
            time=time,
            node=self.nodes[validator_index],
            duties=duties,
            is_proposer=proposer == validator_index,
            is_attester=validator_index in committee,
            partition_names=self.schedule.partition_names(),
        )

    def _deliver_due(self, time: float) -> None:
        for delivery in self.network.deliveries_until(time):
            node = self.nodes.get(delivery.recipient)
            if node is not None:
                node.receive(delivery.message)

    def _publish_proposal(self, action: ProposalAction, sender: int, time: float) -> None:
        message = Message.block(action.block, sender=sender, sent_at=time)
        if action.block.parent_root in self._global_tree:
            self._global_tree.add_block(action.block)
        # The proposer processes its own block immediately.
        self.nodes[sender].receive(message)
        if action.audience is None:
            self.network.broadcast(message, exclude={sender})
        else:
            self.adversary.send_to_partition(message, action.audience)

    def _publish_attestation(
        self, action: AttestationAction, sender: int, time: float
    ) -> None:
        message = Message.attestation(action.attestation, sender=sender, sent_at=time)
        self.nodes[sender].receive(message)
        if action.withhold:
            recipients = [index for index in self.nodes if index != sender]
            self.adversary.withhold(message, recipients)
            return
        if action.audience is None:
            self.network.broadcast(message, exclude={sender})
        else:
            self.adversary.send_to_partition(message, action.audience)

    # ------------------------------------------------------------------
    # Epoch bookkeeping
    # ------------------------------------------------------------------
    def _process_epoch_on_all_nodes(self, epoch: int) -> None:
        for node in self.nodes.values():
            node.process_epoch_end(epoch)

    def _finalized_chains_conflict(self) -> bool:
        """Global Safety check over the honest nodes' finalized checkpoints.

        Two finalized chains conflict when neither finalized checkpoint is an
        ancestor of (or equal to) the other in the global block tree — the
        paper's Safety property (one finalized chain must be a prefix of the
        other).  Checkpoints for blocks the global tree has not recorded are
        compared by epoch/root only.
        """
        honest = self.honest_indices()
        checkpoints = [self.nodes[i].state.finalized_checkpoint for i in honest]
        for i, first in enumerate(checkpoints):
            for second in checkpoints[i + 1 :]:
                if first == second:
                    continue
                if first.epoch == second.epoch and first.root != second.root:
                    return True
                low, high = sorted((first, second), key=lambda c: c.epoch)
                if low.root not in self._global_tree or high.root not in self._global_tree:
                    continue
                if not self._global_tree.is_ancestor(low.root, high.root):
                    return True
        # Also cover conflicts at intermediate finalized epochs.
        honest_states = [self.nodes[i].state for i in honest]
        return bool(conflicting_finalized_checkpoints(honest_states))

    def _snapshot(self, epoch: int) -> EpochSnapshot:
        honest = self.honest_indices()
        honest_states = [self.nodes[i].state for i in honest]
        representative = self.nodes[honest[0]].state if honest else None
        return EpochSnapshot(
            epoch=epoch,
            finalized_epoch_by_node={
                index: self.nodes[index].state.finalized_checkpoint.epoch
                for index in self.nodes
            },
            byzantine_proportion=(
                representative.byzantine_stake_proportion() if representative else 0.0
            ),
            any_in_leak=any(state.is_in_inactivity_leak() for state in honest_states),
            safety_violated=self._finalized_chains_conflict(),
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, num_epochs: int) -> SimulationResult:
        """Run the simulation for ``num_epochs`` epochs and return the result."""
        if num_epochs <= 0:
            raise ValueError("num_epochs must be positive")
        snapshots: List[EpochSnapshot] = []
        slots_per_epoch = self.config.slots_per_epoch
        total_slots = num_epochs * slots_per_epoch

        for slot in range(total_slots):
            slot_start = self.clock.start_of_slot(slot)
            epoch = self.config.epoch_of_slot(slot)

            if self.clock.is_epoch_start(slot):
                if epoch > 0:
                    # Close the books on the previous epoch on every node.
                    self._process_epoch_on_all_nodes(epoch - 1)
                    snapshots.append(self._snapshot(epoch - 1))
                    for observer in self.observers:
                        observer(self, epoch - 1)
                if self.release_withheld_at_epoch_start and self.network.withheld_count():
                    self.adversary.release_all(slot_start)
                for index, agent in self.agents.items():
                    agent.on_epoch_start(self._context_for(index, slot, slot_start))

            # Deliver messages due by the start of the slot, then propose.
            # Slot 0 is occupied by the genesis block, so proposals start at slot 1.
            self._deliver_due(slot_start)
            if slot > 0:
                for index, agent in self.agents.items():
                    ctx = self._context_for(index, slot, slot_start)
                    if not ctx.is_proposer:
                        continue
                    for action in agent.propose(ctx):
                        self._publish_proposal(action, sender=index, time=slot_start)

            # Attestations are produced a third of the way into the slot.
            attestation_time = self.clock.attestation_deadline(slot)
            self._deliver_due(attestation_time)
            for index, agent in self.agents.items():
                ctx = self._context_for(index, slot, attestation_time)
                if not ctx.is_attester:
                    continue
                for action in agent.attest(ctx):
                    self._publish_attestation(action, sender=index, time=attestation_time)

            # Flush deliveries due before the end of the slot.
            self._deliver_due(self.clock.start_of_slot(slot + 1))

        # Final epoch processing.
        self._process_epoch_on_all_nodes(num_epochs - 1)
        snapshots.append(self._snapshot(num_epochs - 1))
        for observer in self.observers:
            observer(self, num_epochs - 1)

        slashed: Set[int] = set()
        for index in self.honest_indices():
            for validator in self.nodes[index].state.validators:
                if validator.slashed:
                    slashed.add(validator.index)

        return SimulationResult(
            epochs_run=num_epochs,
            honest_indices=self.honest_indices(),
            byzantine_indices=self.byzantine_indices(),
            final_states={index: node.state for index, node in self.nodes.items()},
            snapshots=snapshots,
            transport_stats=self.network.stats,
            slashed_indices=slashed,
        )
