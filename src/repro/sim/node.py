"""A validator node: local view of the chain plus protocol bookkeeping.

Each simulated validator runs a node holding its own fork-choice store,
beacon state, FFG vote pool and slashing detector.  Nodes only learn about
blocks and attestations through messages delivered by the network, so two
nodes separated by a partition genuinely diverge — which is the whole point
of the paper's scenarios.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.core.backend import StakeBackend, get_backend
from repro.network.message import Message, MessageKind
from repro.spec.attestation import Attestation
from repro.spec.block import BeaconBlock
from repro.spec.checkpoint import Checkpoint, FFGVote
from repro.spec.config import SpecConfig
from repro.spec.finality import FFGVotePool
from repro.spec.forkchoice import Store
from repro.spec.slashing import SlashingDetector, SlashingEvidence
from repro.spec.state import BeaconState
from repro.spec.state_transition import ChainHistory, EpochReport, process_epoch
from repro.spec.types import Root
from repro.spec.validator import Validator


@dataclass
class PendingQueues:
    """Blocks and attestations whose ancestry has not been delivered yet."""

    blocks: List[BeaconBlock] = field(default_factory=list)
    attestations: List[Attestation] = field(default_factory=list)


class Node:
    """Local protocol instance of one validator."""

    def __init__(
        self,
        validator_index: int,
        registry: List[Validator],
        config: Optional[SpecConfig] = None,
        backend: Union[str, StakeBackend] = "numpy",
    ) -> None:
        self.validator_index = validator_index
        self.config = config or SpecConfig.mainnet()
        #: Stake-dynamics kernel driving this node's epoch processing
        #: (FFG justification, rewards, inactivity and slashing all run
        #: array-native on it).
        self.backend = get_backend(backend, population=len(registry))
        self.state = BeaconState.genesis(registry, self.config)
        self.store = Store(config=self.config)
        self.pool = FFGVotePool()
        self.detector = SlashingDetector()
        self.history = ChainHistory()
        self.pending = PendingQueues()
        #: Attestations seen but not yet included in a block this node built.
        self.attestations_for_inclusion: List[Attestation] = []
        #: Attestations seen, grouped by target epoch (activity accounting).
        self.attestations_by_epoch: Dict[int, List[Attestation]] = defaultdict(list)
        #: Evidence known to this node and not yet included in one of its blocks.
        self.evidence_for_inclusion: List[SlashingEvidence] = []
        #: Validators for which evidence was included in a block on this
        #: node's chain, per epoch (consumed at epoch processing).
        self.slashings_observed: Dict[int, Set[int]] = defaultdict(set)
        #: All blocks received (for diagnostics).
        self.blocks_received = 0
        self.attestations_received = 0
        #: Balances as of the last justified checkpoint, used to weight
        #: fork-choice votes (the real protocol weighs LMD-GHOST votes with
        #: the justified-state balances so diverging views still converge).
        self._justified_stakes: Dict[int, float] = {
            validator.index: validator.stake for validator in self.state.validators
        }

    # ------------------------------------------------------------------
    # Message ingestion
    # ------------------------------------------------------------------
    def receive(self, message: Message) -> None:
        """Process a delivered network message."""
        if message.kind is MessageKind.BLOCK:
            self._receive_block(message.payload)  # type: ignore[arg-type]
        elif message.kind is MessageKind.ATTESTATION:
            self._receive_attestation(message.payload)  # type: ignore[arg-type]
        elif message.kind is MessageKind.SLASHING_EVIDENCE:
            self._receive_evidence(message.payload)  # type: ignore[arg-type]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown message kind {message.kind}")

    def _receive_block(self, block: BeaconBlock) -> None:
        self.blocks_received += 1
        if block.parent_root not in self.store.tree:
            self.pending.blocks.append(block)
            return
        if self.store.on_block(block):
            # Attestations and evidence carried by the block count as seen.
            for attestation in block.attestations:
                self._receive_attestation(attestation)
            for validator_index in block.slashing_evidence:
                epoch = self.config.epoch_of_slot(block.slot)
                self.slashings_observed[epoch].add(validator_index)
            self._drain_pending()

    def _receive_attestation(self, attestation: Attestation) -> None:
        self.attestations_received += 1
        if attestation.head_root not in self.store.tree:
            self.pending.attestations.append(attestation)
            return
        self._ingest_attestation(attestation)

    def _ingest_attestation(self, attestation: Attestation) -> None:
        self.store.on_attestation(attestation)
        self.pool.add_attestation(attestation)
        self.attestations_by_epoch[attestation.target_epoch].append(attestation)
        self.attestations_for_inclusion.append(attestation)
        evidence = self.detector.observe(attestation)
        if evidence is not None:
            self.evidence_for_inclusion.append(evidence)

    def _receive_evidence(self, evidence: SlashingEvidence) -> None:
        if not self.detector.has_evidence_against(evidence.validator_index):
            self.evidence_for_inclusion.append(evidence)
            # Feed both attestations to the detector so duplicates are ignored.
            self.detector.observe(evidence.first)
            self.detector.observe(evidence.second)

    def _drain_pending(self) -> None:
        """Retry queued blocks/attestations whose dependencies may now exist."""
        progress = True
        while progress:
            progress = False
            still_pending: List[BeaconBlock] = []
            for block in self.pending.blocks:
                if block.parent_root in self.store.tree:
                    if self.store.on_block(block):
                        for attestation in block.attestations:
                            self._ingest_attestation(attestation)
                        for validator_index in block.slashing_evidence:
                            epoch = self.config.epoch_of_slot(block.slot)
                            self.slashings_observed[epoch].add(validator_index)
                    progress = True
                else:
                    still_pending.append(block)
            self.pending.blocks = still_pending
            still_pending_attestations: List[Attestation] = []
            for attestation in self.pending.attestations:
                if attestation.head_root in self.store.tree:
                    self._ingest_attestation(attestation)
                    progress = True
                else:
                    still_pending_attestations.append(attestation)
            self.pending.attestations = still_pending_attestations

    # ------------------------------------------------------------------
    # Chain views used by agents
    # ------------------------------------------------------------------
    def head(self) -> Root:
        """Current fork-choice head (votes weighted by justified-state balances)."""
        return self.store.get_head(self.state, stake_override=self._justified_stakes)

    def branch_heads(self) -> List[Root]:
        """All leaf roots of the local tree (competing branch heads)."""
        return list(self.store.tree.leaves())

    def checkpoint_of_epoch(self, epoch: int, head: Optional[Root] = None) -> Checkpoint:
        """Checkpoint of ``epoch`` on the chain of ``head`` (default: own head)."""
        head_root = head if head is not None else self.head()
        return self.store.checkpoint_for_epoch(epoch, head_root)

    def attestation_for(
        self,
        slot: int,
        head: Optional[Root] = None,
        source: Optional[Checkpoint] = None,
    ) -> Attestation:
        """Build the protocol-following attestation for ``slot``.

        The block vote is the fork-choice head; the checkpoint vote links the
        node's current justified checkpoint (or an explicit ``source``, used
        by Byzantine agents voting on a branch whose justification history
        differs from their own) to the current epoch's checkpoint on that
        head's chain.
        """
        epoch = self.config.epoch_of_slot(slot)
        head_root = head if head is not None else self.head()
        if source is None:
            source = self.state.current_justified_checkpoint
        target = self.checkpoint_of_epoch(epoch, head_root)
        return Attestation(
            validator_index=self.validator_index,
            slot=slot,
            head_root=head_root,
            ffg=FFGVote(source=source, target=target),
        )

    def build_block(
        self,
        slot: int,
        parent: Optional[Root] = None,
        branch_tag: str = "",
        max_attestations: int = 128,
        include_evidence: bool = True,
    ) -> BeaconBlock:
        """Build a block on ``parent`` (default: own head) including what we know.

        ``include_evidence=False`` lets Byzantine proposers omit slashing
        evidence (they have no interest in incriminating themselves).
        """
        parent_root = parent if parent is not None else self.head()
        attestations = tuple(self.attestations_for_inclusion[:max_attestations])
        self.attestations_for_inclusion = self.attestations_for_inclusion[max_attestations:]
        if include_evidence:
            evidence_indices = tuple(
                evidence.validator_index for evidence in self.evidence_for_inclusion
            )
            self.evidence_for_inclusion = []
        else:
            evidence_indices = ()
        return BeaconBlock.create(
            slot=slot,
            proposer_index=self.validator_index,
            parent_root=parent_root,
            attestations=attestations,
            slashing_evidence=evidence_indices,
            branch_tag=branch_tag,
        )

    # ------------------------------------------------------------------
    # Epoch processing
    # ------------------------------------------------------------------
    def active_indices_for_epoch(self, epoch: int) -> Set[int]:
        """Validators active on this node's chain at ``epoch``.

        A validator is active if the node saw an attestation from it whose
        target checkpoint matches this chain's checkpoint for the epoch
        (Section 4.1: an attestation with a wrong target counts as inactive).
        """
        local_target = self.checkpoint_of_epoch(epoch)
        active: Set[int] = set()
        for attestation in self.attestations_by_epoch.get(epoch, []):
            if attestation.target == local_target:
                active.add(attestation.validator_index)
        return active

    def process_epoch_end(self, epoch: int) -> EpochReport:
        """Run epoch processing for ``epoch`` on the local state."""
        self.state.current_epoch = epoch
        active = self.active_indices_for_epoch(epoch)
        slashable = self.slashings_observed.get(epoch, set())
        justified_before = self.state.current_justified_checkpoint
        report = process_epoch(
            self.state,
            self.pool,
            active_indices=active,
            slashable_indices=slashable,
            epoch=epoch,
            backend=self.backend,
        )
        self.history.append(report)
        # Propagate finality knowledge into the fork-choice store.
        self.store.update_checkpoints(
            self.state.current_justified_checkpoint, self.state.finalized_checkpoint
        )
        # Refresh the fork-choice balances snapshot whenever justification advances.
        if self.state.current_justified_checkpoint != justified_before:
            self._justified_stakes = {
                validator.index: validator.stake for validator in self.state.validators
            }
        return report

    # ------------------------------------------------------------------
    def finalized_epochs(self) -> Set[int]:
        """Epochs whose checkpoint this node finalized."""
        return set(self.state.finalized_checkpoints)

    def finalized_checkpoints(self) -> Dict[int, Checkpoint]:
        """Finalized checkpoints keyed by epoch."""
        return dict(self.state.finalized_checkpoints)
