"""A validator view node: local view of the chain plus protocol bookkeeping.

Each simulated *view* runs a node holding its own fork-choice store, beacon
state, FFG vote pool and slashing detector.  Nodes only learn about blocks
and attestations through messages delivered by the network, so two nodes
separated by a partition genuinely diverge — which is the whole point of
the paper's scenarios.

A node may be shared by many validators (*view sharding*): validators on
the same partition side receive the identical message stream, so their
local views are provably equal and the engine simulates one ``Node`` per
view group with ``members`` listing the validators it stands for.  The
only per-validator state a view carries is *consumption*: which of the
seen attestations and evidence each member has already included in its own
blocks, tracked as per-member cursors over shared append-only logs (the
O(included) replacement for the old per-build list re-slicing).
Per-member defaults (``attestation_for``, ``build_block``) are exposed for
non-representative members through the lightweight :class:`MemberView`
facade returned by :meth:`Node.for_member`.

Ingestion is batch-native: a committee's identical votes arrive as one
:class:`repro.core.attestation_batch.AttestationBatch` and are ingested in
one call — bulk :meth:`FlatVotePool.add_batch`, vectorized fork-choice
latest-message update, array-append activity accounting — while
equivocating (non-uniform) votes keep the per-attestation path.  Activity
(``active_indices_for_epoch``) is computed by array comparison over the
per-epoch vote columns instead of a per-attestation set scan.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.attestation_batch import AttestationBatch, AttestationColumns
from repro.core.backend import StakeBackend, get_backend
from repro.network.message import Message, MessageKind
from repro.spec.attestation import Attestation, attestations_from_batch
from repro.spec.block import BeaconBlock
from repro.spec.checkpoint import Checkpoint, FFGVote
from repro.spec.config import SpecConfig
from repro.spec.finality import FFGVotePool
from repro.spec.forkchoice import Store
from repro.spec.slashing import SlashingDetector, SlashingEvidence
from repro.spec.state import BeaconState
from repro.spec.state_transition import ChainHistory, EpochReport, process_epoch
from repro.spec.types import Root
from repro.spec.validator import Validator

#: Entries the network can hand to a node's attestation path.
AttestationLike = Union[Attestation, AttestationBatch]


@dataclass
class PendingQueues:
    """Blocks and attestations whose ancestry has not been delivered yet."""

    blocks: List[BeaconBlock] = field(default_factory=list)
    attestations: List[AttestationLike] = field(default_factory=list)


class Node:
    """Local protocol instance of one view (one or many validators)."""

    def __init__(
        self,
        validator_index: int,
        registry: List[Validator],
        config: Optional[SpecConfig] = None,
        backend: Union[str, StakeBackend] = "numpy",
        members: Optional[Sequence[int]] = None,
        inclusion_horizon_epochs: Optional[int] = 2,
    ) -> None:
        self.validator_index = validator_index
        #: Validators sharing this view (representative first by convention).
        self.members: Tuple[int, ...] = (
            tuple(members) if members is not None else (validator_index,)
        )
        self.config = config or SpecConfig.mainnet()
        #: Attestations whose target epoch has fallen more than this many
        #: epochs behind the processed epoch are dropped from the
        #: inclusion log and the per-epoch vote columns — real clients
        #: only accept attestations within about an epoch, so unincluded
        #: stale votes must not accumulate forever.  ``None`` disables
        #: the horizon (the pre-PR-7 unbounded behaviour).
        self.inclusion_horizon_epochs = inclusion_horizon_epochs
        #: Stake-dynamics kernel driving this node's epoch processing
        #: (FFG justification, rewards, inactivity and slashing all run
        #: array-native on it).
        self.backend = get_backend(backend, population=len(registry))
        self.state = BeaconState.genesis(registry, self.config)
        self.store = Store(config=self.config)
        self.pool = FFGVotePool()
        self.detector = SlashingDetector()
        self.history = ChainHistory()
        self.pending = PendingQueues()
        #: Checkpoint votes seen, as flat per-target-epoch columns
        #: (activity accounting + Byzantine source scans; root ids are
        #: interned by the vote pool so all structures agree).
        self.attestations_by_epoch: Dict[int, AttestationColumns] = {}
        #: Append-only log of attestations seen and eligible for block
        #: inclusion; members track their consumption with cursors.
        self._inclusion_log: List[Attestation] = []
        self._inclusion_cursors: Dict[int, int] = {}
        #: Append-only log of slashing evidence known to this view, with
        #: per-member inclusion cursors (each member includes evidence it
        #: has not yet packed into one of its own blocks).
        self._evidence_log: List[SlashingEvidence] = []
        self._evidence_cursors: Dict[int, int] = {}
        #: Validators for which evidence was included in a block on this
        #: node's chain, per epoch (consumed at epoch processing).
        self.slashings_observed: Dict[int, Set[int]] = defaultdict(set)
        #: All blocks received (for diagnostics).
        self.blocks_received = 0
        self.attestations_received = 0
        #: Balances as of the last justified checkpoint, used to weight
        #: fork-choice votes (the real protocol weighs LMD-GHOST votes with
        #: the justified-state balances so diverging views still converge).
        self._justified_stakes = np.fromiter(
            (v.stake for v in self.state.validators), dtype=float, count=len(registry)
        )
        self._weights_version = 0
        self._head_cache: Optional[Tuple[Tuple[int, int], Root]] = None
        #: Permanent (epoch, head) -> checkpoint cache: a fixed head's
        #: boundary ancestor never changes once the head is in the tree.
        self._checkpoint_cache: Dict[Tuple[int, Root], Checkpoint] = {}
        self._refresh_view_arrays()

    # ------------------------------------------------------------------
    # Cached per-epoch registry arrays
    # ------------------------------------------------------------------
    def _refresh_view_arrays(self) -> None:
        """Rebuild the stake/eligibility arrays the hot paths read.

        Registry fields mutate only inside :meth:`process_epoch_end`, so
        refreshing here (and at construction) keeps the arrays exact.
        """
        validators = self.state.validators
        n = len(validators)
        epoch = self.state.current_epoch
        self._stake_arr = np.fromiter((v.stake for v in validators), float, count=n)
        eligible = np.fromiter(
            (v.is_active(epoch) and not v.slashed for v in validators),
            dtype=bool,
            count=n,
        )
        self._fc_stakes = np.where(eligible, self._justified_stakes, 0.0)
        self._weights_version += 1

    def stake_array(self) -> np.ndarray:
        """Current per-validator stakes as a flat array (read-only)."""
        return self._stake_arr

    # ------------------------------------------------------------------
    # Per-member views
    # ------------------------------------------------------------------
    def for_member(self, validator_index: int) -> "Union[Node, MemberView]":
        """A view of this node acting as ``validator_index``.

        The representative gets the node itself; other members get a
        :class:`MemberView` facade that injects their index into
        attestation/block building and tracks their own inclusion cursors.
        """
        if validator_index == self.validator_index:
            return self
        return MemberView(self, validator_index)

    # ------------------------------------------------------------------
    # View lifecycle: copy-on-write splits and fingerprint merges
    # ------------------------------------------------------------------
    def split_clone(self, members: Sequence[int], validator_index: int) -> "Node":
        """An independent deep copy of this view for a child group.

        Called when the message streams of a view group's members are
        about to diverge: the child gets its own state, store, vote pool,
        detector, columns, logs and caches — every mutable structure —
        so the two sides evolve independently from a provably identical
        starting point.  Only the cursors of ``members`` travel with the
        child.  The stake-dynamics backend is stateless per call and
        stays shared.
        """
        member_set = set(members)
        clone = Node.__new__(Node)
        clone.validator_index = validator_index
        clone.members = tuple(members)
        clone.config = self.config
        clone.inclusion_horizon_epochs = self.inclusion_horizon_epochs
        clone.backend = self.backend
        clone.state = self.state.fork()
        clone.store = self.store.clone()
        clone.pool = self.pool.clone()
        clone.detector = self.detector.clone()
        clone.history = ChainHistory(reports=list(self.history.reports))
        clone.pending = PendingQueues(
            blocks=list(self.pending.blocks),
            attestations=list(self.pending.attestations),
        )
        clone.attestations_by_epoch = {
            epoch: columns.clone()
            for epoch, columns in self.attestations_by_epoch.items()
        }
        clone._inclusion_log = list(self._inclusion_log)
        clone._inclusion_cursors = {
            index: cursor
            for index, cursor in self._inclusion_cursors.items()
            if index in member_set
        }
        clone._evidence_log = list(self._evidence_log)
        clone._evidence_cursors = {
            index: cursor
            for index, cursor in self._evidence_cursors.items()
            if index in member_set
        }
        clone.slashings_observed = defaultdict(set)
        for epoch, indices in self.slashings_observed.items():
            if indices:
                clone.slashings_observed[epoch] = set(indices)
        clone.blocks_received = self.blocks_received
        clone.attestations_received = self.attestations_received
        clone._justified_stakes = self._justified_stakes.copy()
        clone._weights_version = self._weights_version
        clone._head_cache = self._head_cache
        clone._checkpoint_cache = dict(self._checkpoint_cache)
        clone._stake_arr = self._stake_arr.copy()
        clone._fc_stakes = self._fc_stakes.copy()
        return clone

    def restrict_members(self, members: Sequence[int]) -> None:
        """Shrink this view to ``members`` after a split carved the rest away.

        Cursors of departed members move out with their ``split_clone``;
        keeping them here would pin the log-pruning floor forever.
        """
        member_set = set(members)
        self.members = tuple(members)
        self._inclusion_cursors = {
            index: cursor
            for index, cursor in self._inclusion_cursors.items()
            if index in member_set
        }
        self._evidence_cursors = {
            index: cursor
            for index, cursor in self._evidence_cursors.items()
            if index in member_set
        }

    def absorb_members(self, other: "Node") -> None:
        """Adopt ``other``'s members after a fingerprint-equal merge.

        Caller guarantees ``state_fingerprint()`` equality, so the logs
        are element-wise identical and ``other``'s cursors transplant
        verbatim.
        """
        self._inclusion_cursors.update(
            (index, other._inclusion_cursors.get(index, 0)) for index in other.members
        )
        self._evidence_cursors.update(
            (index, other._evidence_cursors.get(index, 0)) for index in other.members
        )
        self.members = tuple(sorted(set(self.members) | set(other.members)))

    def state_fingerprint(self) -> Tuple:
        """A content-based summary of everything that drives future behaviour.

        Two views with equal fingerprints react identically to any future
        common message stream, so the engine may merge their groups (the
        exact converse of the split legality argument).  Deliberately
        strict — interner-dependent ids are mapped back to root keys, and
        row order is included because scan order breaks ties.
        """
        store = self.store
        state = self.state
        flat = self.pool.flat
        pool_rows = []
        for epoch in sorted(flat.epochs()):
            arrays = flat.vote_arrays(epoch)
            if arrays is None:
                continue
            validators, source_epochs, source_roots, target_roots = arrays
            pool_rows.append(
                (
                    epoch,
                    tuple(
                        (int(v), int(se), flat.root_of(int(sr)), flat.root_of(int(tr)))
                        for v, se, sr, tr in zip(
                            validators, source_epochs, source_roots, target_roots
                        )
                    ),
                )
            )
        column_rows = []
        for epoch in sorted(self.attestations_by_epoch):
            validators, source_epochs, source_roots, target_roots = (
                self.attestations_by_epoch[epoch].arrays()
            )
            column_rows.append(
                (
                    epoch,
                    tuple(
                        (int(v), int(se), flat.root_of(int(sr)), flat.root_of(int(tr)))
                        for v, se, sr, tr in zip(
                            validators, source_epochs, source_roots, target_roots
                        )
                    ),
                )
            )
        latest = store.latest_messages
        return (
            frozenset(block.root for block in store.tree.blocks()),
            tuple(
                (index, message.epoch, message.root)
                for index, message in sorted(latest.items())
            ),
            store.justified_checkpoint,
            store.finalized_checkpoint,
            tuple(sorted(store.checkpoint_roots.items())),
            tuple(
                (v.index, v.stake, v.inactivity_score, v.slashed, v.exit_epoch)
                for v in state.validators
            ),
            state.current_epoch,
            state.current_justified_checkpoint,
            state.previous_justified_checkpoint,
            state.finalized_checkpoint,
            frozenset(state.justified_epochs),
            tuple(sorted(state.justified_checkpoints.items())),
            tuple(sorted(state.finalized_checkpoints.items())),
            state.last_finalized_epoch,
            tuple(pool_rows),
            tuple(column_rows),
            tuple(self._inclusion_log),
            tuple(self._evidence_log),
            tuple(
                (epoch, frozenset(indices))
                for epoch, indices in sorted(self.slashings_observed.items())
                if indices
            ),
            tuple(
                (index, tuple((a.ffg, a.head_root) for a in seen))
                for index, seen in sorted(self.detector._seen.items())
                if seen
            ),
            tuple(sorted(self.detector._evidence)),
            tuple(self.pending.blocks),
            tuple(self.pending.attestations),
            self._justified_stakes.tobytes(),
        )

    def inclusion_view(self, validator_index: int) -> List[Attestation]:
        """Attestations ``validator_index`` has seen but not yet included."""
        cursor = self._inclusion_cursors.get(validator_index, 0)
        return self._inclusion_log[cursor:]

    def evidence_view(self, validator_index: int) -> List[SlashingEvidence]:
        """Evidence ``validator_index`` has not yet included in a block."""
        cursor = self._evidence_cursors.get(validator_index, 0)
        return self._evidence_log[cursor:]

    @property
    def attestations_for_inclusion(self) -> List[Attestation]:
        """Unconsumed inclusion queue of the node's own validator."""
        return self.inclusion_view(self.validator_index)

    @property
    def evidence_for_inclusion(self) -> List[SlashingEvidence]:
        """Unconsumed evidence queue of the node's own validator."""
        return self.evidence_view(self.validator_index)

    # ------------------------------------------------------------------
    # Message ingestion
    # ------------------------------------------------------------------
    def receive(self, message: Message) -> None:
        """Process a delivered network message."""
        if message.kind is MessageKind.BLOCK:
            self._receive_block(message.payload)  # type: ignore[arg-type]
        elif message.kind is MessageKind.ATTESTATION:
            self._receive_attestation(message.payload)  # type: ignore[arg-type]
        elif message.kind is MessageKind.ATTESTATION_BATCH:
            self._receive_attestation_batch(message.payload)  # type: ignore[arg-type]
        elif message.kind is MessageKind.SLASHING_EVIDENCE:
            self._receive_evidence(message.payload)  # type: ignore[arg-type]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown message kind {message.kind}")

    def _receive_block(self, block: BeaconBlock) -> None:
        self.blocks_received += 1
        if block.parent_root not in self.store.tree:
            self.pending.blocks.append(block)
            return
        if self.store.on_block(block):
            # Attestations and evidence carried by the block count as seen.
            for attestation in block.attestations:
                self._receive_attestation(attestation)
            for validator_index in block.slashing_evidence:
                epoch = self.config.epoch_of_slot(block.slot)
                self.slashings_observed[epoch].add(validator_index)
            self._drain_pending()

    def _receive_attestation(self, attestation: Attestation) -> None:
        self.attestations_received += 1
        if attestation.head_root not in self.store.tree:
            self.pending.attestations.append(attestation)
            return
        self._ingest_attestation(attestation)

    def _receive_attestation_batch(self, batch: AttestationBatch) -> None:
        self.attestations_received += len(batch)
        if batch.head_root not in self.store.tree:
            self.pending.attestations.append(batch)
            return
        self._ingest_batch(batch)

    def _seen_columns(self, target_epoch: int) -> AttestationColumns:
        columns = self.attestations_by_epoch.get(target_epoch)
        if columns is None:
            columns = AttestationColumns()
            self.attestations_by_epoch[target_epoch] = columns
        return columns

    def _ingest_attestation(self, attestation: Attestation) -> None:
        self.store.on_attestation(attestation)
        self.pool.add_attestation(attestation)
        flat = self.pool.flat
        self._seen_columns(attestation.target_epoch).append(
            attestation.validator_index,
            attestation.source.epoch,
            flat.intern_root(attestation.source.root),
            flat.intern_root(attestation.target.root),
        )
        self._inclusion_log.append(attestation)
        evidence = self.detector.observe(attestation)
        if evidence is not None:
            self._evidence_log.append(evidence)

    def _ingest_batch(self, batch: AttestationBatch) -> None:
        """Ingest a whole committee batch in one call.

        The fork-choice store, the FFG pool and the activity columns take
        the flat validator array directly; per-validator objects are
        materialized once, only for block inclusion and the slashing
        detector (the two places that genuinely need them).
        """
        self.store.on_attestation_batch(
            batch.validators, batch.target_epoch, batch.head_root
        )
        self.pool.add_batch(batch)
        flat = self.pool.flat
        self._seen_columns(batch.target_epoch).extend(
            batch.validators,
            batch.source.epoch,
            flat.intern_root(batch.source.root),
            flat.intern_root(batch.target.root),
        )
        rows = attestations_from_batch(batch)
        self._inclusion_log.extend(rows)
        self._evidence_log.extend(self.detector.observe_batch(rows))

    def _receive_evidence(self, evidence: SlashingEvidence) -> None:
        if not self.detector.has_evidence_against(evidence.validator_index):
            self._evidence_log.append(evidence)
            # Feed both attestations to the detector so duplicates are ignored.
            self.detector.observe(evidence.first)
            self.detector.observe(evidence.second)

    def _drain_pending(self) -> None:
        """Retry queued blocks/attestations whose dependencies may now exist."""
        progress = True
        while progress:
            progress = False
            still_pending: List[BeaconBlock] = []
            for block in self.pending.blocks:
                if block.parent_root in self.store.tree:
                    if self.store.on_block(block):
                        for attestation in block.attestations:
                            # Re-check the head: a carried attestation may
                            # reference a block this node still lacks, in
                            # which case it pends like any other.
                            self._receive_attestation(attestation)
                        for validator_index in block.slashing_evidence:
                            epoch = self.config.epoch_of_slot(block.slot)
                            self.slashings_observed[epoch].add(validator_index)
                    progress = True
                else:
                    still_pending.append(block)
            self.pending.blocks = still_pending
            still_pending_attestations: List[AttestationLike] = []
            for entry in self.pending.attestations:
                if entry.head_root in self.store.tree:
                    if isinstance(entry, AttestationBatch):
                        self._ingest_batch(entry)
                    else:
                        self._ingest_attestation(entry)
                    progress = True
                else:
                    still_pending_attestations.append(entry)
            self.pending.attestations = still_pending_attestations

    # ------------------------------------------------------------------
    # Chain views used by agents
    # ------------------------------------------------------------------
    def head(self) -> Root:
        """Current fork-choice head (votes weighted by justified-state balances).

        Cached per (store, weight) version: all members of a view share
        one head computation per mutation generation instead of each
        re-running LMD-GHOST.
        """
        key = (self.store.version, self._weights_version)
        if self._head_cache is not None and self._head_cache[0] == key:
            return self._head_cache[1]
        head = self.store.get_head_weighted(self._fc_stakes)
        self._head_cache = (key, head)
        return head

    def branch_heads(self) -> List[Root]:
        """All leaf roots of the local tree (competing branch heads)."""
        return list(self.store.tree.leaves())

    def branch_weight(self, root: Root) -> float:
        """Attesting stake on the subtree rooted at ``root``.

        Uses the same justified-balance weights as :meth:`head`, so a
        swayer comparing two branches sees exactly what LMD-GHOST sees.
        """
        return self.store.subtree_weight(
            root, self.store._vote_weights_from_stakes(self._fc_stakes)
        )

    def checkpoint_of_epoch(self, epoch: int, head: Optional[Root] = None) -> Checkpoint:
        """Checkpoint of ``epoch`` on the chain of ``head`` (default: own head)."""
        head_root = head if head is not None else self.head()
        key = (epoch, head_root)
        checkpoint = self._checkpoint_cache.get(key)
        if checkpoint is None:
            checkpoint = self.store.checkpoint_for_epoch(epoch, head_root)
            self._checkpoint_cache[key] = checkpoint
        return checkpoint

    def attestation_for(
        self,
        slot: int,
        head: Optional[Root] = None,
        source: Optional[Checkpoint] = None,
        validator_index: Optional[int] = None,
    ) -> Attestation:
        """Build the protocol-following attestation for ``slot``.

        The block vote is the fork-choice head; the checkpoint vote links the
        node's current justified checkpoint (or an explicit ``source``, used
        by Byzantine agents voting on a branch whose justification history
        differs from their own) to the current epoch's checkpoint on that
        head's chain.  ``validator_index`` selects the attesting member
        (default: the node's own validator).
        """
        epoch = self.config.epoch_of_slot(slot)
        head_root = head if head is not None else self.head()
        if source is None:
            source = self.state.current_justified_checkpoint
        target = self.checkpoint_of_epoch(epoch, head_root)
        return Attestation(
            validator_index=(
                validator_index if validator_index is not None else self.validator_index
            ),
            slot=slot,
            head_root=head_root,
            ffg=FFGVote(source=source, target=target),
        )

    def attestation_batch_for(
        self, slot: int, validators: Sequence[int]
    ) -> AttestationBatch:
        """The committee batch of protocol-following attestations for ``slot``.

        All ``validators`` share this view, so head, source and target are
        computed once and the batch carries only the validator array.
        """
        epoch = self.config.epoch_of_slot(slot)
        head_root = self.head()
        return AttestationBatch(
            slot=slot,
            head_root=head_root,
            source=self.state.current_justified_checkpoint,
            target=self.checkpoint_of_epoch(epoch, head_root),
            validators=np.asarray(validators, dtype=np.int64),
        )

    def build_block(
        self,
        slot: int,
        parent: Optional[Root] = None,
        branch_tag: str = "",
        max_attestations: int = 128,
        include_evidence: bool = True,
        proposer: Optional[int] = None,
    ) -> BeaconBlock:
        """Build a block on ``parent`` (default: own head) including what we know.

        Inclusion consumes from the shared append-only log through the
        proposer's cursor — O(included) per build, and each member's
        consumption is independent exactly as if it ran its own node.
        ``include_evidence=False`` lets Byzantine proposers omit slashing
        evidence (they have no interest in incriminating themselves).
        """
        who = proposer if proposer is not None else self.validator_index
        parent_root = parent if parent is not None else self.head()
        cursor = self._inclusion_cursors.get(who, 0)
        attestations = tuple(self._inclusion_log[cursor : cursor + max_attestations])
        self._inclusion_cursors[who] = cursor + len(attestations)
        if include_evidence:
            evidence_cursor = self._evidence_cursors.get(who, 0)
            evidence_indices = tuple(
                evidence.validator_index
                for evidence in self._evidence_log[evidence_cursor:]
            )
            self._evidence_cursors[who] = len(self._evidence_log)
        else:
            evidence_indices = ()
        return BeaconBlock.create(
            slot=slot,
            proposer_index=who,
            parent_root=parent_root,
            attestations=attestations,
            slashing_evidence=evidence_indices,
            branch_tag=branch_tag,
        )

    # ------------------------------------------------------------------
    # Epoch processing
    # ------------------------------------------------------------------
    def active_indices_for_epoch(self, epoch: int) -> Set[int]:
        """Validators active on this node's chain at ``epoch``.

        A validator is active if the node saw an attestation from it whose
        target checkpoint matches this chain's checkpoint for the epoch
        (Section 4.1: an attestation with a wrong target counts as
        inactive).  Computed by array comparison over the per-epoch vote
        columns — no per-attestation Python scan.
        """
        columns = self.attestations_by_epoch.get(epoch)
        if not columns:
            return set()
        local_target = self.checkpoint_of_epoch(epoch)
        target_id = self.pool.flat.lookup_root(local_target.root)
        if target_id is None:
            return set()
        return {int(v) for v in columns.voters_for_target_root(target_id)}

    def process_epoch_end(self, epoch: int) -> EpochReport:
        """Run epoch processing for ``epoch`` on the local state."""
        self.state.current_epoch = epoch
        active = self.active_indices_for_epoch(epoch)
        slashable = self.slashings_observed.get(epoch, set())
        justified_before = self.state.current_justified_checkpoint
        report = process_epoch(
            self.state,
            self.pool,
            active_indices=active,
            slashable_indices=slashable,
            epoch=epoch,
            backend=self.backend,
        )
        self.history.append(report)
        # Propagate finality knowledge into the fork-choice store.
        self.store.update_checkpoints(
            self.state.current_justified_checkpoint, self.state.finalized_checkpoint
        )
        # Refresh the fork-choice balances snapshot whenever justification advances.
        if self.state.current_justified_checkpoint != justified_before:
            self._justified_stakes = np.fromiter(
                (v.stake for v in self.state.validators),
                dtype=float,
                count=len(self.state.validators),
            )
        self._refresh_view_arrays()
        self._prune_consumed_logs()
        self._prune_inclusion_horizon(epoch)
        return report

    def _prune_consumed_logs(self) -> None:
        """Drop log prefixes every member has already consumed.

        Only entries below *every* member's cursor are dead weight —
        anything above the minimum cursor is still includable in some
        member's future block, so dropping it would diverge from the
        per-node ground truth.  This reclaims memory whenever all members
        have proposed past a prefix (always, eventually, for singleton
        per-node groups); members that never propose pin the floor at
        zero, matching the per-node engine's own retention of their
        unconsumed queues.
        """
        self._inclusion_cursors = self._prune_log(
            self._inclusion_log, self._inclusion_cursors
        )
        self._evidence_cursors = self._prune_log(
            self._evidence_log, self._evidence_cursors
        )

    def _prune_log(self, log: List, cursors: Dict[int, int]) -> Dict[int, int]:
        """Delete one log's consumed prefix; return the rebased cursors.

        Non-member cursors (tests may build blocks for arbitrary
        proposers) participate in the floor so rebasing never goes
        negative.
        """
        floor = min(
            min((cursors.get(member, 0) for member in self.members), default=0),
            min(cursors.values(), default=0),
        )
        if floor <= 0:
            return cursors
        del log[:floor]
        return {member: cursor - floor for member, cursor in cursors.items()}

    def _prune_inclusion_horizon(self, epoch: int) -> None:
        """Expire attestations older than the inclusion horizon.

        After processing ``epoch``, attestations whose target epoch is
        ``<= epoch - inclusion_horizon_epochs`` can no longer influence
        anything: their FFG epoch is settled, their fork-choice votes are
        superseded, and real clients would refuse to include them.  They
        are dropped from the inclusion log — *even if some member never
        consumed them* (this is the semantics change over the pure
        min-cursor pruning: backlog is now bounded at roughly two epochs
        of attestations instead of growing forever behind an idle
        member) — and the per-epoch vote columns below the cutoff are
        deleted.  The evidence log is untouched (evidence never
        expires).  Cursors are rebased through a keep-mask prefix count
        so every member's unconsumed *live* suffix is preserved exactly;
        the rule depends only on shared view state, so grouped and
        per-node engines prune identically.
        """
        if self.inclusion_horizon_epochs is None:
            return
        cutoff = epoch - self.inclusion_horizon_epochs + 1
        for target_epoch in [
            e for e in self.attestations_by_epoch if e < cutoff
        ]:
            del self.attestations_by_epoch[target_epoch]
        log = self._inclusion_log
        if not log:
            return
        keep = [a.target_epoch >= cutoff for a in log]
        if all(keep):
            return
        # kept_before[i] = number of surviving entries strictly before i.
        kept_before = [0] * (len(log) + 1)
        for i, k in enumerate(keep):
            kept_before[i + 1] = kept_before[i] + (1 if k else 0)
        self._inclusion_log = [a for a, k in zip(log, keep) if k]
        self._inclusion_cursors = {
            member: kept_before[cursor]
            for member, cursor in self._inclusion_cursors.items()
        }

    # ------------------------------------------------------------------
    def finalized_epochs(self) -> Set[int]:
        """Epochs whose checkpoint this node finalized."""
        return set(self.state.finalized_checkpoints)

    def finalized_checkpoints(self) -> Dict[int, Checkpoint]:
        """Finalized checkpoints keyed by epoch."""
        return dict(self.state.finalized_checkpoints)


class MemberView:
    """A validator-specific facade over a shared view :class:`Node`.

    Everything except identity delegates to the underlying node; identity
    shows up in three places — ``validator_index`` itself, the default
    attester of :meth:`attestation_for`, the proposer (and inclusion
    cursors) of :meth:`build_block` — plus the member-local inclusion
    queues.  Agents, observers and result collectors treat it exactly
    like a node of its own.
    """

    __slots__ = ("node", "validator_index")

    def __init__(self, node: Node, validator_index: int) -> None:
        self.node = node
        self.validator_index = validator_index

    def __getattr__(self, name: str):
        return getattr(self.node, name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemberView(validator={self.validator_index}, node={self.node.validator_index})"

    # -- identity-sensitive delegations --------------------------------
    def attestation_for(
        self,
        slot: int,
        head: Optional[Root] = None,
        source: Optional[Checkpoint] = None,
        validator_index: Optional[int] = None,
    ) -> Attestation:
        return self.node.attestation_for(
            slot,
            head=head,
            source=source,
            validator_index=(
                validator_index if validator_index is not None else self.validator_index
            ),
        )

    def build_block(
        self,
        slot: int,
        parent: Optional[Root] = None,
        branch_tag: str = "",
        max_attestations: int = 128,
        include_evidence: bool = True,
        proposer: Optional[int] = None,
    ) -> BeaconBlock:
        return self.node.build_block(
            slot,
            parent=parent,
            branch_tag=branch_tag,
            max_attestations=max_attestations,
            include_evidence=include_evidence,
            proposer=proposer if proposer is not None else self.validator_index,
        )

    @property
    def attestations_for_inclusion(self) -> List[Attestation]:
        return self.node.inclusion_view(self.validator_index)

    @property
    def evidence_for_inclusion(self) -> List[SlashingEvidence]:
        return self.node.evidence_view(self.validator_index)
