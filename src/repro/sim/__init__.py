"""Slot-level discrete-event simulator of the Ethereum PoS protocol."""

from repro.sim.engine import SimulationEngine
from repro.sim.node import MemberView, Node
from repro.sim.observers import (
    FinalityObserver,
    LeakObserver,
    ObserverSet,
    SafetyObserver,
    StakeObserver,
)
from repro.sim.results import EpochSnapshot, SimulationResult
from repro.sim.scenarios import (
    BYZANTINE_STRATEGIES,
    SCENARIO_PRESETS,
    build_honest_simulation,
    build_offline_fraction_simulation,
    build_partitioned_simulation,
    build_preset,
)
from repro.sim.sweeps import (
    ScenarioSpec,
    SweepResult,
    run_sweep,
    run_sweep_cached,
    run_sweep_grid,
    summarize_trial,
)

__all__ = [
    "BYZANTINE_STRATEGIES",
    "EpochSnapshot",
    "FinalityObserver",
    "LeakObserver",
    "MemberView",
    "Node",
    "ObserverSet",
    "SCENARIO_PRESETS",
    "SafetyObserver",
    "ScenarioSpec",
    "SimulationEngine",
    "SimulationResult",
    "StakeObserver",
    "SweepResult",
    "build_honest_simulation",
    "build_offline_fraction_simulation",
    "build_partitioned_simulation",
    "build_preset",
    "run_sweep",
    "run_sweep_cached",
    "run_sweep_grid",
    "summarize_trial",
]
