"""Slot-level discrete-event simulator of the Ethereum PoS protocol."""

from repro.sim.engine import SimulationEngine
from repro.sim.node import Node
from repro.sim.observers import (
    FinalityObserver,
    LeakObserver,
    ObserverSet,
    SafetyObserver,
    StakeObserver,
)
from repro.sim.results import EpochSnapshot, SimulationResult
from repro.sim.scenarios import (
    BYZANTINE_STRATEGIES,
    build_honest_simulation,
    build_offline_fraction_simulation,
    build_partitioned_simulation,
)

__all__ = [
    "BYZANTINE_STRATEGIES",
    "EpochSnapshot",
    "FinalityObserver",
    "LeakObserver",
    "Node",
    "ObserverSet",
    "SafetyObserver",
    "SimulationEngine",
    "SimulationResult",
    "StakeObserver",
    "build_honest_simulation",
    "build_offline_fraction_simulation",
    "build_partitioned_simulation",
]
