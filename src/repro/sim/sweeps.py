"""Trial-parallel sweeps of the slot simulator.

PRs 4–8 made a *single* slot-sim trial fast; the remaining workloads —
attack-success sweeps, long-horizon timelines, the experiment service —
need *thousands* of seeded trials.  This module supplies the missing
execution layer:

* :class:`ScenarioSpec` — a picklable, declarative description of one
  scenario (builder name + keyword arguments + epochs + seed).  Worker
  processes receive the spec and construct their engines *locally*, so
  nothing heavier than a small dataclass ever crosses the process
  boundary — live ``Node``/transport graphs are neither picklable nor
  worth shipping.
* :func:`run_sweep` / :func:`run_sweep_grid` — N seeded trials of one
  spec (or a grid of specs) dispatched through the task-generic chunked
  ProcessPool runner (:func:`repro.core.trials.run_task_chunks`).  Each
  trial's engine seed is a pure function of ``(spec, trial index)``, so
  sweep rows are byte-identical at any ``jobs`` and ``chunk_size`` level
  (pinned by ``tests/test_sim_sweeps.py`` on both backends).
* :func:`summarize_trial` — reduces a full :class:`SimulationResult` to
  one flat JSON-native summary row (finalization lag, peak view count,
  safety/liveness flags, balance-held slots), the unit of storage for
  the content-addressed result cache (:mod:`repro.cache`).
* :func:`run_sweep_cached` — the whole-sweep cache wiring: a repeated
  sweep query is a disk read, not a recompute.
* :func:`run_sweep_resumable` — the *per-trial* cache wiring the
  experiment service (:mod:`repro.service`) executes jobs through: every
  ``(spec, trial)`` cell is its own cache entry, stored as soon as its
  chunk finishes, so an interrupted sweep resumes from exactly the
  trials already on disk and a grown sweep reuses its prefix.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cache import ResultCache, canonical_value
from repro.core.trials import TaskChunk, run_task_chunks
from repro.sim.engine import SimulationEngine
from repro.sim.results import SimulationResult

#: Cache "experiment" id of one sweep trial.  Per-trial entries are keyed
#: on the spec's canonical form plus the trial index — deliberately *not*
#: on ``n_trials`` — so extending a sweep from 100 to 1000 trials, or
#: resuming one killed mid-run, recomputes only the missing trials.
TRIAL_EXPERIMENT = "sim-sweep-trial"

#: Default trials per dispatched chunk.  Sweep trials are heavyweight
#: (milliseconds to seconds each), so chunks are much smaller than the
#: Monte-Carlo default — enough to amortise dispatch, small enough to
#: balance load across workers.  Like the Monte-Carlo chunk size it is
#: fixed, never derived from ``jobs``; rows are chunking-invariant
#: regardless because each trial seeds itself from its own index.
SWEEP_CHUNK_SIZE = 4


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative, picklable slot-sim scenario: the sweep work unit.

    ``builder`` names a scenario builder (a key of
    ``repro.sim.scenarios._PRESET_BUILDERS`` — ``"honest"``,
    ``"offline"``, ``"partitioned"``, ``"balancing"``,
    ``"behavior-mix"``); ``kwargs`` are its keyword arguments.  Keep
    ``kwargs`` declarative — numbers, strings, ``SpecConfig`` instances,
    latency-model *names* — so the spec pickles cheaply and canonicalises
    stably for cache keys.  Use :meth:`from_preset` to start from a
    :data:`~repro.sim.scenarios.SCENARIO_PRESETS` entry.

    Trial ``t`` of a sweep builds the engine with seed
    ``"{seed}/trial-{t}"`` (and a latency seed offset by ``t``), so every
    trial is reproducible in isolation and independent of how trials are
    chunked across workers.
    """

    builder: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    epochs: int = 2
    seed: str = "sweep"
    label: Optional[str] = None

    def __post_init__(self) -> None:
        from repro.sim.scenarios import _PRESET_BUILDERS

        if self.builder not in _PRESET_BUILDERS:
            raise ValueError(
                f"unknown scenario builder {self.builder!r}; "
                f"expected one of {sorted(_PRESET_BUILDERS)}"
            )
        if self.epochs <= 0:
            raise ValueError("epochs must be positive")

    # ------------------------------------------------------------------
    @classmethod
    def from_preset(
        cls,
        preset: str,
        epochs: int = 2,
        seed: str = "sweep",
        label: Optional[str] = None,
        **overrides: Any,
    ) -> "ScenarioSpec":
        """A spec for a named :data:`~repro.sim.scenarios.SCENARIO_PRESETS` entry."""
        from repro.sim.scenarios import SCENARIO_PRESETS

        entry = SCENARIO_PRESETS.get(preset)
        if entry is None:
            raise KeyError(
                f"unknown scenario preset {preset!r}; "
                f"expected one of {sorted(SCENARIO_PRESETS)}"
            )
        kwargs = dict(entry["kwargs"])
        kwargs.update(overrides)
        return cls(
            builder=entry["builder"],
            kwargs=kwargs,
            epochs=epochs,
            seed=seed,
            label=label if label is not None else preset,
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """Display/row label: the explicit label, else the builder name."""
        return self.label if self.label is not None else self.builder

    def with_overrides(self, **overrides: Any) -> "ScenarioSpec":
        """A copy of this spec with builder kwargs replaced/added."""
        kwargs = dict(self.kwargs)
        kwargs.update(overrides)
        return replace(self, kwargs=kwargs)

    def trial_seed(self, trial: Optional[int]) -> str:
        """The engine seed of trial ``trial`` (the bare seed for ``None``)."""
        return self.seed if trial is None else f"{self.seed}/trial-{trial}"

    def build(self, trial: Optional[int] = None) -> SimulationEngine:
        """Construct this scenario's engine (for trial ``trial``).

        Called inside worker processes: the engine, its nodes and its
        transport exist only in the worker.  The trial index perturbs the
        duty seed and the latency seed; everything else comes verbatim
        from ``kwargs``.
        """
        from repro.sim.scenarios import _PRESET_BUILDERS

        kwargs = dict(self.kwargs)
        kwargs["seed"] = self.trial_seed(trial)
        if trial is not None:
            kwargs["latency_seed"] = int(kwargs.get("latency_seed", 0)) + trial
        return _PRESET_BUILDERS[self.builder](**kwargs)

    def canonical(self) -> Dict[str, Any]:
        """JSON-native description of this spec (cache-key material)."""
        return {
            "builder": self.builder,
            "kwargs": canonical_value(dict(self.kwargs)),
            "epochs": self.epochs,
            "seed": self.seed,
            "label": self.name,
        }

    @classmethod
    def from_canonical(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Rebuild a spec from its :meth:`canonical` form.

        The inverse the experiment service needs: job records store specs
        as canonical JSON, and workers reconstruct them on claim.  A
        ``config`` kwarg that canonicalised into a plain field dict is
        re-inflated into a :class:`~repro.spec.config.SpecConfig`; every
        other kwarg must already be JSON-native (the declarative-kwargs
        contract above).
        """
        kwargs = dict(data.get("kwargs") or {})
        config = kwargs.get("config")
        if isinstance(config, Mapping):
            from repro.spec.config import SpecConfig

            kwargs["config"] = SpecConfig(**config)
        return cls(
            builder=data["builder"],
            kwargs=kwargs,
            epochs=int(data.get("epochs", 2)),
            seed=str(data.get("seed", "sweep")),
            label=data.get("label"),
        )


# ----------------------------------------------------------------------
# Trial reduction
# ----------------------------------------------------------------------
def summarize_trial(
    spec: ScenarioSpec,
    trial: int,
    engine: SimulationEngine,
    result: SimulationResult,
) -> Dict[str, Any]:
    """Reduce one finished trial to a flat summary row.

    Rows contain only JSON-native scalars (str/int/float/bool), so a row
    survives the result cache's JSON round-trip byte-identically — the
    invariant that makes cold and cached sweeps indistinguishable.

    ``balance_held_epochs`` counts the leading epochs during which *no*
    honest node finalized anything — for the balancing attack, exactly
    how long the adversary kept the fork balanced (a healthy network
    shows its normal ~2-epoch startup lag here); for partition scenarios
    it is the familiar finalization stall.
    """
    held = 0
    for snapshot in result.snapshots:
        if max(snapshot.finalized_epoch_by_node.values(), default=0) > 0:
            break
        held += 1
    slots_per_epoch = engine.config.slots_per_epoch
    return {
        "scenario": spec.name,
        "trial": int(trial),
        "seed": spec.trial_seed(trial),
        "n_validators": len(engine.registry),
        "epochs": int(result.epochs_run),
        "max_finalized_epoch": int(result.max_finalized_epoch()),
        "min_finalized_epoch": int(result.min_finalized_epoch()),
        "finalization_lag": int(result.epochs_run - 1 - result.max_finalized_epoch()),
        "safety_violated": bool(result.safety_violated()),
        "liveness_held": bool(result.liveness_held()),
        "peak_view_count": int(result.peak_view_count),
        "split_events": len(result.split_events()),
        "merge_events": len(result.merge_events()),
        "balance_held_epochs": int(held),
        "balance_held_slots": int(held * slots_per_epoch),
        "slashed": len(result.slashed_indices),
    }


class _SweepWorker:
    """Picklable chunk worker: builds and runs each trial's engine locally.

    Receives ``(spec index, trial index)`` tasks; only the spec tuple
    crosses the process boundary (once, at pool fork/submit time).
    """

    def __init__(self, specs: Tuple[ScenarioSpec, ...]) -> None:
        self.specs = specs

    def __call__(self, chunk: TaskChunk) -> List[Dict[str, Any]]:
        rows: List[Dict[str, Any]] = []
        for spec_index, trial in chunk.tasks:
            spec = self.specs[spec_index]
            engine = spec.build(trial)
            result = engine.run(spec.epochs)
            rows.append(summarize_trial(spec, trial, engine, result))
        return rows


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------
@dataclass
class SweepResult:
    """Flat summary rows of a (grid of) seeded slot-sim sweep(s)."""

    n_trials: int
    trial_rows: List[Dict[str, Any]]
    #: Canonical descriptions of the swept specs, in grid order.
    specs: List[Dict[str, Any]] = field(default_factory=list)

    def rows(self) -> List[Dict[str, Any]]:
        """All trial rows, in (spec, trial) order."""
        return list(self.trial_rows)

    def rows_for(self, scenario: str) -> List[Dict[str, Any]]:
        """The rows of one scenario label."""
        return [row for row in self.trial_rows if row["scenario"] == scenario]

    def scenarios(self) -> List[str]:
        """Distinct scenario labels, in first-appearance order."""
        seen: Dict[str, None] = {}
        for row in self.trial_rows:
            seen.setdefault(row["scenario"], None)
        return list(seen)

    def aggregate(self) -> List[Dict[str, Any]]:
        """Per-scenario summary: hold-duration stats and safety flags."""
        summaries = []
        for scenario in self.scenarios():
            rows = self.rows_for(scenario)
            held = [row["balance_held_epochs"] for row in rows]
            horizon = max(row["epochs"] for row in rows)
            summaries.append(
                {
                    "scenario": scenario,
                    "n_trials": len(rows),
                    "epochs": horizon,
                    "mean_balance_held_epochs": sum(held) / len(held),
                    "min_balance_held_epochs": min(held),
                    "max_balance_held_epochs": max(held),
                    "held_full_horizon_fraction": sum(
                        1 for row in rows if row["balance_held_epochs"] >= row["epochs"]
                    )
                    / len(rows),
                    "mean_peak_view_count": sum(row["peak_view_count"] for row in rows)
                    / len(rows),
                    "any_safety_violated": any(row["safety_violated"] for row in rows),
                    "all_liveness_held": all(row["liveness_held"] for row in rows),
                }
            )
        return summaries

    def format_text(self) -> str:
        lines = [
            f"Slot-sim sweep — {len(self.trial_rows)} trials over "
            f"{len(self.scenarios())} scenario(s)",
            f"  {'scenario':<28} {'trials':>6}  {'held (mean/min/max)':>20}  "
            f"{'P[held]':>8}  {'views':>6}",
        ]
        for summary in self.aggregate():
            lines.append(
                f"  {summary['scenario']:<28} {summary['n_trials']:>6d}  "
                f"{summary['mean_balance_held_epochs']:>8.2f}/"
                f"{summary['min_balance_held_epochs']:>3d}/"
                f"{summary['max_balance_held_epochs']:>3d}     "
                f"{summary['held_full_horizon_fraction']:>8.2f}  "
                f"{summary['mean_peak_view_count']:>6.1f}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_sweep_grid(
    specs: Sequence[ScenarioSpec],
    n_trials: int,
    *,
    jobs: Optional[int] = None,
    chunk_size: int = SWEEP_CHUNK_SIZE,
) -> SweepResult:
    """Run ``n_trials`` seeded trials of every spec; rows in (spec, trial) order.

    The (spec, trial) grid is flattened into tasks and dispatched through
    the task-generic chunked runner: workers rebuild engines from the
    picklable specs, run them, and return summary rows.  Rows are
    byte-identical at any ``jobs``/``chunk_size`` because each trial's
    randomness comes only from ``(spec seed, trial index)``.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    specs = tuple(specs)
    if not specs:
        raise ValueError("at least one ScenarioSpec is required")
    tasks = [
        (spec_index, trial)
        for spec_index in range(len(specs))
        for trial in range(n_trials)
    ]
    rows = run_task_chunks(
        _SweepWorker(specs), tasks, jobs=jobs, chunk_size=chunk_size
    )
    return SweepResult(
        n_trials=n_trials,
        trial_rows=rows,
        specs=[spec.canonical() for spec in specs],
    )


def run_sweep(
    spec: ScenarioSpec,
    n_trials: int,
    *,
    jobs: Optional[int] = None,
    chunk_size: int = SWEEP_CHUNK_SIZE,
) -> SweepResult:
    """Run ``n_trials`` seeded trials of one spec (see :func:`run_sweep_grid`)."""
    return run_sweep_grid([spec], n_trials, jobs=jobs, chunk_size=chunk_size)


def run_sweep_cached(
    specs: Sequence[ScenarioSpec],
    n_trials: int,
    cache: ResultCache,
    *,
    jobs: Optional[int] = None,
    chunk_size: int = SWEEP_CHUNK_SIZE,
) -> Tuple[SweepResult, bool]:
    """A grid sweep through the content-addressed result cache.

    Returns ``(result, hit)``.  The cache key covers every spec's
    canonical form plus ``n_trials`` (not ``jobs``/``chunk_size``, which
    provably do not affect rows), so a repeated query replays from disk.
    Both the cold and the cached path return JSON round-tripped rows —
    byte-identical by construction.
    """
    specs = tuple(specs)
    config = {
        "specs": [spec.canonical() for spec in specs],
        "n_trials": n_trials,
    }

    def compute() -> Dict[str, Any]:
        result = run_sweep_grid(specs, n_trials, jobs=jobs, chunk_size=chunk_size)
        return {"trial_rows": result.trial_rows, "specs": result.specs}

    payload, hit = cache.fetch_or_compute("sim-sweep", config, compute)
    return (
        SweepResult(
            n_trials=n_trials,
            trial_rows=payload["trial_rows"],
            specs=payload["specs"],
        ),
        hit,
    )


def trial_cache_query(spec: ScenarioSpec, trial: int) -> Tuple[Dict[str, Any], str]:
    """The ``(config, seed)`` cache address of one sweep trial.

    A pure function of ``(spec, trial)`` only — never of ``n_trials``,
    ``jobs`` or chunking — so any sweep over the same spec shares trial
    entries with any other, whatever its size or how it was interrupted.
    """
    return {"spec": spec.canonical(), "trial": int(trial)}, spec.trial_seed(trial)


def run_sweep_resumable(
    specs: Sequence[ScenarioSpec],
    n_trials: int,
    cache: ResultCache,
    *,
    jobs: Optional[int] = None,
    chunk_size: int = SWEEP_CHUNK_SIZE,
    progress: Optional[Any] = None,
    cancel: Optional[Any] = None,
) -> SweepResult:
    """A grid sweep with *per-trial* result granularity in the cache.

    The execution path the experiment service runs jobs through.  Every
    ``(spec, trial)`` cell is first looked up in ``cache`` under
    :data:`TRIAL_EXPERIMENT`; only the missing cells are dispatched (in
    chunks, through the cancellable runner), and each finished chunk's
    rows are stored *immediately* — so a run killed at any point, SIGKILL
    included, resumes from exactly the trials already on disk.  Rows are
    byte-identical to an uninterrupted run because hits and fresh
    computations alike are JSON round-trips of the same summary rows,
    assembled in (spec, trial) grid order.

    ``progress(done, total, cached)`` is called once up front (the
    resume point) and after every stored chunk.  ``cancel()`` is polled
    between chunks; cancellation propagates
    :class:`~repro.core.trials.DispatchCancelled` after the already-
    finished chunks were persisted — the graceful-shutdown contract.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    specs = tuple(specs)
    if not specs:
        raise ValueError("at least one ScenarioSpec is required")
    tasks = [
        (spec_index, trial)
        for spec_index in range(len(specs))
        for trial in range(n_trials)
    ]
    rows: Dict[Tuple[int, int], Dict[str, Any]] = {}
    pending: List[Tuple[int, int]] = []
    for task in tasks:
        config, seed = trial_cache_query(specs[task[0]], task[1])
        payload = cache.fetch(TRIAL_EXPERIMENT, config, seed)
        if payload is None:  # rows are dicts, so None is unambiguous here
            pending.append(task)
        else:
            rows[task] = payload
    cached = len(rows)
    if progress is not None:
        progress(cached, len(tasks), cached)

    def store_chunk(chunk: TaskChunk, chunk_rows: List[Dict[str, Any]]) -> None:
        for task, row in zip(chunk.tasks, chunk_rows):
            config, seed = trial_cache_query(specs[task[0]], task[1])
            cache.store(TRIAL_EXPERIMENT, config, seed=seed, payload=row)
            # The same round-trip a later hit performs, so resumed and
            # uninterrupted runs return byte-identical rows.
            rows[task] = json.loads(json.dumps(canonical_value(row)))
        if progress is not None:
            progress(len(rows), len(tasks), cached)

    if pending:
        run_task_chunks(
            _SweepWorker(specs),
            pending,
            jobs=jobs,
            chunk_size=chunk_size,
            on_chunk_done=store_chunk,
            cancel=cancel,
        )
    return SweepResult(
        n_trials=n_trials,
        trial_rows=[rows[task] for task in tasks],
        specs=[spec.canonical() for spec in specs],
    )
