"""Results of a slot-level simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.network.transport import TransportStats
from repro.spec.checkpoint import Checkpoint
from repro.spec.finality import conflicting_finalized_checkpoints
from repro.spec.state import BeaconState


def _dedup_by_identity(states: Sequence[BeaconState]) -> List[BeaconState]:
    """The distinct state objects in ``states`` (view groups share one)."""
    seen: Set[int] = set()
    distinct: List[BeaconState] = []
    for state in states:
        if id(state) not in seen:
            seen.add(id(state))
            distinct.append(state)
    return distinct


@dataclass(frozen=True)
class ViewEvent:
    """One change in the engine's view-group topology.

    ``kind`` is ``"split"`` (``parent`` forked off the child group holding
    ``members``) or ``"merge"`` (the child group ``child`` was absorbed
    back into ``parent``; ``members`` are the validators that moved).
    """

    slot: int
    time: float
    kind: str
    parent: str
    child: str
    members: Tuple[int, ...]


@dataclass
class EpochSnapshot:
    """Global observables collected at the end of one epoch."""

    epoch: int
    #: Highest finalized epoch per validator node.
    finalized_epoch_by_node: Dict[int, int]
    #: Byzantine stake proportion as seen by a representative honest node.
    byzantine_proportion: float
    #: Whether any honest node is currently in an inactivity leak.
    any_in_leak: bool
    #: Whether conflicting finalized checkpoints exist among honest nodes.
    safety_violated: bool


@dataclass
class SimulationResult:
    """Outcome of a :class:`repro.sim.engine.SimulationEngine` run."""

    epochs_run: int
    honest_indices: List[int]
    byzantine_indices: List[int]
    #: Final state of every node, keyed by validator index.  Under view
    #: sharding the members of a group share one state object; comparisons
    #: are by value, so grouped and per-node runs produce equal results.
    final_states: Dict[int, BeaconState]
    snapshots: List[EpochSnapshot] = field(default_factory=list)
    transport_stats: Optional[TransportStats] = None
    #: Validators slashed on any honest node's chain by the end of the run.
    slashed_indices: Set[int] = field(default_factory=set)
    #: View-group membership the engine simulated with (group name →
    #: validator indices); one singleton group per validator when view
    #: sharding was off.
    view_groups: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    #: Timeline of dynamic view-topology changes (splits and merges), in
    #: occurrence order.  Empty for per-node runs (singleton groups never
    #: split) and for runs whose message streams never diverge.
    view_events: List[ViewEvent] = field(default_factory=list)
    #: Largest number of simultaneously live view groups during the run.
    peak_view_count: int = 0

    # ------------------------------------------------------------------
    def split_events(self) -> List[ViewEvent]:
        """The split events of the view timeline."""
        return [event for event in self.view_events if event.kind == "split"]

    def merge_events(self) -> List[ViewEvent]:
        """The merge events of the view timeline."""
        return [event for event in self.view_events if event.kind == "merge"]

    # ------------------------------------------------------------------
    def honest_states(self) -> List[BeaconState]:
        """Final states of the honest nodes."""
        return [self.final_states[i] for i in self.honest_indices]

    def distinct_final_states(self) -> List[BeaconState]:
        """The distinct state objects behind ``final_states``.

        Under view sharding this is one state per view group — the cheap
        iteration target for O(views) post-processing at mainnet scale.
        """
        return _dedup_by_identity(list(self.final_states.values()))

    def _distinct_honest_states(self) -> List[BeaconState]:
        """Distinct state objects behind the honest nodes.

        States shared by a view group are identical by construction, so
        pairwise checks over the distinct objects see every possible
        conflict while staying O(views²) instead of O(validators²).
        """
        return _dedup_by_identity(self.honest_states())

    def safety_violated(self) -> bool:
        """True if two honest nodes finalized conflicting checkpoints.

        The per-epoch snapshots carry the engine's global check (which can
        see across partitions); the state-level same-epoch check is kept as
        a fallback for results built without snapshots.
        """
        if any(snapshot.safety_violated for snapshot in self.snapshots):
            return True
        return bool(conflicting_finalized_checkpoints(self._distinct_honest_states()))

    def conflicting_checkpoints(self) -> List[Tuple[Checkpoint, Checkpoint]]:
        """The conflicting finalized checkpoint pairs among honest nodes."""
        return conflicting_finalized_checkpoints(self._distinct_honest_states())

    def max_finalized_epoch(self) -> int:
        """Highest epoch finalized by any honest node."""
        return max(
            (state.finalized_checkpoint.epoch for state in self.honest_states()),
            default=0,
        )

    def min_finalized_epoch(self) -> int:
        """Lowest epoch finalized across honest nodes."""
        return min(
            (state.finalized_checkpoint.epoch for state in self.honest_states()),
            default=0,
        )

    def liveness_held(self, min_progress: int = 1) -> bool:
        """True if every honest node's finalized chain grew by ``min_progress`` epochs."""
        return all(
            state.finalized_checkpoint.epoch >= min_progress
            for state in self.honest_states()
        )

    def byzantine_proportion_series(self) -> List[float]:
        """Per-epoch Byzantine stake proportion (from the snapshots)."""
        return [snapshot.byzantine_proportion for snapshot in self.snapshots]

    def first_safety_violation_epoch(self) -> Optional[int]:
        """Epoch of the first recorded safety violation, if any."""
        for snapshot in self.snapshots:
            if snapshot.safety_violated:
                return snapshot.epoch
        return None

    def leak_epochs(self) -> List[int]:
        """Epochs during which at least one honest node was in a leak."""
        return [snapshot.epoch for snapshot in self.snapshots if snapshot.any_in_leak]
