"""Convenience builders for slot-level simulation scenarios.

These assemble a registry, a partition schedule, agents, and an engine for
the settings studied in the paper.  Thanks to view sharding (one simulated
node per partition side instead of one per validator) the same builders
now scale from the historical test sizes (tens of validators) to
mainnet-scale validator counts — see :data:`SCENARIO_PRESETS` for
ready-made large configurations that the per-node engine could not even
construct (10k validators × 10k-validator registries per node).

All builders accept ``view_sharding`` (default ``True``; pass ``False``
for the per-validator fallback used by the differential equivalence suite)
and ``backend`` (``"numpy"`` default, ``"python"`` bit-identical
reference) and forward them to the engine.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.agents.base import ValidatorAgent
from repro.agents.byzantine import (
    AlternatingAgent,
    BouncingAgent,
    DoubleVotingAgent,
    SwayerByzantine,
)
from repro.agents.honest import HonestAgent, OfflineAgent
from repro.agents.profiles import IntermittentValidator, LazyValidator
from repro.network.latency import LatencyModel
from repro.network.partition import PartitionSchedule
from repro.sim.engine import SimulationEngine
from repro.spec.committees import DutyScheduler
from repro.spec.config import SpecConfig
from repro.spec.validator import make_registry

#: Builder-level latency-model argument: ``None`` (legacy uniform delay),
#: a model name (``"uniform"``/``"jitter"``/``"lognormal"``/``"gossip"``),
#: or a :class:`~repro.network.latency.LatencyModel` instance.
LatencySpec = Union[None, str, LatencyModel]

#: Names of the Byzantine strategies the builders know how to instantiate.
BYZANTINE_STRATEGIES = ("none", "double-voting", "alternating", "alternating-finalizer", "bouncing")


def build_honest_simulation(
    n_validators: int = 16,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
    view_sharding: bool = True,
    backend: str = "numpy",
    merge_views: bool = False,
    latency_model: LatencySpec = None,
    latency_seed: int = 0,
) -> SimulationEngine:
    """A healthy network: all honest validators, no partition.

    This is the Liveness baseline: the finalized chain grows every epoch.
    ``merge_views`` re-fuses equal views at epoch starts — relevant here
    when a wide latency model fragments the single honest view.
    """
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg)
    agents: Dict[int, ValidatorAgent] = {
        validator.index: HonestAgent(validator.index) for validator in registry
    }
    schedule = PartitionSchedule.fully_connected(delta=1.0)
    return SimulationEngine(
        registry=registry,
        agents=agents,
        schedule=schedule,
        config=cfg,
        seed=seed,
        view_sharding=view_sharding,
        backend=backend,
        merge_views=merge_views,
        latency_model=latency_model,
        latency_seed=latency_seed,
    )


def build_offline_fraction_simulation(
    n_validators: int = 16,
    offline_fraction: float = 0.4,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
    view_sharding: bool = True,
    backend: str = "numpy",
    latency_model: LatencySpec = None,
    latency_seed: int = 0,
) -> SimulationEngine:
    """A network where a fraction of honest validators is simply unreachable.

    With more than one-third of the stake offline, finalization stalls and
    the inactivity leak starts — the situation the leak was designed for.
    """
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg)
    n_offline = int(round(n_validators * offline_fraction))
    agents: Dict[int, ValidatorAgent] = {}
    for validator in registry:
        if validator.index < n_validators - n_offline:
            agents[validator.index] = HonestAgent(validator.index)
        else:
            agents[validator.index] = OfflineAgent(validator.index)
    schedule = PartitionSchedule.fully_connected(delta=1.0)
    return SimulationEngine(
        registry=registry,
        agents=agents,
        schedule=schedule,
        config=cfg,
        seed=seed,
        view_sharding=view_sharding,
        backend=backend,
        latency_model=latency_model,
        latency_seed=latency_seed,
    )


def build_partitioned_simulation(
    n_validators: int = 20,
    p0: float = 0.5,
    byzantine_fraction: float = 0.0,
    byzantine_strategy: str = "none",
    gst_epoch: int = 10 ** 6,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
    delta: float = 1.0,
    view_sharding: bool = True,
    backend: str = "numpy",
    latency_model: LatencySpec = None,
    latency_seed: int = 0,
) -> SimulationEngine:
    """A partitioned network with an optional Byzantine contingent.

    Parameters
    ----------
    p0:
        Fraction of the honest validators placed in partition ``branch-1``.
    byzantine_fraction:
        Fraction of the registry controlled by the adversary (bridge nodes).
    byzantine_strategy:
        One of ``"none"``, ``"double-voting"`` (Section 5.2.1),
        ``"alternating"`` (Section 5.2.3), ``"alternating-finalizer"``
        (Section 5.2.2) or ``"bouncing"`` (Section 5.3).
    gst_epoch:
        Epoch at which the partition heals (GST).  The default keeps the
        partition for the whole run.
    view_sharding:
        ``True`` (default) simulates one node per view group (two
        partitions plus the Byzantine bridge); ``False`` runs the
        per-validator fallback.
    """
    if byzantine_strategy not in BYZANTINE_STRATEGIES:
        raise ValueError(
            f"unknown byzantine_strategy {byzantine_strategy!r}; "
            f"expected one of {BYZANTINE_STRATEGIES}"
        )
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg, byzantine_fraction=byzantine_fraction)
    honest_indices = [v.index for v in registry if v.label == "honest"]
    byzantine_indices = [v.index for v in registry if v.label == "byzantine"]
    if byzantine_strategy != "none" and not byzantine_indices:
        raise ValueError("a Byzantine strategy was requested but byzantine_fraction is 0")

    gst_seconds = gst_epoch * cfg.seconds_per_epoch
    schedule = PartitionSchedule.two_way_split(
        honest_indices=honest_indices,
        active_fraction=p0,
        gst=gst_seconds,
        delta=delta,
        bridge_indices=byzantine_indices,
    )
    partition_members = {
        name: set(schedule.members_of(name)) for name in schedule.partition_names()
    }

    agents: Dict[int, ValidatorAgent] = {
        index: HonestAgent(index) for index in honest_indices
    }
    for index in byzantine_indices:
        if byzantine_strategy == "double-voting":
            agents[index] = DoubleVotingAgent(index, partition_members)
        elif byzantine_strategy == "alternating":
            agents[index] = AlternatingAgent(index, partition_members)
        elif byzantine_strategy == "alternating-finalizer":
            agents[index] = AlternatingAgent(
                index, partition_members, finalize_when_possible=True
            )
        elif byzantine_strategy == "bouncing":
            agents[index] = BouncingAgent(index, partition_members)
        else:  # "none": Byzantine validators that just follow the protocol
            agents[index] = HonestAgent(index)

    return SimulationEngine(
        registry=registry,
        agents=agents,
        schedule=schedule,
        config=cfg,
        seed=seed,
        view_sharding=view_sharding,
        backend=backend,
        latency_model=latency_model,
        latency_seed=latency_seed,
    )


def build_balancing_attack_simulation(
    n_validators: int = 16,
    byzantine_fraction: float = 0.25,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
    delta: float = 1.0,
    sway_delay: float = 0.0,
    view_sharding: bool = True,
    backend: str = "numpy",
    merge_views: bool = False,
    max_attempts: int = 256,
    latency_model: LatencySpec = None,
    latency_seed: int = 0,
) -> SimulationEngine:
    """The Gasper balancing attack over a *healthy* network.

    An adversarial slot-1 proposer equivocates two tagged blocks, showing
    one to each half of the honest validators, and Byzantine "swayers" in
    later committees keep the two branches balanced with targeted,
    optionally delayed votes (:class:`~repro.agents.byzantine.SwayerByzantine`).
    There is no partition: the fork lives purely on targeted messages, so
    under ``view_sharding=True`` this is the scenario that exercises
    dynamic view splitting (the single honest group fragments into a left
    and a right view at slot 1; peak live groups stay ~3 at any N).

    The attack needs the slot-1 proposer to be adversarial, so the duty
    seed is *rejection-sampled*: derived seeds ``"{seed}/balancing-{k}"``
    are probed against the deterministic duty schedule until one puts a
    Byzantine validator in the slot-1 proposer role (the same
    role-feasibility question the ``balancing-feasibility`` experiment
    sweeps).  Raises ``ValueError`` when no feasible assignment is found
    within ``max_attempts``.
    """
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg, byzantine_fraction=byzantine_fraction)
    honest_indices = [v.index for v in registry if v.label == "honest"]
    byzantine_indices = [v.index for v in registry if v.label == "byzantine"]
    if not byzantine_indices:
        raise ValueError("the balancing attack needs byzantine_fraction > 0")
    byzantine_set = set(byzantine_indices)

    split_slot = 1  # slot 0 carries the genesis block; the fork starts at 1.
    duty_seed = None
    for attempt in range(max_attempts):
        candidate = f"{seed}/balancing-{attempt}"
        duties = DutyScheduler(config=cfg, seed=candidate).duties_for_epoch(
            0, registry
        )
        if duties.proposers[split_slot] in byzantine_set:
            duty_seed = candidate
            break
    if duty_seed is None:
        raise ValueError(
            f"no duty seed with an adversarial slot-{split_slot} proposer found "
            f"in {max_attempts} attempts (F={len(byzantine_indices)}, N={n_validators})"
        )

    half = len(honest_indices) // 2
    left = tuple(honest_indices[:half])
    right = tuple(honest_indices[half:])
    agents: Dict[int, ValidatorAgent] = {
        index: HonestAgent(index) for index in honest_indices
    }
    for index in byzantine_indices:
        agents[index] = SwayerByzantine(
            index,
            left=left,
            right=right,
            byzantine=byzantine_indices,
            split_slot=split_slot,
            sway_delay=sway_delay,
        )
    return SimulationEngine(
        registry=registry,
        agents=agents,
        schedule=PartitionSchedule.fully_connected(delta=delta),
        config=cfg,
        seed=duty_seed,
        view_sharding=view_sharding,
        backend=backend,
        merge_views=merge_views,
        latency_model=latency_model,
        latency_seed=latency_seed,
    )


def build_behavior_mix_simulation(
    n_validators: int = 16,
    lazy_fraction: float = 0.2,
    intermittent_fraction: float = 0.2,
    miss_rate: float = 0.1,
    max_delay: float = 4.0,
    online_probability: float = 0.75,
    profile_seed: int = 0,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
    view_sharding: bool = True,
    backend: str = "numpy",
    latency_model: LatencySpec = None,
    latency_seed: int = 0,
) -> SimulationEngine:
    """A healthy network with realistic non-ideal honest behaviour.

    The registry is split into three contiguous bands: fully honest
    validators first, then ``lazy_fraction`` lazy validators
    (:class:`~repro.agents.profiles.LazyValidator` — seeded late/missed
    attestations), then ``intermittent_fraction`` intermittent validators
    (:class:`~repro.agents.profiles.IntermittentValidator` — seeded
    per-epoch availability).  Combine with a latency model for the full
    "realistic network" configuration the ROADMAP calls for.
    """
    if lazy_fraction < 0 or intermittent_fraction < 0:
        raise ValueError("behaviour fractions must be non-negative")
    if lazy_fraction + intermittent_fraction > 1.0:
        raise ValueError("behaviour fractions must sum to at most 1")
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg)
    n_lazy = int(round(n_validators * lazy_fraction))
    n_intermittent = int(round(n_validators * intermittent_fraction))
    n_plain = n_validators - n_lazy - n_intermittent
    agents: Dict[int, ValidatorAgent] = {}
    for validator in registry:
        if validator.index < n_plain:
            agents[validator.index] = HonestAgent(validator.index)
        elif validator.index < n_plain + n_lazy:
            agents[validator.index] = LazyValidator(
                validator.index,
                miss_rate=miss_rate,
                max_delay=max_delay,
                seed=profile_seed,
            )
        else:
            agents[validator.index] = IntermittentValidator(
                validator.index,
                online_probability=online_probability,
                seed=profile_seed,
            )
    return SimulationEngine(
        registry=registry,
        agents=agents,
        schedule=PartitionSchedule.fully_connected(delta=1.0),
        config=cfg,
        seed=seed,
        view_sharding=view_sharding,
        backend=backend,
        latency_model=latency_model,
        latency_seed=latency_seed,
    )


# ----------------------------------------------------------------------
# Mainnet-scale presets
# ----------------------------------------------------------------------
#: Named large-scale scenario configurations.  Each entry maps to a
#: builder plus keyword arguments; the sizes were out of reach before view
#: sharding (the per-node engine needs N registry copies of N validators —
#: 10⁸ objects at 10k — before simulating a single slot).
SCENARIO_PRESETS: Dict[str, Dict[str, Any]] = {
    # The paper's two-branch partition at mainnet validator counts.
    "mainnet-partition-10k": {
        "builder": "partitioned",
        "kwargs": {
            "n_validators": 10_000,
            "p0": 0.5,
            "config": SpecConfig.mainnet(),
        },
    },
    # Partition with a double-voting adversary that gets slashed after GST.
    "mainnet-double-voting-10k": {
        "builder": "partitioned",
        "kwargs": {
            "n_validators": 10_000,
            "p0": 0.5,
            "byzantine_fraction": 0.1,
            "byzantine_strategy": "double-voting",
            "gst_epoch": 3,
            "config": SpecConfig.mainnet(),
        },
    },
    # Alternating (never-slashable) adversary growing beta during the leak.
    "mainnet-alternating-10k": {
        "builder": "partitioned",
        "kwargs": {
            "n_validators": 10_000,
            "p0": 0.5,
            "byzantine_fraction": 0.2,
            "byzantine_strategy": "alternating",
            "config": SpecConfig.mainnet(),
        },
    },
    # Healthy-network liveness baseline at scale.
    "mainnet-healthy-10k": {
        "builder": "honest",
        "kwargs": {
            "n_validators": 10_000,
            "config": SpecConfig.mainnet(),
        },
    },
    # 40% of the stake offline: leak dynamics at scale.
    "mainnet-offline-10k": {
        "builder": "offline",
        "kwargs": {
            "n_validators": 10_000,
            "offline_fraction": 0.4,
            "config": SpecConfig.mainnet(),
        },
    },
    # Balancing attack over a healthy network: the dynamic-view-splitting
    # showcase (peak live view groups ~3 even at 10k validators).
    "mainnet-balancing-10k": {
        "builder": "balancing",
        "kwargs": {
            "n_validators": 10_000,
            "byzantine_fraction": 0.15,
            "config": SpecConfig.mainnet(),
        },
    },
    # Healthy network under GossipSub-style per-hop propagation: the
    # realistic-network benchmark workload (latency models are named, so
    # each build binds a fresh seeded model instance).
    "mainnet-gossip-10k": {
        "builder": "honest",
        "kwargs": {
            "n_validators": 10_000,
            "config": SpecConfig.mainnet(),
            "latency_model": "gossip",
        },
    },
    # Healthy network under heavy-tailed log-normal latency.
    "mainnet-lognormal-10k": {
        "builder": "honest",
        "kwargs": {
            "n_validators": 10_000,
            "config": SpecConfig.mainnet(),
            "latency_model": "lognormal",
        },
    },
    # Gossip propagation plus lazy/intermittent honest behaviour: the
    # full realistic-network configuration of ROADMAP item 2.
    "mainnet-behavior-10k": {
        "builder": "behavior-mix",
        "kwargs": {
            "n_validators": 10_000,
            "lazy_fraction": 0.1,
            "intermittent_fraction": 0.1,
            "config": SpecConfig.mainnet(),
            "latency_model": "gossip",
        },
    },
}

_PRESET_BUILDERS = {
    "honest": build_honest_simulation,
    "offline": build_offline_fraction_simulation,
    "partitioned": build_partitioned_simulation,
    "balancing": build_balancing_attack_simulation,
    "behavior-mix": build_behavior_mix_simulation,
}


def build_preset(name: str, **overrides: Any) -> SimulationEngine:
    """Build a named large-scale scenario from :data:`SCENARIO_PRESETS`.

    ``overrides`` are merged over the preset's keyword arguments, so tests
    can e.g. shrink ``n_validators`` or swap the backend without redefining
    the scenario.
    """
    preset = SCENARIO_PRESETS.get(name)
    if preset is None:
        raise KeyError(
            f"unknown scenario preset {name!r}; expected one of {sorted(SCENARIO_PRESETS)}"
        )
    kwargs = dict(preset["kwargs"])
    kwargs.update(overrides)
    return _PRESET_BUILDERS[preset["builder"]](**kwargs)
