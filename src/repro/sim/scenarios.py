"""Convenience builders for slot-level simulation scenarios.

These assemble a registry, a partition schedule, agents, and an engine for
the settings studied in the paper, at a scale small enough for tests and
examples (the long-horizon numbers are produced by the aggregate engine in
:mod:`repro.leak`; the slot-level engine demonstrates the mechanisms).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.agents.base import ValidatorAgent
from repro.agents.byzantine import AlternatingAgent, BouncingAgent, DoubleVotingAgent
from repro.agents.honest import HonestAgent, OfflineAgent
from repro.network.partition import PartitionSchedule
from repro.sim.engine import SimulationEngine
from repro.spec.config import SpecConfig
from repro.spec.validator import make_registry

#: Names of the Byzantine strategies the builders know how to instantiate.
BYZANTINE_STRATEGIES = ("none", "double-voting", "alternating", "alternating-finalizer", "bouncing")


def build_honest_simulation(
    n_validators: int = 16,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
) -> SimulationEngine:
    """A healthy network: all honest validators, no partition.

    This is the Liveness baseline: the finalized chain grows every epoch.
    """
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg)
    agents: Dict[int, ValidatorAgent] = {
        validator.index: HonestAgent(validator.index) for validator in registry
    }
    schedule = PartitionSchedule.fully_connected(delta=1.0)
    return SimulationEngine(
        registry=registry, agents=agents, schedule=schedule, config=cfg, seed=seed
    )


def build_offline_fraction_simulation(
    n_validators: int = 16,
    offline_fraction: float = 0.4,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
) -> SimulationEngine:
    """A network where a fraction of honest validators is simply unreachable.

    With more than one-third of the stake offline, finalization stalls and
    the inactivity leak starts — the situation the leak was designed for.
    """
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg)
    n_offline = int(round(n_validators * offline_fraction))
    agents: Dict[int, ValidatorAgent] = {}
    for validator in registry:
        if validator.index < n_validators - n_offline:
            agents[validator.index] = HonestAgent(validator.index)
        else:
            agents[validator.index] = OfflineAgent(validator.index)
    schedule = PartitionSchedule.fully_connected(delta=1.0)
    return SimulationEngine(
        registry=registry, agents=agents, schedule=schedule, config=cfg, seed=seed
    )


def build_partitioned_simulation(
    n_validators: int = 20,
    p0: float = 0.5,
    byzantine_fraction: float = 0.0,
    byzantine_strategy: str = "none",
    gst_epoch: int = 10 ** 6,
    config: Optional[SpecConfig] = None,
    seed: str = "repro",
    delta: float = 1.0,
) -> SimulationEngine:
    """A partitioned network with an optional Byzantine contingent.

    Parameters
    ----------
    p0:
        Fraction of the honest validators placed in partition ``branch-1``.
    byzantine_fraction:
        Fraction of the registry controlled by the adversary (bridge nodes).
    byzantine_strategy:
        One of ``"none"``, ``"double-voting"`` (Section 5.2.1),
        ``"alternating"`` (Section 5.2.3), ``"alternating-finalizer"``
        (Section 5.2.2) or ``"bouncing"`` (Section 5.3).
    gst_epoch:
        Epoch at which the partition heals (GST).  The default keeps the
        partition for the whole run.
    """
    if byzantine_strategy not in BYZANTINE_STRATEGIES:
        raise ValueError(
            f"unknown byzantine_strategy {byzantine_strategy!r}; "
            f"expected one of {BYZANTINE_STRATEGIES}"
        )
    cfg = config or SpecConfig.minimal()
    registry = make_registry(n_validators, cfg, byzantine_fraction=byzantine_fraction)
    honest_indices = [v.index for v in registry if v.label == "honest"]
    byzantine_indices = [v.index for v in registry if v.label == "byzantine"]
    if byzantine_strategy != "none" and not byzantine_indices:
        raise ValueError("a Byzantine strategy was requested but byzantine_fraction is 0")

    gst_seconds = gst_epoch * cfg.seconds_per_epoch
    schedule = PartitionSchedule.two_way_split(
        honest_indices=honest_indices,
        active_fraction=p0,
        gst=gst_seconds,
        delta=delta,
        bridge_indices=byzantine_indices,
    )
    partition_members = {
        name: set(schedule.members_of(name)) for name in schedule.partition_names()
    }

    agents: Dict[int, ValidatorAgent] = {
        index: HonestAgent(index) for index in honest_indices
    }
    for index in byzantine_indices:
        if byzantine_strategy == "double-voting":
            agents[index] = DoubleVotingAgent(index, partition_members)
        elif byzantine_strategy == "alternating":
            agents[index] = AlternatingAgent(index, partition_members)
        elif byzantine_strategy == "alternating-finalizer":
            agents[index] = AlternatingAgent(
                index, partition_members, finalize_when_possible=True
            )
        elif byzantine_strategy == "bouncing":
            agents[index] = BouncingAgent(index, partition_members)
        else:  # "none": Byzantine validators that just follow the protocol
            agents[index] = HonestAgent(index)

    return SimulationEngine(
        registry=registry, agents=agents, schedule=schedule, config=cfg, seed=seed
    )
