"""Checkers for the paper's blockchain properties (Definitions 4–6).

The paper states three properties (Section 2):

* **Safety** — for any two correct validators with a finalized chain, one
  chain is a prefix of the other;
* **Availability** — every correct validator keeps appending blocks to its
  candidate chain regardless of failures and partitions, and the candidate
  chains eventually grow;
* **Liveness** — the finalized chain eventually grows.

These checkers evaluate the properties over the nodes of a slot-level
simulation (or over bare states/trees), so tests and experiments can state
exactly which property a scenario preserves or violates — mirroring the
paper's claims (e.g. the inactivity leak restores Liveness at the price of
Safety during partitions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import constants
from repro.spec.blocktree import BlockTree
from repro.spec.checkpoint import Checkpoint
from repro.spec.state import BeaconState


@dataclass(frozen=True)
class PropertyVerdict:
    """Outcome of checking one property."""

    property_name: str
    holds: bool
    details: str = ""

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.holds


# ----------------------------------------------------------------------
# Safety (Property 4)
# ----------------------------------------------------------------------
def check_safety(
    states: Sequence[BeaconState],
    tree: Optional[BlockTree] = None,
) -> PropertyVerdict:
    """Safety: every pair of finalized chains is prefix-ordered.

    With a ``tree`` containing (at least) every finalized checkpoint block,
    prefix order is checked by ancestry; without one, only same-epoch
    conflicts are detectable (two different finalized checkpoints for the
    same epoch always violate Safety).
    """
    checkpoints = [state.finalized_checkpoint for state in states]
    for i, first in enumerate(checkpoints):
        for second in checkpoints[i + 1 :]:
            if first == second:
                continue
            if first.epoch == second.epoch and first.root != second.root:
                return PropertyVerdict(
                    "safety",
                    False,
                    f"two finalized checkpoints at epoch {first.epoch}: "
                    f"{first.root.hex[:8]} vs {second.root.hex[:8]}",
                )
            if tree is None:
                continue
            low, high = sorted((first, second), key=lambda c: c.epoch)
            if low.root in tree and high.root in tree and not tree.is_ancestor(
                low.root, high.root
            ):
                return PropertyVerdict(
                    "safety",
                    False,
                    f"finalized checkpoint {low.root.hex[:8]} (epoch {low.epoch}) is not "
                    f"an ancestor of {high.root.hex[:8]} (epoch {high.epoch})",
                )
    # Also compare the full finalized-checkpoint maps epoch by epoch.
    for i, state_a in enumerate(states):
        for state_b in states[i + 1 :]:
            shared = set(state_a.finalized_checkpoints) & set(state_b.finalized_checkpoints)
            for epoch in shared:
                if state_a.finalized_checkpoints[epoch] != state_b.finalized_checkpoints[epoch]:
                    return PropertyVerdict(
                        "safety",
                        False,
                        f"conflicting finalized checkpoints at epoch {epoch}",
                    )
    return PropertyVerdict("safety", True, "all finalized chains are prefix-ordered")


# ----------------------------------------------------------------------
# Liveness (Property 6)
# ----------------------------------------------------------------------
def check_liveness(
    states: Sequence[BeaconState],
    min_growth_epochs: int = 1,
    since_epoch: int = 0,
) -> PropertyVerdict:
    """Liveness: the finalized chain of every correct validator grew.

    ``min_growth_epochs`` is the number of epochs the finalized checkpoint
    must have advanced past ``since_epoch`` for the property to be declared
    held over the observation window.
    """
    laggards = [
        state.finalized_checkpoint.epoch
        for state in states
        if state.finalized_checkpoint.epoch < since_epoch + min_growth_epochs
    ]
    if laggards:
        return PropertyVerdict(
            "liveness",
            False,
            f"{len(laggards)} validator(s) finalized at most epoch {max(laggards, default=0)} "
            f"(required growth: {min_growth_epochs} past {since_epoch})",
        )
    return PropertyVerdict("liveness", True, "every finalized chain grew")


# ----------------------------------------------------------------------
# Availability (Property 5)
# ----------------------------------------------------------------------
def check_availability(
    trees: Sequence[BlockTree],
    observation_slots: int,
    max_gap_slots: Optional[int] = None,
) -> PropertyVerdict:
    """Availability: every candidate chain kept growing during the window.

    ``observation_slots`` is the number of slots simulated; the candidate
    chain of each validator must reach within ``max_gap_slots`` (default:
    one epoch's worth of slots, 32) of the end of the window.
    """
    gap = 32 if max_gap_slots is None else max_gap_slots
    for index, tree in enumerate(trees):
        if tree.highest_slot() < observation_slots - gap:
            return PropertyVerdict(
                "availability",
                False,
                f"validator {index}'s candidate chain stalled at slot {tree.highest_slot()} "
                f"out of {observation_slots}",
            )
    return PropertyVerdict("availability", True, "all candidate chains kept growing")


# ----------------------------------------------------------------------
# Byzantine-threshold property (the paper's second notion of Safety loss)
# ----------------------------------------------------------------------
def check_byzantine_threshold(
    states: Sequence[BeaconState],
    threshold: float = constants.BYZANTINE_SAFETY_THRESHOLD,
) -> PropertyVerdict:
    """Check that the Byzantine stake proportion stays below ``threshold``.

    The paper treats the Byzantine proportion exceeding one-third of the
    (remaining) stake as a Safety-threshold break even when no conflicting
    finalization has happened yet.
    """
    worst = 0.0
    for state in states:
        worst = max(worst, state.byzantine_stake_proportion())
    if worst >= threshold:
        return PropertyVerdict(
            "byzantine-threshold",
            False,
            f"Byzantine proportion reached {worst:.4f} >= {threshold:.4f}",
        )
    return PropertyVerdict(
        "byzantine-threshold", True, f"maximum Byzantine proportion {worst:.4f}"
    )


@dataclass
class PropertyReport:
    """All property verdicts for one simulation run."""

    verdicts: List[PropertyVerdict] = field(default_factory=list)

    def add(self, verdict: PropertyVerdict) -> None:
        self.verdicts.append(verdict)

    def holds(self, property_name: str) -> bool:
        """True if the named property was checked and held."""
        for verdict in self.verdicts:
            if verdict.property_name == property_name:
                return verdict.holds
        raise KeyError(f"property {property_name!r} was not checked")

    def all_hold(self) -> bool:
        return all(verdict.holds for verdict in self.verdicts)

    def format_text(self) -> str:
        lines = ["Property report"]
        for verdict in self.verdicts:
            status = "HOLDS" if verdict.holds else "VIOLATED"
            lines.append(f"  {verdict.property_name:<20} {status:<9} {verdict.details}")
        return "\n".join(lines)


def check_simulation_properties(
    engine,
    result,
    min_finalized_growth: int = 1,
) -> PropertyReport:
    """Run all property checkers over a finished slot-level simulation.

    ``engine`` is the :class:`repro.sim.engine.SimulationEngine` that
    produced ``result``; honest nodes only are considered (the properties
    quantify over correct validators).
    """
    report = PropertyReport()
    honest_states = [engine.nodes[i].state for i in result.honest_indices]
    honest_trees = [engine.nodes[i].store.tree for i in result.honest_indices]
    observation_slots = result.epochs_run * engine.config.slots_per_epoch
    report.add(check_safety(honest_states, tree=engine._global_tree))
    report.add(check_liveness(honest_states, min_growth_epochs=min_finalized_growth))
    report.add(
        check_availability(
            honest_trees,
            observation_slots=observation_slots,
            max_gap_slots=2 * engine.config.slots_per_epoch,
        )
    )
    report.add(check_byzantine_threshold(honest_states))
    return report
