"""Protocol configuration.

:class:`SpecConfig` bundles every protocol parameter that the paper's
analysis touches.  The defaults reproduce the mainnet values used in the
paper; the class methods provide scaled-down presets that keep the same
*ratios* (penalty quotient per epoch, ejection fraction) so short unit
tests exercise the identical code paths at a fraction of the horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro import constants


@dataclass(frozen=True)
class SpecConfig:
    """Parameters of the simulated Ethereum PoS protocol.

    Attributes mirror the constants in :mod:`repro.constants`; see that
    module for the meaning of each field.  Instances are immutable — use
    :meth:`with_overrides` to derive variants.
    """

    seconds_per_slot: int = constants.SECONDS_PER_SLOT
    slots_per_epoch: int = constants.SLOTS_PER_EPOCH
    max_effective_balance: float = constants.MAX_EFFECTIVE_BALANCE_ETH
    ejection_balance: float = constants.EJECTION_BALANCE_ETH
    inactivity_score_bias: int = constants.INACTIVITY_SCORE_BIAS
    inactivity_score_recovery: int = constants.INACTIVITY_SCORE_RECOVERY_PER_EPOCH
    inactivity_score_recovery_no_leak: int = (
        constants.INACTIVITY_SCORE_RECOVERY_RATE_NO_LEAK
    )
    inactivity_penalty_quotient: int = constants.INACTIVITY_PENALTY_QUOTIENT
    min_epochs_to_inactivity_penalty: int = constants.MIN_EPOCHS_TO_INACTIVITY_PENALTY
    min_slashing_penalty_fraction: float = constants.MIN_SLASHING_PENALTY_FRACTION
    supermajority_numerator: int = constants.SUPERMAJORITY_NUMERATOR
    supermajority_denominator: int = constants.SUPERMAJORITY_DENOMINATOR
    bouncing_window_slots: int = constants.BOUNCING_ATTACK_WINDOW_SLOTS
    #: Base reward factor used by the attestation reward model (per-epoch
    #: reward for a perfectly active validator, as a fraction of its stake).
    #: Roughly matches mainnet's ~4-5% yearly issuance spread over ~82k
    #: epochs per year.
    base_reward_fraction: float = 1.0 / 2 ** 21
    #: Fraction of the stake lost per epoch by a validator whose attestation
    #: is missing or late (attestation penalty, Section 3.3).  Negligible
    #: compared to inactivity penalties during a leak.
    attestation_penalty_fraction: float = 1.0 / 2 ** 21

    def __post_init__(self) -> None:
        if self.slots_per_epoch <= 0:
            raise ValueError("slots_per_epoch must be positive")
        if self.seconds_per_slot <= 0:
            raise ValueError("seconds_per_slot must be positive")
        if not 0 < self.ejection_balance < self.max_effective_balance:
            raise ValueError(
                "ejection_balance must lie strictly between 0 and the "
                "maximum effective balance"
            )
        if self.inactivity_penalty_quotient <= 0:
            raise ValueError("inactivity_penalty_quotient must be positive")
        if self.min_epochs_to_inactivity_penalty < 1:
            raise ValueError("min_epochs_to_inactivity_penalty must be >= 1")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def seconds_per_epoch(self) -> int:
        """Duration of an epoch in seconds."""
        return self.seconds_per_slot * self.slots_per_epoch

    @property
    def supermajority_fraction(self) -> float:
        """The FFG supermajority threshold as a float (2/3 on mainnet)."""
        return self.supermajority_numerator / self.supermajority_denominator

    def epoch_of_slot(self, slot: int) -> int:
        """Return the epoch containing ``slot``."""
        return slot // self.slots_per_epoch

    def start_slot_of_epoch(self, epoch: int) -> int:
        """Return the first slot of ``epoch``."""
        return epoch * self.slots_per_epoch

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def mainnet(cls) -> "SpecConfig":
        """The mainnet-like configuration used by the paper."""
        return cls()

    @classmethod
    def minimal(cls) -> "SpecConfig":
        """A scaled-down configuration for fast unit tests.

        Epochs are 4 slots long and the inactivity penalty quotient is
        divided by 2**12 so that leak dynamics (stake erosion, ejection)
        unfold within tens of epochs instead of thousands, while the update
        rules are bit-for-bit the same code.
        """
        return cls(
            slots_per_epoch=4,
            inactivity_penalty_quotient=2 ** 14,
            base_reward_fraction=1.0 / 2 ** 12,
            attestation_penalty_fraction=1.0 / 2 ** 12,
        )

    def with_overrides(self, **overrides: object) -> "SpecConfig":
        """Return a copy of this configuration with fields replaced."""
        return replace(self, **overrides)  # type: ignore[arg-type]

    def to_dict(self) -> Dict[str, object]:
        """Return the configuration as a plain dictionary (for reports)."""
        return {
            "seconds_per_slot": self.seconds_per_slot,
            "slots_per_epoch": self.slots_per_epoch,
            "max_effective_balance": self.max_effective_balance,
            "ejection_balance": self.ejection_balance,
            "inactivity_score_bias": self.inactivity_score_bias,
            "inactivity_score_recovery": self.inactivity_score_recovery,
            "inactivity_score_recovery_no_leak": self.inactivity_score_recovery_no_leak,
            "inactivity_penalty_quotient": self.inactivity_penalty_quotient,
            "min_epochs_to_inactivity_penalty": self.min_epochs_to_inactivity_penalty,
            "min_slashing_penalty_fraction": self.min_slashing_penalty_fraction,
            "supermajority_fraction": self.supermajority_fraction,
            "bouncing_window_slots": self.bouncing_window_slots,
        }


#: Module-level default configuration (mainnet parameters).
DEFAULT_CONFIG = SpecConfig.mainnet()
