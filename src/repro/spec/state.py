"""The beacon state: validator registry plus finality bookkeeping.

The state tracks, per validator view (one state per node in the simulator,
or one per branch in branch-level experiments):

* the validator registry (stakes, inactivity scores, exits),
* the justified and finalized checkpoints,
* how many epochs have elapsed since the last finalization, which decides
  whether the chain is in an inactivity leak (Section 3.3 / Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.spec.checkpoint import Checkpoint, GENESIS_CHECKPOINT
from repro.spec.config import SpecConfig
from repro.spec.validator import Validator, total_stake


@dataclass
class BeaconState:
    """Mutable protocol state as perceived along one chain."""

    config: SpecConfig
    validators: List[Validator]
    #: Current epoch being processed.
    current_epoch: int = 0
    #: Most recently justified checkpoint.
    current_justified_checkpoint: Checkpoint = GENESIS_CHECKPOINT
    #: Justified checkpoint of the previous epoch (needed for the
    #: consecutive-justification finalization rule).
    previous_justified_checkpoint: Checkpoint = GENESIS_CHECKPOINT
    #: Most recently finalized checkpoint.
    finalized_checkpoint: Checkpoint = GENESIS_CHECKPOINT
    #: Epochs that have been justified on this chain.
    justified_epochs: Set[int] = field(default_factory=lambda: {0})
    #: Checkpoints justified on this chain, keyed by epoch.
    justified_checkpoints: Dict[int, Checkpoint] = field(
        default_factory=lambda: {0: GENESIS_CHECKPOINT}
    )
    #: Checkpoints finalized on this chain, keyed by epoch.
    finalized_checkpoints: Dict[int, Checkpoint] = field(
        default_factory=lambda: {0: GENESIS_CHECKPOINT}
    )
    #: Epoch at which the last finalization happened.
    last_finalized_epoch: int = 0

    def __post_init__(self) -> None:
        if not self.validators:
            raise ValueError("BeaconState requires at least one validator")

    # ------------------------------------------------------------------
    # Registry helpers
    # ------------------------------------------------------------------
    def validator(self, index: int) -> Validator:
        """Return the validator with registry ``index``."""
        return self.validators[index]

    def active_validators(self, epoch: Optional[int] = None) -> List[Validator]:
        """Validators that are part of the active set at ``epoch``."""
        at_epoch = self.current_epoch if epoch is None else epoch
        return [v for v in self.validators if v.is_active(at_epoch)]

    def total_active_stake(self, epoch: Optional[int] = None) -> float:
        """Total stake of active validators at ``epoch``."""
        at_epoch = self.current_epoch if epoch is None else epoch
        return total_stake(self.validators, at_epoch)

    def stake_of(self, indices: Sequence[int], epoch: Optional[int] = None) -> float:
        """Combined stake of the active validators with the given indices."""
        at_epoch = self.current_epoch if epoch is None else epoch
        return sum(
            self.validators[i].stake
            for i in indices
            if self.validators[i].is_active(at_epoch)
        )

    def byzantine_stake_proportion(self, epoch: Optional[int] = None) -> float:
        """Proportion of active stake held by validators labelled byzantine."""
        at_epoch = self.current_epoch if epoch is None else epoch
        total = self.total_active_stake(at_epoch)
        if total == 0:
            return 0.0
        byz = sum(
            v.stake
            for v in self.validators
            if v.label == "byzantine" and v.is_active(at_epoch)
        )
        return byz / total

    # ------------------------------------------------------------------
    # Finality / leak bookkeeping
    # ------------------------------------------------------------------
    @property
    def epochs_since_finality(self) -> int:
        """Number of epochs elapsed since the last finalized epoch."""
        return max(0, self.current_epoch - self.last_finalized_epoch)

    def is_in_inactivity_leak(self) -> bool:
        """True when the chain has gone too long without finalization.

        The leak starts after ``min_epochs_to_inactivity_penalty`` (4)
        consecutive epochs without finalization (Section 3.3).
        """
        return self.epochs_since_finality > self.config.min_epochs_to_inactivity_penalty

    def record_justification(self, checkpoint: Checkpoint) -> None:
        """Mark ``checkpoint`` as justified on this chain."""
        self.justified_epochs.add(checkpoint.epoch)
        self.justified_checkpoints[checkpoint.epoch] = checkpoint
        if checkpoint.epoch >= self.current_justified_checkpoint.epoch:
            self.previous_justified_checkpoint = self.current_justified_checkpoint
            self.current_justified_checkpoint = checkpoint

    def record_finalization(self, checkpoint: Checkpoint) -> None:
        """Mark ``checkpoint`` as finalized on this chain."""
        self.finalized_checkpoints[checkpoint.epoch] = checkpoint
        if checkpoint.epoch >= self.finalized_checkpoint.epoch:
            self.finalized_checkpoint = checkpoint
            self.last_finalized_epoch = max(self.last_finalized_epoch, checkpoint.epoch)

    def is_justified(self, epoch: int) -> bool:
        """True if a checkpoint of ``epoch`` is justified on this chain."""
        return epoch in self.justified_epochs

    def is_finalized(self, epoch: int) -> bool:
        """True if a checkpoint of ``epoch`` is finalized on this chain."""
        return epoch in self.finalized_checkpoints

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def genesis(
        cls, validators: List[Validator], config: Optional[SpecConfig] = None
    ) -> "BeaconState":
        """Return a fresh state at epoch 0 with the genesis checkpoint finalized."""
        return cls(config=config or SpecConfig.mainnet(), validators=validators)

    def copy_registry(self) -> List[Validator]:
        """Deep-copy the validator registry (used to fork a state per branch)."""
        return [
            Validator(
                index=v.index,
                stake=v.stake,
                inactivity_score=v.inactivity_score,
                slashed=v.slashed,
                exit_epoch=v.exit_epoch,
                label=v.label,
            )
            for v in self.validators
        ]

    def fork(self) -> "BeaconState":
        """Return an independent copy of this state (used when a branch splits)."""
        forked = BeaconState(
            config=self.config,
            validators=self.copy_registry(),
            current_epoch=self.current_epoch,
            current_justified_checkpoint=self.current_justified_checkpoint,
            previous_justified_checkpoint=self.previous_justified_checkpoint,
            finalized_checkpoint=self.finalized_checkpoint,
            justified_epochs=set(self.justified_epochs),
            justified_checkpoints=dict(self.justified_checkpoints),
            finalized_checkpoints=dict(self.finalized_checkpoints),
            last_finalized_epoch=self.last_finalized_epoch,
        )
        return forked
