"""Attestation rewards and penalties (Section 3.3, incentive type ii).

Outside the inactivity leak, timely and correct attestations are rewarded
and missing/late attestations are penalized.  During the leak no attester
rewards are paid (only proposers and sync committees keep theirs, which we
do not model because the paper's analysis ignores them as negligible).

These rewards are *not* what drives the paper's results — the inactivity
penalties dominate during a leak — but they are part of the protocol and
keep the "no leak" baseline realistic (stakes stay pinned near 32 ETH).
The per-validator arithmetic lives in :mod:`repro.core.backend`
(:meth:`~repro.core.backend.StakeBackend.attestation_rewards_epoch_update`)
— the same vectorized kernel family as the inactivity leak — and this
module only adapts the :class:`BeaconState` validator registry to the
kernel's flat arrays (the registry round-trip itself is still O(n)
Python; flat-array callers should use :class:`repro.core.StakeEngine`
directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Union

import numpy as np

from repro.core.backend import RewardRules, StakeBackend, get_backend
from repro.spec.state import BeaconState


@dataclass
class RewardSummary:
    """Totals of one epoch of attestation reward/penalty processing."""

    epoch: int
    total_rewards: float = 0.0
    total_penalties: float = 0.0
    rewarded_indices: List[int] = field(default_factory=list)
    penalized_indices: List[int] = field(default_factory=list)


def base_reward(state: BeaconState, validator_index: int) -> float:
    """Per-epoch base reward of a validator, proportional to its stake."""
    validator = state.validators[validator_index]
    return validator.stake * state.config.base_reward_fraction


def attestation_penalty(state: BeaconState, validator_index: int) -> float:
    """Per-epoch penalty for a missing or incorrect attestation."""
    validator = state.validators[validator_index]
    return validator.stake * state.config.attestation_penalty_fraction


def process_attestation_rewards(
    state: BeaconState,
    active_indices: Iterable[int],
    in_leak: Optional[bool] = None,
    backend: Union[str, StakeBackend] = "numpy",
) -> RewardSummary:
    """Apply attestation rewards/penalties for one epoch.

    ``active_indices`` are the validators whose timely, correct attestation
    was included on this chain.  During an inactivity leak no rewards are
    paid (Section 4), but attestation penalties still apply to inactive
    validators; they are orders of magnitude smaller than the inactivity
    penalties, matching the paper's remark that they "tend to be less
    significant".

    Only non-zero credits and deductions are recorded in the summary's
    ``rewarded_indices``/``penalized_indices`` — a zero-stake validator is
    charged nothing and therefore not listed as penalized.
    """
    leak = state.is_in_inactivity_leak() if in_leak is None else in_leak
    active_set = set(active_indices)
    summary = RewardSummary(epoch=state.current_epoch)

    validators = list(state.validators)
    stakes = np.array([v.stake for v in validators], dtype=float)
    active = np.array([v.index in active_set for v in validators], dtype=bool)
    ineligible = np.array(
        [not v.is_active(state.current_epoch) or v.slashed for v in validators],
        dtype=bool,
    )
    rules = RewardRules.from_config(state.config)
    outcome = get_backend(backend).attestation_rewards_epoch_update(
        stakes, active, ineligible, rules, leak
    )
    for validator, stake in zip(validators, outcome.stakes.tolist()):
        validator.stake = stake
    summary.total_rewards = outcome.total_rewards
    summary.total_penalties = outcome.total_penalties
    summary.rewarded_indices = [
        validators[int(i)].index for i in np.flatnonzero(outcome.rewarded)
    ]
    summary.penalized_indices = [
        validators[int(i)].index for i in np.flatnonzero(outcome.penalized)
    ]
    return summary
