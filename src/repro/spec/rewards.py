"""Attestation rewards and penalties (Section 3.3, incentive type ii).

Outside the inactivity leak, timely and correct attestations are rewarded
and missing/late attestations are penalized.  During the leak no attester
rewards are paid (only proposers and sync committees keep theirs, which we
do not model because the paper's analysis ignores them as negligible).

These rewards are *not* what drives the paper's results — the inactivity
penalties dominate during a leak — but they are part of the protocol and
are exercised by the simulator so that the "no leak" baseline behaves
realistically (stakes stay pinned near 32 ETH).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.spec.config import SpecConfig
from repro.spec.state import BeaconState


@dataclass
class RewardSummary:
    """Totals of one epoch of attestation reward/penalty processing."""

    epoch: int
    total_rewards: float = 0.0
    total_penalties: float = 0.0
    rewarded_indices: List[int] = field(default_factory=list)
    penalized_indices: List[int] = field(default_factory=list)


def base_reward(state: BeaconState, validator_index: int) -> float:
    """Per-epoch base reward of a validator, proportional to its stake."""
    validator = state.validators[validator_index]
    return validator.stake * state.config.base_reward_fraction


def attestation_penalty(state: BeaconState, validator_index: int) -> float:
    """Per-epoch penalty for a missing or incorrect attestation."""
    validator = state.validators[validator_index]
    return validator.stake * state.config.attestation_penalty_fraction


def process_attestation_rewards(
    state: BeaconState,
    active_indices: Iterable[int],
    in_leak: Optional[bool] = None,
) -> RewardSummary:
    """Apply attestation rewards/penalties for one epoch.

    ``active_indices`` are the validators whose timely, correct attestation
    was included on this chain.  During an inactivity leak no rewards are
    paid (Section 4), but attestation penalties still apply to inactive
    validators; they are orders of magnitude smaller than the inactivity
    penalties, matching the paper's remark that they "tend to be less
    significant".
    """
    leak = state.is_in_inactivity_leak() if in_leak is None else in_leak
    cfg = state.config
    active_set = set(active_indices)
    summary = RewardSummary(epoch=state.current_epoch)
    for validator in state.validators:
        if not validator.is_active(state.current_epoch) or validator.slashed:
            continue
        if validator.index in active_set:
            if not leak:
                credited = validator.apply_reward(
                    base_reward(state, validator.index),
                    cap=cfg.max_effective_balance,
                )
                summary.total_rewards += credited
                if credited > 0:
                    summary.rewarded_indices.append(validator.index)
        else:
            deducted = validator.apply_penalty(
                attestation_penalty(state, validator.index)
            )
            summary.total_penalties += deducted
            summary.penalized_indices.append(validator.index)
    return summary
