"""Inactivity scores and the inactivity leak (Section 4 of the paper).

The update rules implemented here are exactly Equations 1 and 2:

* during a leak, an inactive validator's score increases by 4 per epoch and
  an active validator's score decreases by 1 (floored at 0);
* outside a leak every score additionally decreases by 16 per epoch;
* during a leak, each validator is charged ``score * stake / 2**26`` per
  epoch;
* validators whose stake falls to or below the ejection balance
  (16.75 ETH) are ejected from the validator set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set

from repro.spec.config import SpecConfig
from repro.spec.state import BeaconState
from repro.spec.validator import Validator


@dataclass
class InactivityUpdate:
    """Summary of one epoch of inactivity processing."""

    epoch: int
    in_leak: bool
    total_penalty: float = 0.0
    ejected_indices: List[int] = field(default_factory=list)
    #: Validator indices deemed inactive this epoch.
    inactive_indices: List[int] = field(default_factory=list)


def update_inactivity_scores(
    state: BeaconState,
    active_indices: Set[int],
    in_leak: bool,
) -> None:
    """Apply Equation 1 (and the out-of-leak recovery) to every validator.

    ``active_indices`` is the set of validators deemed active for the epoch
    being processed, i.e. those whose attestation with a correct target was
    included on this chain (Section 4.1).
    """
    cfg = state.config
    for validator in state.validators:
        if not validator.is_active(state.current_epoch):
            continue
        if validator.index in active_indices:
            validator.inactivity_score = max(
                0, validator.inactivity_score - cfg.inactivity_score_recovery
            )
        else:
            validator.inactivity_score += cfg.inactivity_score_bias
        if not in_leak:
            validator.inactivity_score = max(
                0,
                validator.inactivity_score - cfg.inactivity_score_recovery_no_leak,
            )


def apply_inactivity_penalties(state: BeaconState) -> float:
    """Apply Equation 2 to every active validator; returns the total burned.

    The penalty uses the score and stake of the *previous* epoch, which is
    what the state holds when this is called at the end of epoch processing
    (scores are updated after penalties, matching ``I(t-1)·s(t-1)/2**26``).
    """
    cfg = state.config
    total_penalty = 0.0
    for validator in state.validators:
        if not validator.is_active(state.current_epoch):
            continue
        penalty = validator.inactivity_score * validator.stake / cfg.inactivity_penalty_quotient
        total_penalty += validator.apply_penalty(penalty)
    return total_penalty


def eject_low_balance_validators(state: BeaconState) -> List[int]:
    """Eject validators whose stake has fallen to or below the ejection balance.

    Returns the indices of the newly ejected validators.  Ejection removes
    the validator from the active set starting at the next epoch, mirroring
    the paper's treatment in Figure 2 and Section 5.1.
    """
    cfg = state.config
    ejected: List[int] = []
    for validator in state.validators:
        if not validator.is_active(state.current_epoch):
            continue
        if validator.stake <= cfg.ejection_balance:
            validator.exit(state.current_epoch + 1)
            ejected.append(validator.index)
    return ejected


def process_inactivity_epoch(
    state: BeaconState,
    active_indices: Iterable[int],
    in_leak: Optional[bool] = None,
) -> InactivityUpdate:
    """Run one epoch of inactivity processing (penalties, scores, ejections).

    Order of operations matches Equation 2's indexing: penalties are charged
    from the scores and stakes carried over from the previous epoch, then
    the scores are updated from this epoch's activity, then low-balance
    validators are ejected.

    Parameters
    ----------
    state:
        The chain state to update in place.
    active_indices:
        Indices of validators deemed active for this epoch on this chain.
    in_leak:
        Force the leak flag; when ``None`` it is derived from the state's
        epochs-since-finality counter.
    """
    leak = state.is_in_inactivity_leak() if in_leak is None else in_leak
    active_set = set(active_indices)
    update = InactivityUpdate(epoch=state.current_epoch, in_leak=leak)
    update.inactive_indices = [
        v.index
        for v in state.validators
        if v.is_active(state.current_epoch) and v.index not in active_set
    ]
    if leak:
        update.total_penalty = apply_inactivity_penalties(state)
    update_inactivity_scores(state, active_set, leak)
    update.ejected_indices = eject_low_balance_validators(state)
    return update


# ----------------------------------------------------------------------
# Reference trajectories used by the analytical layer
# ----------------------------------------------------------------------
def discrete_stake_trajectory(
    behavior: str,
    epochs: int,
    config: Optional[SpecConfig] = None,
    initial_stake: Optional[float] = None,
    apply_ejection: bool = True,
) -> List[float]:
    """Simulate Equation 1+2 for a single validator with a fixed behaviour.

    ``behavior`` is one of ``"active"``, ``"semi-active"``, ``"inactive"``
    (Section 4.3).  Returns the list of stakes ``s(0), s(1), ..., s(epochs)``.
    Once the validator is ejected (stake <= ejection balance) the stake is
    frozen (reported as its value at ejection), matching Figure 2 where the
    trajectory stops at the expulsion limit.
    """
    if behavior not in {"active", "semi-active", "inactive"}:
        raise ValueError(f"unknown behavior {behavior!r}")
    cfg = config or SpecConfig.mainnet()
    stake = cfg.max_effective_balance if initial_stake is None else initial_stake
    score = 0
    trajectory = [stake]
    ejected = False
    for epoch in range(epochs):
        if not ejected:
            # Penalty from previous epoch's score and stake (Equation 2).
            stake = max(0.0, stake - score * stake / cfg.inactivity_penalty_quotient)
            # Activity for this epoch.
            if behavior == "active":
                active = True
            elif behavior == "inactive":
                active = False
            else:  # semi-active: active every other epoch
                active = epoch % 2 == 0
            if active:
                score = max(0, score - cfg.inactivity_score_recovery)
            else:
                score += cfg.inactivity_score_bias
            if apply_ejection and stake <= cfg.ejection_balance:
                ejected = True
        trajectory.append(stake)
    return trajectory


def discrete_ejection_epoch(
    behavior: str,
    config: Optional[SpecConfig] = None,
    max_epochs: int = 20_000,
) -> Optional[int]:
    """Epoch at which a validator with the given behaviour gets ejected.

    Returns ``None`` if the validator is never ejected within ``max_epochs``
    (active validators never are).
    """
    cfg = config or SpecConfig.mainnet()
    stake = cfg.max_effective_balance
    score = 0
    for epoch in range(1, max_epochs + 1):
        stake = max(0.0, stake - score * stake / cfg.inactivity_penalty_quotient)
        if behavior == "active":
            active = True
        elif behavior == "inactive":
            active = False
        elif behavior == "semi-active":
            active = (epoch - 1) % 2 == 0
        else:
            raise ValueError(f"unknown behavior {behavior!r}")
        if active:
            score = max(0, score - cfg.inactivity_score_recovery)
        else:
            score += cfg.inactivity_score_bias
        if stake <= cfg.ejection_balance:
            return epoch
    return None
