"""Inactivity scores and the inactivity leak (Section 4 of the paper).

The update rules implemented here are exactly Equations 1 and 2:

* during a leak, an inactive validator's score increases by 4 per epoch and
  an active validator's score decreases by 1 (floored at 0);
* outside a leak every score additionally decreases by 16 per epoch;
* during a leak, each validator is charged ``score * stake / 2**26`` per
  epoch;
* validators whose stake falls to or below the ejection balance
  (16.75 ETH) are ejected from the validator set.

The arithmetic itself lives in :mod:`repro.core.backend` — the shared,
vectorized stake-dynamics kernel also used by the leak and Monte-Carlo
layers.  This module adapts the :class:`BeaconState` validator registry to
the kernel's flat arrays and writes the results back, so the slot-level
simulator (:mod:`repro.sim`) exercises the exact same update code as every
other layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.core.backend import StakeBackend, StakeRules, get_backend
from repro.spec.config import SpecConfig
from repro.spec.state import BeaconState
from repro.spec.validator import Validator


@dataclass
class InactivityUpdate:
    """Summary of one epoch of inactivity processing."""

    epoch: int
    in_leak: bool
    total_penalty: float = 0.0
    ejected_indices: List[int] = field(default_factory=list)
    #: Validator indices deemed inactive this epoch.
    inactive_indices: List[int] = field(default_factory=list)


def _registry_arrays(
    state: BeaconState,
) -> Tuple[List[Validator], np.ndarray, np.ndarray, np.ndarray]:
    """Flatten the registry into (validators, stakes, scores, ineligible).

    ``ineligible`` plays the kernel's ``ejected`` role: validators already
    out of the active set are frozen by the update.
    """
    validators = list(state.validators)
    stakes = np.array([v.stake for v in validators], dtype=float)
    scores = np.array([float(v.inactivity_score) for v in validators], dtype=float)
    ineligible = np.array(
        [not v.is_active(state.current_epoch) for v in validators], dtype=bool
    )
    return validators, stakes, scores, ineligible


def _write_back_scores(validators: Sequence[Validator], scores: np.ndarray) -> None:
    """Store kernel scores, keeping integral values as ints (spec convention)."""
    for validator, score in zip(validators, scores.tolist()):
        validator.inactivity_score = int(score) if score == int(score) else score


def update_inactivity_scores(
    state: BeaconState,
    active_indices: Set[int],
    in_leak: bool,
    backend: Union[str, StakeBackend] = "numpy",
) -> None:
    """Apply Equation 1 (and the out-of-leak recovery) to every validator.

    ``active_indices`` is the set of validators deemed active for the epoch
    being processed, i.e. those whose attestation with a correct target was
    included on this chain (Section 4.1).
    """
    validators, _, scores, ineligible = _registry_arrays(state)
    active = np.array([v.index in active_indices for v in validators], dtype=bool)
    rules = StakeRules.from_config(state.config)
    new_scores = get_backend(backend).update_scores(
        scores, active, ineligible, rules, in_leak
    )
    _write_back_scores(validators, new_scores)


def apply_inactivity_penalties(
    state: BeaconState, backend: Union[str, StakeBackend] = "numpy"
) -> float:
    """Apply Equation 2 to every active validator; returns the total burned.

    The penalty uses the score and stake of the *previous* epoch, which is
    what the state holds when this is called at the end of epoch processing
    (scores are updated after penalties, matching ``I(t-1)·s(t-1)/2**26``).
    """
    validators, stakes, scores, ineligible = _registry_arrays(state)
    rules = StakeRules.from_config(state.config)
    new_stakes, total_penalty = get_backend(backend).apply_penalties(
        stakes, scores, ineligible, rules
    )
    for validator, stake in zip(validators, new_stakes.tolist()):
        validator.stake = stake
    return total_penalty


def eject_low_balance_validators(
    state: BeaconState, backend: Union[str, StakeBackend] = "numpy"
) -> List[int]:
    """Eject validators whose stake has fallen to or below the ejection balance.

    Returns the indices of the newly ejected validators.  Ejection removes
    the validator from the active set starting at the next epoch, mirroring
    the paper's treatment in Figure 2 and Section 5.1.
    """
    validators, stakes, _, ineligible = _registry_arrays(state)
    rules = StakeRules.from_config(state.config)
    newly = get_backend(backend).find_ejections(stakes, ineligible, rules)
    ejected: List[int] = []
    for position in np.flatnonzero(newly):
        validator = validators[int(position)]
        validator.exit(state.current_epoch + 1)
        ejected.append(validator.index)
    return ejected


def process_inactivity_epoch(
    state: BeaconState,
    active_indices: Iterable[int],
    in_leak: Optional[bool] = None,
    backend: Union[str, StakeBackend] = "numpy",
) -> InactivityUpdate:
    """Run one epoch of inactivity processing (penalties, scores, ejections).

    Order of operations matches Equation 2's indexing: penalties are charged
    from the scores and stakes carried over from the previous epoch, then
    the scores are updated from this epoch's activity, then low-balance
    validators are ejected.  The whole epoch is one fused
    :meth:`~repro.core.backend.StakeBackend.epoch_update` call on the
    shared kernel.

    Parameters
    ----------
    state:
        The chain state to update in place.
    active_indices:
        Indices of validators deemed active for this epoch on this chain.
    in_leak:
        Force the leak flag; when ``None`` it is derived from the state's
        epochs-since-finality counter.
    backend:
        Stake-dynamics backend (``"numpy"`` default, ``"python"`` reference).
    """
    leak = state.is_in_inactivity_leak() if in_leak is None else in_leak
    active_set = set(active_indices)
    update = InactivityUpdate(epoch=state.current_epoch, in_leak=leak)

    validators, stakes, scores, ineligible = _registry_arrays(state)
    update.inactive_indices = [
        validator.index
        for validator, out in zip(validators, ineligible.tolist())
        if not out and validator.index not in active_set
    ]
    active = np.array([v.index in active_set for v in validators], dtype=bool)
    rules = StakeRules.from_config(state.config)
    outcome = get_backend(backend).epoch_update(
        stakes, scores, active, ineligible, rules, in_leak=leak
    )
    for validator, stake in zip(validators, outcome.stakes.tolist()):
        validator.stake = stake
    _write_back_scores(validators, outcome.scores)
    for position in np.flatnonzero(outcome.newly_ejected):
        validator = validators[int(position)]
        validator.exit(state.current_epoch + 1)
        update.ejected_indices.append(validator.index)
    update.total_penalty = outcome.total_penalty
    return update


# ----------------------------------------------------------------------
# Reference trajectories used by the analytical layer
# ----------------------------------------------------------------------
_BEHAVIOR_PATTERNS = {
    "active": lambda epoch: True,
    "inactive": lambda epoch: False,
    "semi-active": lambda epoch: epoch % 2 == 0,
}


def discrete_stake_trajectory(
    behavior: str,
    epochs: int,
    config: Optional[SpecConfig] = None,
    initial_stake: Optional[float] = None,
    apply_ejection: bool = True,
    backend: Union[str, StakeBackend] = "numpy",
) -> List[float]:
    """Simulate Equation 1+2 for a single validator with a fixed behaviour.

    ``behavior`` is one of ``"active"``, ``"semi-active"``, ``"inactive"``
    (Section 4.3).  Returns the list of stakes ``s(0), s(1), ..., s(epochs)``.
    Once the validator is ejected (stake <= ejection balance) the stake is
    frozen (reported as its value at ejection), matching Figure 2 where the
    trajectory stops at the expulsion limit.
    """
    if behavior not in _BEHAVIOR_PATTERNS:
        raise ValueError(f"unknown behavior {behavior!r}")
    cfg = config or SpecConfig.mainnet()
    if isinstance(backend, str):
        # The trajectory is a pure function of hashable arguments; different
        # tables/figures ask for the same reference curves, so memoise.
        return list(
            _cached_stake_trajectory(
                behavior, epochs, cfg, initial_stake, apply_ejection, backend
            )
        )
    return _compute_stake_trajectory(
        behavior, epochs, cfg, initial_stake, apply_ejection, backend
    )


@lru_cache(maxsize=256)
def _cached_stake_trajectory(
    behavior: str,
    epochs: int,
    config: SpecConfig,
    initial_stake: Optional[float],
    apply_ejection: bool,
    backend: str,
) -> Tuple[float, ...]:
    return tuple(
        _compute_stake_trajectory(
            behavior, epochs, config, initial_stake, apply_ejection, backend
        )
    )


def _compute_stake_trajectory(
    behavior: str,
    epochs: int,
    cfg: SpecConfig,
    initial_stake: Optional[float],
    apply_ejection: bool,
    backend: Union[str, StakeBackend],
) -> List[float]:
    pattern = _BEHAVIOR_PATTERNS[behavior]
    rules = StakeRules.from_config(cfg)
    if not apply_ejection:
        rules = replace(rules, ejection_balance=-math.inf)
    kernel = get_backend(backend)
    stakes = np.array(
        [cfg.max_effective_balance if initial_stake is None else initial_stake]
    )
    scores = np.zeros(1)
    ejected = np.zeros(1, dtype=bool)
    trajectory = [float(stakes[0])]
    for epoch in range(epochs):
        outcome = kernel.epoch_update(
            stakes, scores, np.array([pattern(epoch)]), ejected, rules, in_leak=True
        )
        stakes, scores, ejected = outcome.stakes, outcome.scores, outcome.ejected
        trajectory.append(float(stakes[0]))
    return trajectory


def discrete_ejection_epoch(
    behavior: str,
    config: Optional[SpecConfig] = None,
    max_epochs: int = 20_000,
    backend: Union[str, StakeBackend] = "numpy",
) -> Optional[int]:
    """Epoch at which a validator with the given behaviour gets ejected.

    Returns ``None`` if the validator is never ejected within ``max_epochs``
    (active validators never are).
    """
    if behavior not in _BEHAVIOR_PATTERNS:
        raise ValueError(f"unknown behavior {behavior!r}")
    cfg = config or SpecConfig.mainnet()
    if isinstance(backend, str):
        return _cached_ejection_epoch(behavior, cfg, max_epochs, backend)
    return _compute_ejection_epoch(behavior, cfg, max_epochs, backend)


@lru_cache(maxsize=256)
def _cached_ejection_epoch(
    behavior: str, config: SpecConfig, max_epochs: int, backend: str
) -> Optional[int]:
    return _compute_ejection_epoch(behavior, config, max_epochs, backend)


def _compute_ejection_epoch(
    behavior: str,
    cfg: SpecConfig,
    max_epochs: int,
    backend: Union[str, StakeBackend],
) -> Optional[int]:
    pattern = _BEHAVIOR_PATTERNS[behavior]
    rules = StakeRules.from_config(cfg)
    kernel = get_backend(backend)
    stakes = np.array([cfg.max_effective_balance])
    scores = np.zeros(1)
    ejected = np.zeros(1, dtype=bool)
    for epoch in range(1, max_epochs + 1):
        outcome = kernel.epoch_update(
            stakes, scores, np.array([pattern(epoch - 1)]), ejected, rules, in_leak=True
        )
        if bool(outcome.newly_ejected[0]):
            return epoch
        stakes, scores, ejected = outcome.stakes, outcome.scores, outcome.ejected
    return None
