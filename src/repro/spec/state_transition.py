"""Epoch processing: the glue between votes, finality, incentives and the leak.

``process_epoch`` takes a chain state, the FFG votes observed for the epoch
on that chain, and the set of validators deemed active, and performs — in
protocol order — justification/finalization, attestation rewards/penalties,
inactivity-score updates and penalties, slashings, and ejections.  Every
stage, justification included, runs array-native on one
:mod:`repro.core.backend` kernel instance resolved here once.

The slot-level simulator (:mod:`repro.sim`) and the branch-level scenario
drivers (:mod:`repro.analysis.partition_scenarios`) both call into this
module, so the paper's mechanisms are exercised by a single implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Union

from repro.core.backend import StakeBackend, get_backend
from repro.spec.checkpoint import Checkpoint
from repro.spec.finality import FFGVotePool, JustificationResult, process_justification
from repro.spec.inactivity import InactivityUpdate, process_inactivity_epoch
from repro.spec.rewards import RewardSummary, process_attestation_rewards
from repro.spec.slashing import SlashingOutcome, apply_slashing
from repro.spec.state import BeaconState


@dataclass
class EpochReport:
    """Everything that happened while processing one epoch on one chain."""

    epoch: int
    in_leak: bool
    justification: JustificationResult
    rewards: RewardSummary
    inactivity: InactivityUpdate
    slashing: SlashingOutcome
    #: Proportion of active stake held by Byzantine-labelled validators at
    #: the end of the epoch (used by the threshold experiments).
    byzantine_proportion: float = 0.0
    #: Ratio of "active this epoch" stake to total active stake, the
    #: quantity plotted in Figure 3.
    active_stake_ratio: float = 0.0


def active_stake_ratio(state: BeaconState, active_indices: Set[int]) -> float:
    """Stake of validators active this epoch over the total active stake."""
    total = state.total_active_stake()
    if total <= 0:
        return 0.0
    return state.stake_of(sorted(active_indices)) / total


def process_epoch(
    state: BeaconState,
    pool: FFGVotePool,
    active_indices: Iterable[int],
    slashable_indices: Iterable[int] = (),
    epoch: Optional[int] = None,
    backend: Union[str, StakeBackend] = "numpy",
) -> EpochReport:
    """Process one epoch of the chain described by ``state``.

    Parameters
    ----------
    state:
        Chain state, updated in place.  ``state.current_epoch`` must already
        be set to the epoch being processed (the caller advances it).
    pool:
        FFG vote pool holding the checkpoint votes observed on this chain.
    active_indices:
        Validators whose timely and correct (for this chain) attestation was
        observed during the epoch.
    slashable_indices:
        Validators for which slashing evidence was included in a block of
        this chain during the epoch.
    epoch:
        Optional explicit epoch number; defaults to ``state.current_epoch``.
    backend:
        Stake-dynamics backend used by the justification, rewards,
        inactivity and slashing stages (``"numpy"`` default, ``"python"``
        reference); resolved once here so the whole epoch runs on one
        kernel instance.
    """
    at_epoch = state.current_epoch if epoch is None else epoch
    state.current_epoch = at_epoch
    active_set = set(active_indices)
    kernel = get_backend(backend, population=len(state.validators))

    # The leak flag is evaluated before this epoch's justification result,
    # i.e. on the epochs-without-finality streak carried into the epoch.
    in_leak = state.is_in_inactivity_leak()

    justification = process_justification(state, pool, at_epoch, backend=kernel)
    rewards = process_attestation_rewards(
        state, active_set, in_leak=in_leak, backend=kernel
    )
    inactivity = process_inactivity_epoch(
        state, active_set, in_leak=in_leak, backend=kernel
    )
    slashing = apply_slashing(state, slashable_indices, backend=kernel)

    ratio = active_stake_ratio(state, active_set)
    report = EpochReport(
        epoch=at_epoch,
        in_leak=in_leak,
        justification=justification,
        rewards=rewards,
        inactivity=inactivity,
        slashing=slashing,
        byzantine_proportion=state.byzantine_stake_proportion(),
        active_stake_ratio=ratio,
    )
    return report


def advance_epoch(state: BeaconState) -> int:
    """Move the state to the next epoch and return the new epoch number."""
    state.current_epoch += 1
    return state.current_epoch


@dataclass
class ChainHistory:
    """Accumulated per-epoch reports for one chain (branch)."""

    reports: List[EpochReport] = field(default_factory=list)

    def append(self, report: EpochReport) -> None:
        self.reports.append(report)

    @property
    def last(self) -> Optional[EpochReport]:
        return self.reports[-1] if self.reports else None

    def first_finalization_epoch(self, after_epoch: int = 0) -> Optional[int]:
        """Epoch of the first finalization event strictly after ``after_epoch``."""
        for report in self.reports:
            if report.epoch <= after_epoch:
                continue
            if report.justification.finalized_any:
                return report.epoch
        return None

    def byzantine_proportion_series(self) -> List[float]:
        """The Byzantine stake proportion at the end of each processed epoch."""
        return [report.byzantine_proportion for report in self.reports]

    def active_ratio_series(self) -> List[float]:
        """The active-stake ratio at each processed epoch (Figure 3 series)."""
        return [report.active_stake_ratio for report in self.reports]

    def leak_epochs(self) -> List[int]:
        """Epochs during which the chain was in an inactivity leak."""
        return [report.epoch for report in self.reports if report.in_leak]
