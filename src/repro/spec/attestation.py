"""Attestations: the votes cast by validators every epoch.

An attestation carries two votes (Section 3.2 of the paper):

* a **block vote** (``head_root``) used by the LMD-GHOST fork-choice rule,
* a **checkpoint vote** (``ffg``), a source→target link used by the FFG
  finality gadget to justify and finalize checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.spec.checkpoint import Checkpoint, FFGVote
from repro.spec.types import Root

if TYPE_CHECKING:  # pragma: no cover - typing only (core sits below spec)
    from repro.core.attestation_batch import AttestationBatch


@dataclass(frozen=True)
class Attestation:
    """A single validator's attestation for one slot."""

    validator_index: int
    slot: int
    #: Block vote: the head of the attester's candidate chain.
    head_root: Root
    #: Checkpoint vote: justified source -> current-epoch target.
    ffg: FFGVote

    def __post_init__(self) -> None:
        if self.validator_index < 0:
            raise ValueError("validator index must be non-negative")
        if self.slot < 0:
            raise ValueError("attestation slot must be non-negative")

    @property
    def source(self) -> Checkpoint:
        """The FFG source checkpoint."""
        return self.ffg.source

    @property
    def target(self) -> Checkpoint:
        """The FFG target checkpoint."""
        return self.ffg.target

    @property
    def target_epoch(self) -> int:
        """Epoch of the FFG target (the epoch this attestation votes for)."""
        return self.ffg.target.epoch

    def is_double_vote_with(self, other: "Attestation") -> bool:
        """True if the two attestations form a slashable double vote.

        Both must come from the same validator and vote for the same target
        epoch with different FFG votes (Casper FFG rule I, the offence the
        slashing-based attack of Section 5.2.1 commits).
        """
        return (
            self.validator_index == other.validator_index
            and self.ffg.conflicts_as_double_vote(other.ffg)
        )

    def is_surround_vote_with(self, other: "Attestation") -> bool:
        """True if one of the two attestations surrounds the other.

        Both must come from the same validator (Casper FFG rule II).
        """
        if self.validator_index != other.validator_index:
            return False
        return self.ffg.surrounds(other.ffg) or other.ffg.surrounds(self.ffg)

    def is_slashable_with(self, other: "Attestation") -> bool:
        """True if the pair of attestations is slashable (rule I or rule II)."""
        return self.is_double_vote_with(other) or self.is_surround_vote_with(other)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Attestation(v={self.validator_index}, slot={self.slot}, "
            f"head={self.head_root.hex[:8]}, "
            f"src_epoch={self.source.epoch}, tgt_epoch={self.target.epoch})"
        )


def attestations_from_batch(batch: "AttestationBatch") -> List[Attestation]:
    """Materialize the per-validator attestations a batch stands for.

    The shared ``FFGVote`` is built once and referenced by every row, so
    expanding a batch costs one small object per validator — used only
    where per-validator objects are genuinely needed (block inclusion,
    the slashing detector); the array paths never expand.
    """
    ffg = FFGVote(source=batch.source, target=batch.target)
    return [
        Attestation(
            validator_index=int(validator),
            slot=batch.slot,
            head_root=batch.head_root,
            ffg=ffg,
        )
        for validator in batch.validators.tolist()
    ]
