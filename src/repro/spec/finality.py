"""Casper FFG justification and finalization.

Checkpoint votes (source → target links) are accumulated per target
checkpoint and weighted by the attesting validators' stake.  A checkpoint
becomes *justified* when links from an already-justified source reach a
supermajority (> 2/3 of the active stake).  A justified checkpoint becomes
*finalized* when the checkpoint of the immediately following epoch is also
justified with the former as source — the "two consecutive justified
checkpoints" rule the paper describes in Section 3.2.

The heavy lifting is array-native: :class:`FFGVotePool` is a thin
checkpoint-interning adapter over :class:`repro.core.ffg.FlatVotePool`
(flat int arrays, O(1) per vote, no per-target dict rescans) and
:func:`process_justification` hands one epoch's vote arrays to the
:meth:`repro.core.backend.StakeBackend.finality_epoch_update` kernel —
the same numpy-fast-path / bit-identical-python-reference pair as the
incentive stages — then replays the returned transitions onto the
:class:`BeaconState`.  This module only does the registry↔array
round-trip (still O(n) Python; flat-array callers should drive the
kernel through :class:`repro.core.FlatVotePool` directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

import numpy as np

from repro.core.attestation_batch import AttestationBatch
from repro.core.backend import FinalityRules, StakeBackend, get_backend
from repro.core.ffg import FlatVotePool
from repro.spec.attestation import Attestation
from repro.spec.checkpoint import Checkpoint, FFGVote
from repro.spec.state import BeaconState


@dataclass
class JustificationResult:
    """Outcome of processing the FFG votes of one epoch."""

    newly_justified: List[Checkpoint] = field(default_factory=list)
    newly_finalized: List[Checkpoint] = field(default_factory=list)

    @property
    def justified_any(self) -> bool:
        return bool(self.newly_justified)

    @property
    def finalized_any(self) -> bool:
        return bool(self.newly_finalized)


class FFGVotePool:
    """Accumulates checkpoint votes, deduplicated per validator and target epoch.

    A validator's stake counts at most once towards any given target epoch
    (double votes are slashable, not double-counted).

    Thin adapter translating :class:`Checkpoint` votes to the flat-array
    :class:`repro.core.ffg.FlatVotePool` (exposed as :attr:`flat`), which
    stores them as preallocated int arrays with per-link tallies updated
    incrementally on insert.  The dict/set views below are reconstructed
    on demand for inspection and tests; epoch processing never touches
    them — :func:`process_justification` reads the arrays directly.
    """

    def __init__(self) -> None:
        #: The underlying flat-array accumulator.
        self.flat = FlatVotePool()

    def clone(self) -> "FFGVotePool":
        """An independent pool with the same recorded votes (view splits)."""
        copy = FFGVotePool()
        copy.flat = self.flat.clone()
        return copy

    def add_attestation(self, attestation: Attestation) -> bool:
        """Record the checkpoint vote carried by ``attestation``.

        Returns ``True`` if this is the first vote of the validator for the
        target epoch (later conflicting votes are ignored for counting
        purposes; slashing detection is handled elsewhere).
        """
        return self.add_vote(attestation.validator_index, attestation.ffg)

    def add_vote(self, validator_index: int, vote: FFGVote) -> bool:
        """Record a bare FFG vote (used by epoch-level simulations)."""
        return self.flat.add_vote(
            validator_index,
            vote.source.epoch,
            vote.source.root,
            vote.target.epoch,
            vote.target.root,
        )

    def add_batch(self, batch: "AttestationBatch") -> int:
        """Record a committee batch's identical checkpoint votes in bulk.

        One call per batch instead of one per validator: the flat pool
        appends all rows with slice writes and bumps the shared link
        tally once.  Returns the number of votes that counted (first
        vote per validator and target epoch wins, as for single votes).
        """
        return self.flat.add_batch(
            batch.validators,
            batch.source.epoch,
            batch.source.root,
            batch.target.epoch,
            batch.target.root,
        )

    def votes_for_target_epoch(self, epoch: int) -> Dict[int, FFGVote]:
        """Return the recorded votes (validator index → vote) for ``epoch``.

        Reconstructed from the flat arrays on demand — an inspection view,
        not the hot path (``process_justification`` used to call this once
        per target, copying the whole dict each time).
        """
        votes = self.flat.vote_arrays(epoch)
        if votes is None:
            return {}
        validators, source_epochs, source_roots, target_roots = votes
        root_of = self.flat.root_of
        return {
            int(validator): FFGVote(
                source=Checkpoint(epoch=int(source_epoch), root=root_of(source_root)),
                target=Checkpoint(epoch=epoch, root=root_of(target_root)),
            )
            for validator, source_epoch, source_root, target_root in zip(
                validators.tolist(),
                source_epochs.tolist(),
                source_roots.tolist(),
                target_roots.tolist(),
            )
        }

    def voters_for_link(self, source: Checkpoint, target: Checkpoint) -> Set[int]:
        """Validator indices that voted for the exact ``source → target`` link."""
        votes = self.flat.vote_arrays(target.epoch)
        if votes is None:
            return set()
        source_id = self.flat.lookup_root(source.root)
        target_id = self.flat.lookup_root(target.root)
        if source_id is None or target_id is None:
            return set()
        validators, source_epochs, source_roots, target_roots = votes
        mask = (
            (source_epochs == source.epoch)
            & (source_roots == source_id)
            & (target_roots == target_id)
        )
        return {int(validator) for validator in validators[mask]}

    def targets_at_epoch(self, epoch: int) -> Set[Checkpoint]:
        """Distinct target checkpoints voted for at ``epoch``."""
        return {
            Checkpoint(epoch=epoch, root=self.flat.root_of(root_id))
            for root_id in self.flat.target_root_ids(epoch)
        }

    def clear_before(self, epoch: int) -> None:
        """Drop votes for target epochs strictly before ``epoch`` (pruning)."""
        self.flat.clear_before(epoch)


def link_support(
    state: BeaconState,
    pool: FFGVotePool,
    source: Checkpoint,
    target: Checkpoint,
    epoch: Optional[int] = None,
) -> float:
    """Stake supporting the supermajority link ``source → target``."""
    voters = pool.voters_for_link(source, target)
    return state.stake_of(sorted(voters), epoch=epoch)


def is_supermajority(state: BeaconState, stake: float, epoch: Optional[int] = None) -> bool:
    """True if ``stake`` exceeds the supermajority fraction of the active stake."""
    total = state.total_active_stake(epoch)
    if total <= 0:
        return False
    return stake / total > state.config.supermajority_fraction


def process_justification(
    state: BeaconState,
    pool: FFGVotePool,
    epoch: int,
    backend: Union[str, StakeBackend] = "numpy",
) -> JustificationResult:
    """Run justification and finalization for the target checkpoints of ``epoch``.

    The function inspects every distinct target checkpoint voted for at
    ``epoch``.  A target is justified when the link from an already
    justified source gathers a supermajority of the active stake.  When the
    source of a newly justified target is the justified checkpoint of
    ``epoch - 1``, that source is finalized (consecutive justification).

    The decision cascade and per-link stake tallies run on the
    ``finality_epoch_update`` kernel of ``backend`` (``"numpy"`` default,
    ``"python"`` reference) over the pool's flat vote arrays — one pass
    over the epoch's votes instead of a per-target dict rescan — and the
    resulting transitions are replayed onto ``state`` in kernel order,
    bit-identical to the per-checkpoint loop this replaces
    (``tests/test_finality_regression.py`` pins the port).
    """
    result = JustificationResult()
    flat = pool.flat
    votes = flat.vote_arrays(epoch)
    if votes is None:
        return result
    vote_validators, vote_source_epochs, vote_source_roots, vote_target_roots = votes

    registry = state.validators
    n = len(registry)
    stakes = np.fromiter((v.stake for v in registry), dtype=float, count=n)
    eligible = np.fromiter((v.is_active(epoch) for v in registry), dtype=bool, count=n)
    # The kernel indexes stakes/eligible by registry *position*; translate
    # vote validator indices when the registry order disagrees with
    # ``Validator.index`` (same mismatch ``apply_slashing`` resolves with
    # its ``position_of`` map, vectorized here through a lookup table).
    indices = np.fromiter((v.index for v in registry), dtype=np.int64, count=n)
    if not np.array_equal(indices, np.arange(n)):
        positions = np.full(int(indices.max()) + 1, -1, dtype=np.int64)
        positions[indices] = np.arange(n)
        vote_validators = positions[vote_validators]
        if np.any(vote_validators < 0):
            raise KeyError("vote from a validator index absent from the registry")

    # Only the justified checkpoints the votes can actually reference
    # matter: the voted source epochs, plus the processed epoch itself
    # (for the target-already-justified skip).
    relevant_epochs = set(vote_source_epochs.tolist())
    relevant_epochs.add(epoch)
    justified_roots = {}
    for justified_epoch in relevant_epochs:
        checkpoint = state.justified_checkpoints.get(justified_epoch)
        if checkpoint is not None and state.is_justified(justified_epoch):
            justified_roots[justified_epoch] = flat.intern_root(checkpoint.root)

    kernel = get_backend(backend, population=n)
    update = kernel.finality_epoch_update(
        vote_validators,
        vote_source_epochs,
        vote_source_roots,
        vote_target_roots,
        stakes,
        eligible,
        FinalityRules.from_config(state.config),
        epoch=epoch,
        total_stake=state.total_active_stake(epoch),
        justified_roots=justified_roots,
        finalized_epoch=state.finalized_checkpoint.epoch,
        root_rank=flat.root_ranks(),
    )
    for event in update.events:
        target = Checkpoint(
            epoch=event.target_epoch, root=flat.root_of(event.target_root)
        )
        state.record_justification(target)
        result.newly_justified.append(target)
        if event.finalizes_source:
            source = Checkpoint(
                epoch=event.source_epoch, root=flat.root_of(event.source_root)
            )
            state.record_finalization(source)
            result.newly_finalized.append(source)
    return result


def conflicting_finalized_checkpoints(
    states: Iterable[BeaconState],
) -> List[Tuple[Checkpoint, Checkpoint]]:
    """Return pairs of finalized checkpoints that conflict across states.

    Two finalized checkpoints conflict when they occupy the same epoch with
    different roots, or more generally when neither chain's finalized
    checkpoint set is a superset of the other at the shared epochs.  This is
    the paper's Safety-violation detector: two correct validators whose
    finalized chains are not prefixes of one another.
    """
    state_list = list(states)
    conflicts: List[Tuple[Checkpoint, Checkpoint]] = []
    for i, state_a in enumerate(state_list):
        for state_b in state_list[i + 1 :]:
            shared_epochs = set(state_a.finalized_checkpoints) & set(
                state_b.finalized_checkpoints
            )
            for epoch in sorted(shared_epochs):
                checkpoint_a = state_a.finalized_checkpoints[epoch]
                checkpoint_b = state_b.finalized_checkpoints[epoch]
                if checkpoint_a != checkpoint_b:
                    conflicts.append((checkpoint_a, checkpoint_b))
    return conflicts


def safety_violated(states: Iterable[BeaconState]) -> bool:
    """True if any two states finalized conflicting checkpoints."""
    return bool(conflicting_finalized_checkpoints(states))
