"""Casper FFG justification and finalization.

Checkpoint votes (source → target links) are accumulated per target
checkpoint and weighted by the attesting validators' stake.  A checkpoint
becomes *justified* when links from an already-justified source reach a
supermajority (> 2/3 of the active stake).  A justified checkpoint becomes
*finalized* when the checkpoint of the immediately following epoch is also
justified with the former as source — the "two consecutive justified
checkpoints" rule the paper describes in Section 3.2.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.spec.attestation import Attestation
from repro.spec.checkpoint import Checkpoint, FFGVote
from repro.spec.state import BeaconState


@dataclass
class JustificationResult:
    """Outcome of processing the FFG votes of one epoch."""

    newly_justified: List[Checkpoint] = field(default_factory=list)
    newly_finalized: List[Checkpoint] = field(default_factory=list)

    @property
    def justified_any(self) -> bool:
        return bool(self.newly_justified)

    @property
    def finalized_any(self) -> bool:
        return bool(self.newly_finalized)


class FFGVotePool:
    """Accumulates checkpoint votes, deduplicated per validator and target epoch.

    A validator's stake counts at most once towards any given target epoch
    (double votes are slashable, not double-counted).
    """

    def __init__(self) -> None:
        # (target_epoch) -> validator_index -> FFGVote
        self._votes: Dict[int, Dict[int, FFGVote]] = defaultdict(dict)

    def add_attestation(self, attestation: Attestation) -> bool:
        """Record the checkpoint vote carried by ``attestation``.

        Returns ``True`` if this is the first vote of the validator for the
        target epoch (later conflicting votes are ignored for counting
        purposes; slashing detection is handled elsewhere).
        """
        target_epoch = attestation.target_epoch
        per_validator = self._votes[target_epoch]
        if attestation.validator_index in per_validator:
            return False
        per_validator[attestation.validator_index] = attestation.ffg
        return True

    def add_vote(self, validator_index: int, vote: FFGVote) -> bool:
        """Record a bare FFG vote (used by epoch-level simulations)."""
        per_validator = self._votes[vote.target.epoch]
        if validator_index in per_validator:
            return False
        per_validator[validator_index] = vote
        return True

    def votes_for_target_epoch(self, epoch: int) -> Dict[int, FFGVote]:
        """Return the recorded votes (validator index → vote) for ``epoch``."""
        return dict(self._votes.get(epoch, {}))

    def voters_for_link(self, source: Checkpoint, target: Checkpoint) -> Set[int]:
        """Validator indices that voted for the exact ``source → target`` link."""
        return {
            index
            for index, vote in self._votes.get(target.epoch, {}).items()
            if vote.source == source and vote.target == target
        }

    def targets_at_epoch(self, epoch: int) -> Set[Checkpoint]:
        """Distinct target checkpoints voted for at ``epoch``."""
        return {vote.target for vote in self._votes.get(epoch, {}).values()}

    def clear_before(self, epoch: int) -> None:
        """Drop votes for target epochs strictly before ``epoch`` (pruning)."""
        for target_epoch in [e for e in self._votes if e < epoch]:
            del self._votes[target_epoch]


def link_support(
    state: BeaconState,
    pool: FFGVotePool,
    source: Checkpoint,
    target: Checkpoint,
    epoch: Optional[int] = None,
) -> float:
    """Stake supporting the supermajority link ``source → target``."""
    voters = pool.voters_for_link(source, target)
    return state.stake_of(sorted(voters), epoch=epoch)


def is_supermajority(state: BeaconState, stake: float, epoch: Optional[int] = None) -> bool:
    """True if ``stake`` exceeds the supermajority fraction of the active stake."""
    total = state.total_active_stake(epoch)
    if total <= 0:
        return False
    return stake / total > state.config.supermajority_fraction


def process_justification(
    state: BeaconState, pool: FFGVotePool, epoch: int
) -> JustificationResult:
    """Run justification and finalization for the target checkpoints of ``epoch``.

    The function inspects every distinct target checkpoint voted for at
    ``epoch``.  A target is justified when the link from an already
    justified source gathers a supermajority of the active stake.  When the
    source of a newly justified target is the justified checkpoint of
    ``epoch - 1``, that source is finalized (consecutive justification).
    """
    result = JustificationResult()
    for target in sorted(pool.targets_at_epoch(epoch)):
        if state.is_justified(target.epoch) and state.justified_checkpoints.get(
            target.epoch
        ) == target:
            continue
        # Consider every justified source the votes actually used.
        votes = pool.votes_for_target_epoch(epoch)
        sources = {vote.source for vote in votes.values() if vote.target == target}
        for source in sorted(sources):
            if not state.is_justified(source.epoch):
                continue
            if state.justified_checkpoints.get(source.epoch) != source:
                continue
            support = link_support(state, pool, source, target, epoch=epoch)
            if not is_supermajority(state, support, epoch=epoch):
                continue
            state.record_justification(target)
            result.newly_justified.append(target)
            # Finalization: source and target justified in consecutive epochs
            # (only reported when the finalized chain actually grows).
            if (
                target.epoch == source.epoch + 1
                and source.epoch > state.finalized_checkpoint.epoch
            ):
                state.record_finalization(source)
                result.newly_finalized.append(source)
            break
    return result


def conflicting_finalized_checkpoints(
    states: Iterable[BeaconState],
) -> List[Tuple[Checkpoint, Checkpoint]]:
    """Return pairs of finalized checkpoints that conflict across states.

    Two finalized checkpoints conflict when they occupy the same epoch with
    different roots, or more generally when neither chain's finalized
    checkpoint set is a superset of the other at the shared epochs.  This is
    the paper's Safety-violation detector: two correct validators whose
    finalized chains are not prefixes of one another.
    """
    state_list = list(states)
    conflicts: List[Tuple[Checkpoint, Checkpoint]] = []
    for i, state_a in enumerate(state_list):
        for state_b in state_list[i + 1 :]:
            shared_epochs = set(state_a.finalized_checkpoints) & set(
                state_b.finalized_checkpoints
            )
            for epoch in sorted(shared_epochs):
                checkpoint_a = state_a.finalized_checkpoints[epoch]
                checkpoint_b = state_b.finalized_checkpoints[epoch]
                if checkpoint_a != checkpoint_b:
                    conflicts.append((checkpoint_a, checkpoint_b))
    return conflicts


def safety_violated(states: Iterable[BeaconState]) -> bool:
    """True if any two states finalized conflicting checkpoints."""
    return bool(conflicting_finalized_checkpoints(states))
