"""Beacon blocks.

A block occupies a slot, extends a parent block, and carries the
attestations (and slashing evidence) its proposer chose to include.  Blocks
are immutable value objects; the mutable chain structure lives in
:mod:`repro.spec.blocktree`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.spec.attestation import Attestation
from repro.spec.types import Root, GENESIS_ROOT


@dataclass(frozen=True)
class BeaconBlock:
    """A block in the beacon chain."""

    slot: int
    proposer_index: int
    parent_root: Root
    root: Root
    #: Attestations included by the proposer (may be empty).
    attestations: Tuple[Attestation, ...] = field(default_factory=tuple)
    #: Indices of validators for which this block includes slashing evidence.
    slashing_evidence: Tuple[int, ...] = field(default_factory=tuple)
    #: Fork label chosen by the proposer (already folded into ``root``);
    #: carried so attack agents can recognise their own branches later.
    branch_tag: str = ""

    def __post_init__(self) -> None:
        if self.slot < 0:
            raise ValueError(f"block slot must be non-negative, got {self.slot}")
        if self.proposer_index < 0:
            raise ValueError("proposer index must be non-negative")

    @staticmethod
    def genesis() -> "BeaconBlock":
        """Return the canonical genesis block (slot 0, no parent)."""
        return BeaconBlock(
            slot=0,
            proposer_index=0,
            parent_root=GENESIS_ROOT,
            root=GENESIS_ROOT,
        )

    @staticmethod
    def create(
        slot: int,
        proposer_index: int,
        parent_root: Root,
        attestations: Tuple[Attestation, ...] = (),
        slashing_evidence: Tuple[int, ...] = (),
        branch_tag: str = "",
    ) -> "BeaconBlock":
        """Build a block with a deterministic content-derived root.

        ``branch_tag`` lets tests and attack agents force two proposals for
        the same slot/parent to have distinct roots (deliberate forks).
        """
        label = f"block|slot={slot}|proposer={proposer_index}|parent={parent_root.hex}|{branch_tag}"
        return BeaconBlock(
            slot=slot,
            proposer_index=proposer_index,
            parent_root=parent_root,
            root=Root.from_label(label),
            attestations=tuple(attestations),
            slashing_evidence=tuple(slashing_evidence),
            branch_tag=branch_tag,
        )

    def is_genesis(self) -> bool:
        """True for the genesis block."""
        return self.root == GENESIS_ROOT and self.slot == 0

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Block(slot={self.slot}, root={self.root.hex[:8]}, parent={self.parent_root.hex[:8]})"
