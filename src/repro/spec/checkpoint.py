"""Checkpoints: the unit of FFG justification and finalization.

A checkpoint is a pair ``(block, epoch)`` where ``block`` is (the root of)
the block occupying the first slot of ``epoch`` (Section 3.1 of the paper).
Checkpoint votes are cast as *links* from a source checkpoint (already
justified from the voter's point of view) to a target checkpoint.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spec.types import Root, GENESIS_ROOT


@dataclass(frozen=True, order=True)
class Checkpoint:
    """An FFG checkpoint: a block root paired with an epoch number."""

    epoch: int
    root: Root

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ValueError(f"checkpoint epoch must be non-negative, got {self.epoch}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"Checkpoint(epoch={self.epoch}, root={self.root.hex[:8]})"


#: The genesis checkpoint, justified and finalized by definition.
GENESIS_CHECKPOINT = Checkpoint(epoch=0, root=GENESIS_ROOT)


@dataclass(frozen=True)
class FFGVote:
    """A checkpoint vote: a supermajority link ``source -> target``.

    ``source`` must be a checkpoint the attester considers justified and
    ``target`` the checkpoint of the current epoch on the attester's
    candidate chain.  Justification of ``target`` happens when votes with
    the same (source, target) pair accumulate more than two-thirds of the
    stake (Section 3.2).
    """

    source: Checkpoint
    target: Checkpoint

    def __post_init__(self) -> None:
        if self.target.epoch < self.source.epoch:
            raise ValueError(
                "FFG vote target epoch must not precede its source epoch "
                f"(source={self.source.epoch}, target={self.target.epoch})"
            )

    def is_self_link(self) -> bool:
        """Return True for degenerate votes whose source equals the target."""
        return self.source == self.target

    def span(self) -> int:
        """Number of epochs between source and target."""
        return self.target.epoch - self.source.epoch

    def surrounds(self, other: "FFGVote") -> bool:
        """Return True if this vote *surrounds* ``other``.

        Vote A surrounds vote B when ``A.source.epoch < B.source.epoch`` and
        ``B.target.epoch < A.target.epoch``.  Casting two votes where one
        surrounds the other is a slashable offence (Casper FFG rule II).
        """
        return (
            self.source.epoch < other.source.epoch
            and other.target.epoch < self.target.epoch
        )

    def conflicts_as_double_vote(self, other: "FFGVote") -> bool:
        """Return True if this vote and ``other`` form a double vote.

        Two distinct votes by the same validator for the same target epoch
        are slashable (Casper FFG rule I).
        """
        return self.target.epoch == other.target.epoch and self != other
