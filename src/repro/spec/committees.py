"""Proposer selection and attester duty assignment.

Each epoch, 32 proposers are pseudo-randomly drawn (one per slot) and every
validator is assigned exactly one slot in which to attest (Section 3.2 of
the paper).  Real Ethereum derives this from RANDAO; here we use a seeded
deterministic shuffle so that simulations are reproducible and tests can
reason about duty schedules.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.spec.config import SpecConfig
from repro.spec.validator import Validator


def _seed_int(seed: str, epoch: int, domain: str) -> int:
    """Derive a deterministic integer from a seed string, epoch and domain."""
    digest = hashlib.sha256(f"{seed}|{epoch}|{domain}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _deterministic_shuffle(items: List[int], seed_value: int) -> List[int]:
    """Deterministically shuffle ``items`` using a simple hash-based sort key.

    This avoids depending on ``random`` module state and keeps the
    assignment stable across Python versions.
    """

    def key(item: int) -> int:
        digest = hashlib.sha256(f"{seed_value}|{item}".encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    return sorted(items, key=key)


@dataclass(frozen=True)
class EpochDuties:
    """Duties for one epoch: proposers per slot and attesters per slot."""

    epoch: int
    #: Validator index proposing at each slot of the epoch (length == slots_per_epoch).
    proposers: Sequence[int]
    #: For each slot offset within the epoch, the list of validator indices
    #: due to attest at that slot.  Every active validator appears exactly once.
    attestation_committees: Sequence[Sequence[int]]

    def proposer_for_slot(self, slot: int, slots_per_epoch: int) -> int:
        """Return the proposer index for an absolute ``slot``."""
        offset = slot % slots_per_epoch
        return self.proposers[offset]

    def committee_for_slot(self, slot: int, slots_per_epoch: int) -> Sequence[int]:
        """Return the attestation committee for an absolute ``slot``."""
        offset = slot % slots_per_epoch
        return self.attestation_committees[offset]

    def committee_sets(self) -> List[frozenset]:
        """Per-slot committee membership as frozensets (O(1) ``in`` checks).

        The engine caches the result once per epoch so per-validator
        attester checks stop re-scanning committee tuples.
        """
        return [frozenset(committee) for committee in self.attestation_committees]

    def attestation_slot_of(self, validator_index: int, slots_per_epoch: int) -> Optional[int]:
        """Return the slot offset at which ``validator_index`` must attest.

        Returns ``None`` when the validator has no duty this epoch (it was
        not active when duties were computed).
        """
        for offset, committee in enumerate(self.attestation_committees):
            if validator_index in committee:
                return offset
        return None


class DutyScheduler:
    """Computes per-epoch proposer and attester duties."""

    def __init__(self, config: Optional[SpecConfig] = None, seed: str = "repro") -> None:
        self.config = config or SpecConfig.mainnet()
        self.seed = seed
        self._cache: Dict[int, EpochDuties] = {}

    def duties_for_epoch(
        self, epoch: int, validators: Sequence[Validator]
    ) -> EpochDuties:
        """Compute (or return cached) duties for ``epoch``.

        Only validators active at ``epoch`` are eligible.  Proposers are
        drawn (with replacement across slots) proportionally-ish to their
        presence in the shuffled list; attesters are split round-robin into
        one committee per slot.
        """
        if epoch in self._cache:
            return self._cache[epoch]
        active = [v.index for v in validators if v.is_active(epoch) and v.stake > 0]
        if not active:
            raise ValueError(f"no active validators at epoch {epoch}")
        slots = self.config.slots_per_epoch

        shuffle_seed = _seed_int(self.seed, epoch, "shuffle")
        shuffled = _deterministic_shuffle(active, shuffle_seed)

        proposer_seed = _seed_int(self.seed, epoch, "proposer")
        proposers = [
            shuffled[
                _seed_int(str(proposer_seed), slot_offset, "slot") % len(shuffled)
            ]
            for slot_offset in range(slots)
        ]

        committees: List[List[int]] = [[] for _ in range(slots)]
        for position, validator_index in enumerate(shuffled):
            committees[position % slots].append(validator_index)

        duties = EpochDuties(
            epoch=epoch,
            proposers=tuple(proposers),
            attestation_committees=tuple(tuple(c) for c in committees),
        )
        self._cache[epoch] = duties
        return duties

    def clear_cache(self) -> None:
        """Drop cached duties (needed if the validator set changes mid-run)."""
        self._cache.clear()

    def proposer_in_first_slots(
        self,
        epoch: int,
        validators: Sequence[Validator],
        indices: Sequence[int],
        window: Optional[int] = None,
    ) -> bool:
        """Return True if any of ``indices`` proposes within the first ``window`` slots.

        This is the condition under which the probabilistic bouncing attack
        can continue for one more epoch (Section 5.3): a Byzantine proposer
        must be scheduled in one of the first ``j`` slots of the epoch.
        """
        window = window if window is not None else self.config.bouncing_window_slots
        duties = self.duties_for_epoch(epoch, validators)
        target = set(indices)
        return any(p in target for p in duties.proposers[:window])
